# Convenience targets for the DVM reproduction.

PYTHON ?= python

.PHONY: install test chaos sweep-smoke fuzz-smoke fuzz-matrix bench bench-smoke bench-figures lint analyze analyze-sarif analyze-baseline experiments examples clean

# Seed matrix for the chaos battery (comma-separated injector seeds).
REPRO_CHAOS_SEEDS ?= 0,1,2,3

# Base seed for the fuzz matrix (nightly CI rotates it).
REPRO_FUZZ_BASE_SEED ?= 0

install:
	pip install -e . || \
	echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro.pth"

test:
	$(PYTHON) -m pytest tests/

# Fault-injection battery: full sweeps under seeded worker crashes,
# cache corruption, compile failures and allocator OOM, asserting
# bit-identical metrics (tests/chaos/).  Widen REPRO_CHAOS_SEEDS for a
# longer soak; every test carries a REPRO_TEST_TIMEOUT watchdog.
# Chaos-seeded sweeps intentionally run on the scalar loops: a
# configured REPRO_FAULTS injector makes the fast engine refuse every
# batch (counted as fastpath.refused.chaos), because perturbing
# injections void the batch replay's reasoning.  See docs/fuzzing.md
# and docs/configuration.md.
chaos:
	REPRO_CHAOS_SEEDS=$(REPRO_CHAOS_SEEDS) $(PYTHON) -m pytest tests/chaos/ -q

# Sweep-service chaos gate: a fault-free probe-sweep reference, then one
# sweep per scheduler fault site (hangs, exits, crashes, torn journal
# appends, lost heartbeats, steal/hedge races, supervisor stalls) plus a
# combined all-sites round; fails unless every run merges bit-identical
# to the reference and hang detection beats the pair timeout by 5x.
# Blocking in CI; see docs/sweep.md.
sweep-smoke:
	PYTHONPATH=src $(PYTHON) -m repro sweep --chaos-smoke

# Differential fuzz smoke: 64 fixed-seed constrained-random scenarios
# through all 7 configs, scalar vs fastpath (repro/gen, docs/fuzzing.md).
# Blocking in CI; any mismatch shrinks and prints a --repro command.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --smoke

# The full fuzz matrix (224 scenarios); nightly CI rotates the base
# seed so coverage accumulates across nights.
fuzz-matrix:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed-matrix \
		--base-seed $(REPRO_FUZZ_BASE_SEED)

# Timing-engine benchmark: full Figure 8 sweep under both engines,
# recorded in BENCH_timing.json at the repo root.
bench:
	$(PYTHON) benchmarks/perf_timing.py

# Perf smoke: time the first full-profile pair under both engines —
# fault-free and fault-enabled (demand faulting + reclaim swap-in) —
# and fail if any fastpath speedup regresses >30% against
# BENCH_timing.json or the aggregate fault-enabled speedup drops
# below 8x.
bench-smoke:
	$(PYTHON) benchmarks/perf_timing.py --pairs 1 --fault-pairs 1 \
		--min-fault-speedup 8 \
		--check BENCH_timing.json --output build/bench_smoke.json

bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# General Python hygiene (ruff, pinned in the dev extra).  A missing
# ruff is a broken dev environment, not a pass: fail loudly.
lint:
	@command -v ruff >/dev/null 2>&1 \
	|| { echo "error: ruff not installed (pip install -e '.[dev]')" >&2; exit 1; }
	ruff check src tests benchmarks examples

# Repo-specific invariants (dvmlint): determinism, fault-path protocol,
# obs guards, env discipline, worker-state shipping, plus the
# whole-program families (DET1xx taint, RACE0xx fork-boundary state,
# EXN0xx never-raise contracts).  Incremental by default via the
# content-hash cache under build/; see docs/static-analysis.md.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro.analysis

# SARIF 2.1.0 report for code-scanning upload (build/dvmlint.sarif).
analyze-sarif:
	mkdir -p build
	PYTHONPATH=src $(PYTHON) -m repro.analysis --format sarif \
		> build/dvmlint.sarif

# Rewrite the checked-in baseline from current findings; the baseline
# diff is the review artifact for intentionally grandfathered findings.
analyze-baseline:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --baseline-update

experiments:
	$(PYTHON) -m repro all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_accelerator.py
	$(PYTHON) examples/cpu_cdvm.py
	$(PYTHON) examples/fragmentation_study.py
	$(PYTHON) examples/virtualization.py
	$(PYTHON) examples/trace_diagnostics.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis benchmarks/.benchmarks build
