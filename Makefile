# Convenience targets for the DVM reproduction.

PYTHON ?= python

.PHONY: install test bench bench-figures lint experiments examples clean

install:
	pip install -e . || \
	echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro.pth"

test:
	$(PYTHON) -m pytest tests/

# Timing-engine benchmark: full Figure 8 sweep under both engines,
# recorded in BENCH_timing.json at the repo root.
bench:
	$(PYTHON) benchmarks/perf_timing.py

bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	@command -v ruff >/dev/null 2>&1 \
	&& ruff check src tests benchmarks examples \
	|| echo "ruff not installed; skipping lint"

experiments:
	$(PYTHON) -m repro all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_accelerator.py
	$(PYTHON) examples/cpu_cdvm.py
	$(PYTHON) examples/fragmentation_study.py
	$(PYTHON) examples/virtualization.py
	$(PYTHON) examples/trace_diagnostics.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis benchmarks/.benchmarks
