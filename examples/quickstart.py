"""Quickstart: Devirtualized Memory in five minutes.

Boots a DVM machine, shows identity mapping (VA == PA) and Devirtualized
Access Validation, demonstrates the copy-on-write interaction the paper
discusses in Section 5, and prints the headline statistics.

Run:  python examples/quickstart.py
"""

from repro import DVM
from repro.common import Perm
from repro.common.util import human_bytes


def main() -> None:
    # A machine under the paper's best configuration: DVM-PE+ (identity
    # mapping, Permission Entries, an AVC, and preload-on-read).
    dvm = DVM("dvm_pe_plus", phys_bytes=2 << 30, seed=42)

    print("== Identity mapping ==")
    va = dvm.malloc(64 << 20)
    print(f"malloc(64 MB) -> VA {va:#x}")
    print(f"identity mapped (VA == PA): {dvm.is_identity(va)}")

    print("\n== Devirtualized Access Validation ==")
    read = dvm.validate(va, "r")
    print(f"read  @ {va:#x}: outcome={read.outcome.value}, "
          f"walk depth={read.walk_depth} (ends at a Permission Entry: "
          f"{read.ended_at_pe})")
    write = dvm.validate(va, "w")
    print(f"write @ {va:#x}: outcome={write.outcome.value}, "
          f"direct PM access={write.direct}")

    print("\n== Protection is preserved ==")
    ro = dvm.mmap(1 << 20, Perm.READ_ONLY)
    denied = dvm.validate(ro.va, "w")
    print(f"write to a read-only region: outcome={denied.outcome.value}")

    print("\n== Copy-on-write breaks identity for the written page only ==")
    parent = dvm.process
    heap = parent.vmm.mmap(2 << 20, Perm.READ_WRITE, name="cow-demo")
    child = parent.fork()
    child.write(heap.va)  # COW break-in: private copy, PA != VA
    page = 4096
    print(f"child wrote page 0: identity now {child.is_identity(heap.va)}")
    print(f"child page 1 untouched: identity {child.is_identity(heap.va + page)}")
    print(f"parent page 0 untouched: identity {parent.is_identity(heap.va)}")
    child.exit()

    print("\n== Statistics ==")
    stats = dvm.stats()
    print(f"identity-mapped bytes: {human_bytes(stats.identity_bytes)} "
          f"({stats.identity_fraction * 100:.1f}% of mapped memory)")
    print(f"page-table size:       {human_bytes(stats.page_table_bytes)}")
    print(f"identity failures:     {stats.identity_failures}")


if __name__ == "__main__":
    main()
