"""Identity mapping under fragmentation: the Table 4 study, interactive.

Runs the shbench-style stressor against a simulated machine and reports
how much memory could be allocated with VA == PA before identity mapping
first failed, plus the buddy allocator's fragmentation picture at that
point.

Run:  python examples/fragmentation_study.py [memory_gb]
"""

import sys

from repro.common.util import human_bytes
from repro.experiments.reporting import render_table
from repro.experiments.shbench import run_shbench
from repro.experiments.table4 import EXPERIMENTS


def main(memory_gb: int = 1) -> None:
    memory = memory_gb << 30
    print(f"machine: {human_bytes(memory)} physical memory, DVM policy\n")
    rows = []
    for name, (chunk_min, chunk_max, instances) in EXPERIMENTS.items():
        result = run_shbench(memory, chunk_min, chunk_max,
                             instances=instances, seed=7)
        rows.append([
            name,
            f"{chunk_min}-{chunk_max} B",
            str(instances),
            str(result.allocations),
            f"{result.percent_allocated:.1f}%",
            "memory exhausted" if not result.failed
            else "identity mapping failed",
        ])
    print(render_table(
        ["Experiment", "Chunk sizes", "Instances", "Allocations",
         "Allocated (VA==PA)", "Stopped because"],
        rows,
        title=f"shbench stressor at {human_bytes(memory)} "
              f"(paper Table 4: 95-97%)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
