"""DVM in virtual machines: collapsing the two-dimensional page walk.

Paper Section 5 sketches three ways to extend DVM into virtualized
systems; this example builds all four (guest, host) policy combinations on
real nested page tables and shows where the translation memory accesses go.

Run:  python examples/virtualization.py
"""

from repro.common.perms import Perm
from repro.experiments.reporting import render_table
from repro.virt import SCHEMES, VirtualizedSystem, compare_schemes

MB = 1 << 20


def main() -> None:
    print("One translation, cold caches, per scheme:\n")
    rows = []
    for scheme in SCHEMES:
        system = VirtualizedSystem(scheme, host_bytes=512 * MB,
                                   guest_bytes=128 * MB)
        alloc = system.guest_mmap(8 * MB, Perm.READ_WRITE)
        t = system.translate(alloc.va + 0x1234)
        rows.append([
            scheme,
            f"{alloc.va:#x}",
            f"{t.spa:#x}",
            str(t.guest_mem_accesses),
            str(t.host_mem_accesses),
            "yes" if t.identity_end_to_end else "no",
        ])
    print(render_table(
        ["Scheme", "gVA", "sPA", "Guest mem", "Host mem", "gVA==sPA"],
        rows, title="A single gVA -> sPA translation"))

    print("\nSteady state (warm AVCs/PWCs), 256 random probes over 8 MB:\n")
    steady = compare_schemes(buffer_size=8 * MB, probes=256, mode="steady")
    rows = [
        [scheme,
         f"{v['mem_per_miss']:.2f}",
         f"{v['sram_per_miss']:.1f}",
         f"{v['identity_fraction'] * 100:.0f}%"]
        for scheme, v in steady.items()
    ]
    print(render_table(
        ["Scheme", "Mem accesses/walk", "SRAM accesses/walk", "gVA==sPA"],
        rows,
        title="Section 5's claim: DVM converts the 2D walk to 1D — or none"))


if __name__ == "__main__":
    main()
