"""cDVM: devirtualizing memory for CPUs (paper Section 7).

Evaluates the five Figure 10 CPU workloads under 4 KB pages, transparent
huge pages, and cDVM — showing how PE-compacted page tables walked through
an AVC collapse page-walk cost even though the TLBs (and their miss rates)
are unchanged.

Run:  python examples/cpu_cdvm.py
"""

from repro.core.cdvm import cpu_configs
from repro.cpu.model import CPUModel
from repro.experiments.reporting import render_table


def main() -> None:
    model = CPUModel(trace_length=300_000)
    configs = cpu_configs()
    rows = []
    for name in ("mcf", "bt", "cg", "canneal", "xsbench"):
        results = {cfg: model.evaluate(name, configs[cfg])
                   for cfg in configs}
        base = results["cpu_4k"]
        cdvm = results["cpu_cdvm"]
        rows.append([
            name,
            f"{base.miss_rate * 100:.2f}%",
            f"{base.overhead * 100:.1f}%",
            f"{results['cpu_thp'].overhead * 100:.1f}%",
            f"{cdvm.overhead * 100:.1f}%",
            f"{base.walk_mem_accesses / max(base.tlb_misses, 1):.2f}",
            f"{cdvm.walk_mem_accesses / max(cdvm.tlb_misses, 1):.3f}",
        ])
    print(render_table(
        ["Workload", "TLB miss", "4K ovh", "THP ovh", "cDVM ovh",
         "mem/walk 4K", "mem/walk cDVM"],
        rows,
        title="Figure 10 scenario: CPU VM overheads and why cDVM wins"))
    print()
    print("cDVM keeps the same TLBs and the same miss rates; the win is")
    print("page walks that finish in 2-4 AVC (SRAM) accesses instead of")
    print("fetching PTEs from memory (compare the mem-accesses-per-walk")
    print("columns).")


if __name__ == "__main__":
    main()
