"""The paper's headline scenario: a graph accelerator under seven MMUs.

Runs PageRank on a LiveJournal-surrogate graph through the Graphicionado
model, then replays the identical memory trace through every MMU
configuration of Section 6.3 and prints the normalized execution time and
dynamic MMU energy — a one-workload slice of Figures 8 and 9.

Run:  python examples/graph_accelerator.py [--full]
      (--full uses the larger dataset profile; default is bench-sized)
"""

import sys

from repro.core.config import HardwareScale
from repro.experiments.reporting import render_bars, render_table
from repro.sim.runner import ExperimentRunner

CONFIG_ORDER = ("conv_4k", "conv_2m", "conv_1g", "dvm_bm", "dvm_pe",
                "dvm_pe_plus", "ideal")


def main(profile: str = "bench") -> None:
    scale = HardwareScale() if profile == "full" else HardwareScale.bench()
    runner = ExperimentRunner(profile=profile, scale=scale)
    prepared = runner.prepare("pagerank", "LJ")
    print(f"graph: LiveJournal surrogate, {prepared.graph.num_vertices} "
          f"vertices, {prepared.graph.num_edges} edges")
    print(f"accelerator trace: {prepared.trace_length} accesses "
          f"({prepared.result.trace.write_fraction() * 100:.0f}% stores)")
    print(f"trace composition: {prepared.result.trace.stream_histogram()}")
    print()

    rows = []
    times = {}
    for name in CONFIG_ORDER:
        config = runner.configs()[name]
        m = runner.run("pagerank", "LJ", config)
        times[config.label] = m.normalized_time
        rows.append([
            config.label,
            f"{m.normalized_time:.3f}",
            f"{m.tlb_miss_rate * 100:.1f}%",
            f"{m.identity_fraction * 100:.0f}%",
            f"{m.energy_pj / 1e6:.2f}",
        ])
    print(render_table(
        ["Config", "Norm. time", "TLB miss", "Identity", "MMU energy (uJ)"],
        rows, title="PageRank/LJ under the paper's seven configurations"))
    print()
    print(render_bars(times, title="Execution time normalized to ideal"))


if __name__ == "__main__":
    main("full" if "--full" in sys.argv else "bench")
