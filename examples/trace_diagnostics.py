"""Trace diagnostics: *why* the figures look the way they do.

Profiles the accelerator's memory trace for two contrasting workloads
(PageRank on a social graph vs CF on the Netflix surrogate) and connects
the locality statistics to the TLB behaviour of Figure 2: footprints
versus TLB reach, stream composition, and the reuse-distance ground truth
that a fully-associative LRU TLB's hit rate obeys.

Run:  python examples/trace_diagnostics.py
"""

from repro.accel.analysis import lru_hit_rate, profile_trace, reuse_distances
from repro.common.util import human_bytes
from repro.core.config import HardwareScale
from repro.experiments.reporting import render_table
from repro.sim.runner import ExperimentRunner


def main() -> None:
    scale = HardwareScale.bench()
    runner = ExperimentRunner(profile="bench", scale=scale)
    for workload, dataset in (("pagerank", "LJ"), ("cf", "NF")):
        prepared = runner.prepare(workload, dataset)
        profile = profile_trace(prepared.result.trace)
        print(f"== {workload}/{dataset}: {profile.accesses} accesses, "
              f"footprint {human_bytes(profile.footprint_bytes)} ==")
        rows = [
            [s.name, str(s.accesses), human_bytes(s.footprint_bytes),
             f"{s.sequential_fraction * 100:.0f}%",
             f"{s.write_fraction * 100:.0f}%"]
            for s in profile.streams
        ]
        print(render_table(
            ["Stream", "Accesses", "Footprint", "Sequential", "Writes"],
            rows))
        reach = scale.tlb_entries * 4096
        print(f"\n4K TLB reach: {human_bytes(reach)} "
              f"({scale.tlb_entries} entries) vs footprint "
              f"{human_bytes(profile.footprint_bytes)}")
        coverage = profile.hot_page_coverage.get(scale.tlb_entries)
        if coverage is not None:
            print(f"best possible {scale.tlb_entries}-entry hit rate "
                  f"(hot-page coverage): {coverage * 100:.1f}%")
        # Ground truth from reuse distances vs the simulated TLB.
        addrs, _ = prepared.result.trace.concretize(
            {s: (s + 1) << 32 for s in range(5)})
        distances = reuse_distances(addrs, max_samples=30_000)
        predicted = 1.0 - lru_hit_rate(distances, scale.tlb_entries)
        measured = runner.run(workload, dataset,
                              runner.configs()["conv_4k"]).tlb_miss_rate
        print(f"reuse-distance-predicted 4K miss rate: {predicted * 100:.1f}%"
              f"  |  simulated (Figure 2): {measured * 100:.1f}%\n")


if __name__ == "__main__":
    main()
