"""BadgerTrap stand-in: TLB-miss instrumentation for CPU traces.

The paper (Section 7.3) uses BadgerTrap — a kernel tool that traps x86-64
TLB misses — to instrument the CPU workloads and estimate what fraction of
walks the AVC would satisfy.  Our version plays the same role in the
simulated machine: it runs an address trace through the two-level TLB
hierarchy and records, per access, whether a page walk was needed — the
walk addresses are then handed to the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.tlb import TwoLevelTLB


@dataclass
class BadgerTrapReport:
    """Instrumentation result for one trace."""

    accesses: int
    l1_misses: int
    l2_misses: int
    miss_vas: np.ndarray     # VAs whose accesses required a page walk

    @property
    def l1_miss_rate(self) -> float:
        """L1 DTLB miss rate."""
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def walk_rate(self) -> float:
        """Walks per access (the L2 miss rate)."""
        return self.l2_misses / self.accesses if self.accesses else 0.0


def instrument(addrs, tlb: TwoLevelTLB) -> BadgerTrapReport:
    """Run a VA trace through the TLB hierarchy, recording walk-causing VAs.

    TLB fills use the identity translation placeholder (PA bookkeeping is
    not needed to count misses, exactly as BadgerTrap observes misses
    without replaying translations).
    """
    addr_list = addrs.tolist() if hasattr(addrs, "tolist") else list(addrs)
    l1 = tlb.l1
    l2 = tlb.l2
    shift = l1.page_shift
    l1_sets = l1._sets
    n1sets = l1.num_sets
    w1 = l1.ways
    l2_sets = l2._sets
    n2sets = l2.num_sets
    w2 = l2.ways
    l1_misses = 0
    misses: list[int] = []
    for va in addr_list:
        vpn = va >> shift
        s1 = l1_sets[vpn % n1sets]
        if vpn in s1:
            del s1[vpn]
            s1[vpn] = (0, 2)
            continue
        l1_misses += 1
        s2 = l2_sets[vpn % n2sets]
        if vpn in s2:
            del s2[vpn]
            s2[vpn] = (0, 2)
        else:
            misses.append(va)
            if len(s2) >= w2:
                for lru in s2:
                    break
                del s2[lru]
            s2[vpn] = (0, 2)
        if len(s1) >= w1:
            for lru in s1:
                break
            del s1[lru]
        s1[vpn] = (0, 2)
    miss_vas = np.asarray(misses, dtype=np.int64)
    return BadgerTrapReport(accesses=len(addr_list), l1_misses=l1_misses,
                            l2_misses=len(miss_vas), miss_vas=miss_vas)
