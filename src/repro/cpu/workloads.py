"""Synthetic CPU workload traces for the cDVM study (Figure 10).

The paper measures five memory-intensive CPU applications — mcf (SPEC
2006), BT and CG (NAS), canneal (PARSEC) and xsbench — on real hardware.
Offline, we substitute *characteristic-matched* synthetic traces: each
generator reproduces the published access-pattern structure of its
namesake (the property that determines TLB behaviour), with footprints
scaled alongside the scaled TLB hierarchy (DESIGN.md "Scaling"):

========  =====================================================================
mcf       pointer chasing over a large network/arc structure: one dependent
          random reference per handful of node-local accesses
bt        block-tridiagonal solver: long unit-stride sweeps over a few large
          arrays, very low irregularity
cg        sparse mat-vec: streaming row data with a gather into the dense
          vector per few elements
canneal   simulated annealing on a netlist: random element swaps across a
          very large footprint, amortised by local bookkeeping
xsbench   Monte Carlo cross-section lookups: random binary-search probes
          into a large unionised energy grid between event-local work
========  =====================================================================

Traces are emitted as :class:`SymbolicTrace` over two streams — a large
irregular array and a small local/streaming arena — so the CPU model can
bind them to any configuration's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.trace import SymbolicTrace

#: Stream ids for CPU workloads.
MAIN = 0     # the large footprint (network / matrix / grid)
LOCAL = 1    # stack-like / streaming local data
AUX = 2      # secondary array (e.g. CG's row pointers)


@dataclass
class CPUWorkload:
    """One synthetic workload: stream sizes plus its symbolic trace."""

    name: str
    stream_sizes: dict[int, int]
    trace: SymbolicTrace

    @property
    def footprint(self) -> int:
        """Total bytes across streams."""
        return sum(self.stream_sizes.values())


def _mix(rng: np.random.Generator, length: int, main_size: int,
         local_size: int, random_per_group: int, group: int,
         write_fraction: float = 0.2, aux_size: int = 0
         ) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[int, int]]:
    """Build a trace alternating grouped local accesses with random probes.

    Every ``group`` accesses contain ``random_per_group`` uniform-random
    references into the MAIN stream; the rest walk the LOCAL stream
    sequentially (wrapping), modelling register/stack/cache-resident work
    between irregular references.
    """
    groups = length // group
    total = groups * group
    streams = np.full(total, LOCAL, dtype=np.int8)
    offsets = np.empty(total, dtype=np.int64)
    # Local sequential walk, 8 B per access, wrapping around the arena.
    offsets[:] = (np.arange(total, dtype=np.int64) * 8) % local_size
    # Scatter the random probes at fixed positions within each group.
    for k in range(random_per_group):
        pos = np.arange(groups, dtype=np.int64) * group + k
        streams[pos] = MAIN
        offsets[pos] = (rng.integers(0, main_size // 8, groups) * 8)
    writes = (rng.random(total) < write_fraction).astype(np.int8)
    sizes = {MAIN: main_size, LOCAL: local_size}
    if aux_size:
        sizes[AUX] = aux_size
    return streams, offsets, writes, sizes


def mcf(length: int = 1_000_000, seed: int = 101) -> CPUWorkload:
    """Pointer chasing: 1 dependent random reference per 11 accesses, 64 MB."""
    rng = np.random.default_rng(seed)
    streams, offsets, writes, sizes = _mix(
        rng, length, main_size=64 << 20, local_size=256 << 10,
        random_per_group=1, group=11,
    )
    return CPUWorkload("mcf", sizes,
                       SymbolicTrace(streams, offsets, writes))


def bt(length: int = 1_000_000, seed: int = 102) -> CPUWorkload:
    """Block-tridiagonal sweeps: almost purely sequential over 48 MB."""
    rng = np.random.default_rng(seed)
    main_size = 48 << 20
    streams = np.full(length, MAIN, dtype=np.int8)
    # Unit-stride sweep over the solution arrays, wrapping; a sprinkle of
    # boundary-exchange randomness (~0.8%).
    offsets = (np.arange(length, dtype=np.int64) * 8) % main_size
    irregular = rng.random(length) < 0.008
    offsets[irregular] = rng.integers(0, main_size // 8,
                                      int(irregular.sum())) * 8
    writes = (rng.random(length) < 0.35).astype(np.int8)
    return CPUWorkload("bt", {MAIN: main_size},
                       SymbolicTrace(streams, offsets, writes))


def cg(length: int = 1_000_000, seed: int = 103) -> CPUWorkload:
    """Sparse mat-vec: streaming row data with dense-vector gathers."""
    rng = np.random.default_rng(seed)
    streams, offsets, writes, sizes = _mix(
        rng, length, main_size=6 << 20, local_size=8 << 20,
        random_per_group=1, group=24, write_fraction=0.1,
    )
    return CPUWorkload("cg", sizes,
                       SymbolicTrace(streams, offsets, writes))


def canneal(length: int = 1_000_000, seed: int = 104) -> CPUWorkload:
    """Annealing swaps: 1 random netlist access per 36, over 96 MB."""
    rng = np.random.default_rng(seed)
    streams, offsets, writes, sizes = _mix(
        rng, length, main_size=96 << 20, local_size=512 << 10,
        random_per_group=1, group=36, write_fraction=0.3,
    )
    return CPUWorkload("canneal", sizes,
                       SymbolicTrace(streams, offsets, writes))


def xsbench(length: int = 1_000_000, seed: int = 105) -> CPUWorkload:
    """Cross-section lookups: 2 random grid probes per 60 accesses, 48 MB."""
    rng = np.random.default_rng(seed)
    streams, offsets, writes, sizes = _mix(
        rng, length, main_size=48 << 20, local_size=384 << 10,
        random_per_group=2, group=60, write_fraction=0.05,
    )
    return CPUWorkload("xsbench", sizes,
                       SymbolicTrace(streams, offsets, writes))


#: The Figure 10 workload suite.
CPU_WORKLOADS = {
    "mcf": mcf,
    "bt": bt,
    "cg": cg,
    "canneal": canneal,
    "xsbench": xsbench,
}


def build(name: str, length: int = 1_000_000) -> CPUWorkload:
    """Build a named CPU workload trace."""
    if name not in CPU_WORKLOADS:
        raise KeyError(f"unknown CPU workload {name!r}")
    return CPU_WORKLOADS[name](length)
