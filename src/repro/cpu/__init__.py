"""CPU substrate for the cDVM study: workloads, instrumentation, model."""

from repro.cpu.badgertrap import BadgerTrapReport, instrument
from repro.cpu.model import CPUModel
from repro.cpu.workloads import (
    AUX,
    CPU_WORKLOADS,
    LOCAL,
    MAIN,
    CPUWorkload,
    build,
)

__all__ = [
    "BadgerTrapReport",
    "instrument",
    "CPUModel",
    "AUX",
    "CPU_WORKLOADS",
    "LOCAL",
    "MAIN",
    "CPUWorkload",
    "build",
]
