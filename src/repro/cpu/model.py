"""The cDVM CPU evaluation driver (Figure 10).

For each (workload, configuration) pair this module rebuilds the paper's
Section 7.3 pipeline inside the simulator:

1. boot a kernel under the configuration's policy and lay the workload's
   arrays out in a process (cDVM identity-maps all segments, Section 7.2);
2. instrument the trace's TLB behaviour (:mod:`repro.cpu.badgertrap`);
3. walk every TLB miss through the configuration's walker — a conventional
   PWC for 4K/THP, the AVC over PE-compacted tables for cDVM;
4. feed the measured walk statistics to the analytical overhead model
   (:mod:`repro.core.cdvm`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cdvm import (
    BASE_CPI_PER_ACCESS,
    CPU_WALK_LATENCY,
    CPUMMUConfig,
    CPUOverheadResult,
    cpu_configs,
    estimate_overhead,
)
from repro.cpu.badgertrap import instrument
from repro.cpu.workloads import CPUWorkload, build
from repro.hw.tlb import TwoLevelTLB
from repro.hw.walkcache import AccessValidationCache, PageWalkCache
from repro.hw.walker import PageTableWalker
from repro.kernel.kernel import Kernel


@dataclass
class CPUModel:
    """Evaluates the Figure 10 matrix."""

    trace_length: int = 1_000_000
    phys_bytes: int = 2 << 30
    seed: int = 0
    base_cpi: float = BASE_CPI_PER_ACCESS
    walk_latency: int = CPU_WALK_LATENCY
    _workloads: dict = field(default_factory=dict, init=False)

    def workload(self, name: str) -> CPUWorkload:
        """Build (and cache) a named workload trace."""
        wl = self._workloads.get(name)
        if wl is None:
            wl = build(name, self.trace_length)
            self._workloads[name] = wl
        return wl

    def evaluate(self, name: str, config: CPUMMUConfig) -> CPUOverheadResult:
        """Run one (workload, configuration) cell of Figure 10."""
        wl = self.workload(name)
        kernel = Kernel(phys_bytes=self.phys_bytes, policy=config.policy,
                        seed=self.seed)
        process = kernel.spawn(name=f"cpu-{name}-{config.name}")
        process.setup_segments(identity_segments=config.identity_segments)
        bases = {
            stream: process.malloc.malloc(size)
            for stream, size in sorted(wl.stream_sizes.items())
        }
        addrs, _writes = wl.trace.concretize(bases)
        tlb = TwoLevelTLB(l1_entries=config.l1_entries,
                          l2_entries=config.l2_entries,
                          page_size=config.tlb_page_size)
        report = instrument(addrs, tlb)
        if config.use_avc:
            cache = AccessValidationCache()
        else:
            cache = PageWalkCache()
        walker = PageTableWalker(process.page_table, cache)
        walk_sram = 0
        walk_mem = 0
        exposed = 0.0
        for va in report.miss_vas.tolist():
            info, sram, mem = walker.walk(va)
            walk_sram += sram
            walk_mem += mem
            if config.overlap and info[3]:
                # Section 7.1: identity-mapped accesses overlap DAV with
                # the data/cacheline fetch — only the excess is exposed.
                from repro.core.cdvm import CPU_FETCH_LATENCY
                exposed += max(0, mem * self.walk_latency
                               - CPU_FETCH_LATENCY)
            else:
                exposed += sram + mem * self.walk_latency
        return estimate_overhead(
            workload=name, config=config.name, accesses=report.accesses,
            tlb_misses=report.l2_misses, walk_sram_accesses=walk_sram,
            walk_mem_accesses=walk_mem, base_cpi=self.base_cpi,
            walk_latency=self.walk_latency,
            walk_cycles_override=exposed if config.overlap else None,
        )

    def evaluate_all(self, workloads=None
                     ) -> dict[tuple[str, str], CPUOverheadResult]:
        """The full Figure 10 matrix: workloads x {4K, THP, cDVM}."""
        names = workloads or ("mcf", "bt", "cg", "canneal", "xsbench")
        configs = cpu_configs()
        out: dict[tuple[str, str], CPUOverheadResult] = {}
        for name in names:
            for config in configs.values():
                out[(name, config.name)] = self.evaluate(name, config)
        return out
