"""Extension experiment: DVM in virtualized environments (Section 5).

Not a paper table — the paper sketches three DVM extensions for VMs and
claims they "convert the two-dimensional page walk to a one-dimensional
walk" (or eliminate it).  This experiment quantifies that claim on real
nested page tables: average memory accesses per translation, steady state
and cold, for the four (guest, host) policy combinations.
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.virt.nested import compare_schemes

#: Human labels for the schemes.
LABELS = {
    "nested": "conventional 2D (gVA->gPA->sPA)",
    "host_dvm": "DVM in hypervisor (gPA == sPA)",
    "guest_dvm": "DVM in guest OS (gVA == gPA)",
    "full_dvm": "DVM end to end (gVA == sPA)",
}


def virt_table(buffer_size: int = 8 << 20, probes: int = 512
               ) -> dict[str, dict[str, dict[str, float]]]:
    """Both modes' scheme comparisons."""
    return {
        mode: compare_schemes(buffer_size=buffer_size, probes=probes,
                              mode=mode)
        for mode in ("steady", "cold")
    }


def render(results: dict[str, dict[str, dict[str, float]]]) -> str:
    """Render the comparison table."""
    rows = []
    for scheme, label in LABELS.items():
        steady = results["steady"][scheme]
        cold = results["cold"][scheme]
        rows.append([
            label,
            f"{steady['mem_per_miss']:.2f}",
            f"{cold['mem_per_miss']:.2f}",
            f"{steady['sram_per_miss']:.1f}",
            f"{steady['identity_fraction'] * 100:.0f}%",
        ])
    return render_table(
        ["Scheme", "Mem/walk (steady)", "Mem/walk (cold)", "SRAM/walk",
         "gVA==sPA"],
        rows,
        title=("Virtualization extension: nested-walk cost per translation "
               "(Section 5: DVM collapses the 2D walk)"),
    )


def main() -> str:
    """Regenerate the virtualization-extension table."""
    text = render(virt_table())
    print(text)
    return text


if __name__ == "__main__":
    main()
