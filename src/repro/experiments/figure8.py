"""Figure 8: execution time normalized to the ideal implementation.

The paper's headline result: across 15 (workload, graph) pairs, DVM-PE
keeps VM overheads to 3.5% (1.7% with preloads), while conventional VM at
4 KB / 2 MB pages costs ~119% / ~114%, DVM-BM ~23%, and 1 GB pages are
near-ideal for these workloads.  DVM-PE is 2.1x faster than the optimized
2 MB conventional configuration.

Every configuration consumes the identical symbolic trace, so the
normalization isolates the MMU exactly as the paper's paired runs do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import faults
from repro.experiments.reporting import geometric_mean, render_table
from repro.graphs.datasets import WORKLOAD_PAIRS
from repro.sim.runner import ExperimentRunner, workers_from_env

#: Figure 8's bar order.
CONFIG_ORDER = ("conv_4k", "conv_2m", "conv_1g", "dvm_bm", "dvm_pe",
                "dvm_pe_plus")


@dataclass
class Figure8Row:
    """Normalized execution times of one (workload, graph) group."""

    workload: str
    graph: str
    normalized: dict[str, float]    # config name -> time / ideal


def figure8(runner: ExperimentRunner | None = None,
            pairs=None) -> list[Figure8Row]:
    """Compute the Figure 8 series (all configurations, all pairs)."""
    runner = runner or ExperimentRunner()
    pairs = pairs if pairs is not None else WORKLOAD_PAIRS
    configs = runner.configs()
    rows = []
    for workload, dataset in pairs:
        results = runner.run_pair_configs(
            workload, dataset, {name: configs[name] for name in CONFIG_ORDER})
        if results is None:   # quarantined guest violation; row skipped
            continue
        normalized = {name: results[name].normalized_time
                      for name in CONFIG_ORDER}
        rows.append(Figure8Row(workload=workload, graph=dataset,
                               normalized=normalized))
    return rows


def averages(rows: list[Figure8Row]) -> dict[str, float]:
    """Geometric-mean normalized time per configuration."""
    return {
        name: geometric_mean([r.normalized[name] for r in rows])
        for name in CONFIG_ORDER
    }


def headline(rows: list[Figure8Row]) -> dict[str, float]:
    """The paper's headline numbers from this data.

    ``dvm_overhead``: DVM-PE+'s average overhead over ideal (paper: 1.7%);
    ``speedup_vs_2m``: DVM-PE+'s speedup over 2M conventional (paper 2.1x).
    """
    avg = averages(rows)
    return {
        "dvm_overhead": avg["dvm_pe_plus"] - 1.0,
        "dvm_pe_overhead": avg["dvm_pe"] - 1.0,
        "speedup_vs_2m": avg["conv_2m"] / avg["dvm_pe_plus"],
    }


def render(rows: list[Figure8Row]) -> str:
    """Render Figure 8 as a table with the geometric-mean row."""
    labels = {"conv_4k": "4K", "conv_2m": "2M", "conv_1g": "1G",
              "dvm_bm": "DVM-BM", "dvm_pe": "DVM-PE",
              "dvm_pe_plus": "DVM-PE+"}
    table_rows = [
        [r.workload, r.graph]
        + [f"{r.normalized[name]:.3f}" for name in CONFIG_ORDER]
        for r in rows
    ]
    avg = averages(rows)
    table_rows.append(["geomean", ""]
                      + [f"{avg[name]:.3f}" for name in CONFIG_ORDER])
    head = headline(rows)
    title = ("Figure 8: execution time normalized to ideal "
             f"(DVM-PE+ overhead {head['dvm_overhead'] * 100:.1f}%, "
             f"speedup vs 2M {head['speedup_vs_2m']:.2f}x)")
    return render_table(["Workload", "Graph"]
                        + [labels[name] for name in CONFIG_ORDER],
                        table_rows, title=title)


def main(profile: str = "full") -> str:
    """Regenerate Figure 8 and return its rendering.

    Honors ``REPRO_WORKERS`` (parallel pair execution), ``REPRO_CACHE_DIR``
    (persistent trace/metrics artifacts + resumable sweep checkpoint),
    ``REPRO_PAIR_TIMEOUT`` and ``REPRO_FAULTS`` (chaos testing); anything
    the resilience layer had to do is reported after the figure.
    """
    runner = ExperimentRunner.from_env(profile=profile)
    workers = workers_from_env()
    if workers > 1:
        runner.run_pairs(workers=workers)   # warm the caches in parallel
    text = render(figure8(runner))
    print(text)
    if runner.resilience.events() or faults.active():
        print(runner.resilience.render())
    return text


if __name__ == "__main__":
    main()
