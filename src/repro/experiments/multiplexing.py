"""Extension experiment: multiplexing the accelerator between processes.

The paper motivates DVM's protection story with accelerators "multiplexed
among multiple processes" (Section 1) but never measures switching.  This
experiment does: two processes run the same workload, the IOMMU context
switches between them every *slice*, and the slowdown versus an unswitched
run is reported per configuration.

The mechanism under test: a context switch flushes the IOMMU's lookup
structures; what refill costs afterwards depends on the structure's
working set.  PE-compacted tables refill a 1 KB AVC in a handful of
misses, while a conventional configuration must re-walk for every TLB
entry it lost — so DVM makes fine-grained accelerator sharing cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.algorithms import prop_bytes_for
from repro.core.config import MMUConfig
from repro.experiments.reporting import render_table
from repro.sim.metrics import execution_cycles
from repro.sim.runner import ExperimentRunner
from repro.sim.system import HeterogeneousSystem


@dataclass
class MultiplexRow:
    """One configuration's switching cost."""

    config: str
    slices: int
    unswitched_cycles: float
    switched_cycles: float

    @property
    def slowdown(self) -> float:
        """Switched time over unswitched time."""
        return (self.switched_cycles / self.unswitched_cycles
                if self.unswitched_cycles else 0.0)

    @property
    def cycles_per_switch(self) -> float:
        """Absolute refill cost of one context switch, in cycles."""
        if not self.slices:
            return 0.0
        return max(0.0, (self.switched_cycles - self.unswitched_cycles)
                   / self.slices)


def _timed(iommu, dram, mlp, addrs, writes) -> float:
    stats = iommu.run_trace(addrs, writes)
    cycles, _ideal = execution_cycles(stats, dram, mlp)
    return cycles


def multiplex_run(runner: ExperimentRunner, config: MMUConfig, *,
                  workload: str = "pagerank", dataset: str = "LJ",
                  slices: int = 16) -> MultiplexRow:
    """Measure one configuration's cost of slice-wise process switching."""
    from repro.accel.layout import place_graph
    from repro.hw.dram import DRAMModel
    from repro.hw.iommu import IOMMU

    prepared = runner.prepare(workload, dataset)
    prop_bytes = prop_bytes_for(workload)
    # Two tenant processes on one machine, same graph each.
    system = HeterogeneousSystem(config, runner.params)
    layout_a = system.load_graph(prepared.graph, prop_bytes=prop_bytes)
    tenant_b = system.kernel.spawn(name="tenant-b")
    tenant_b.setup_segments()
    layout_b = place_graph(tenant_b, prepared.graph, prop_bytes=prop_bytes)
    addrs_a, writes = prepared.result.trace.concretize(layout_a.stream_bases)
    addrs_b, _ = prepared.result.trace.concretize(layout_b.stream_bases)
    bitmap = system.perm_bitmap  # one kernel-wide bitmap covers both tenants
    mlp = system.params.mlp
    # Unswitched baseline: each tenant runs its whole trace on a fresh
    # IOMMU; the switched run executes half of each, so the comparable
    # baseline is the average (this controls for per-tenant page-table
    # block-placement differences).
    baseline_a = IOMMU(config, system.process.page_table, DRAMModel(),
                       perm_bitmap=bitmap)
    baseline_b = IOMMU(config, tenant_b.page_table, DRAMModel(),
                       perm_bitmap=bitmap)
    unswitched = (
        _timed(baseline_a, baseline_a.dram, mlp, addrs_a, writes)
        + _timed(baseline_b, baseline_b.dram, mlp, addrs_b, writes)
    ) / 2
    # Alternate slices A/B with a context switch between each.
    shared = IOMMU(config, system.process.page_table, DRAMModel(),
                   perm_bitmap=bitmap)
    bounds = np.linspace(0, len(addrs_a), slices + 1, dtype=np.int64)
    switched = 0.0
    for i in range(slices):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if i % 2 == 0:
            shared.switch_context(system.process.page_table, bitmap)
            switched += _timed(shared, shared.dram, mlp,
                               addrs_a[lo:hi], writes[lo:hi])
        else:
            shared.switch_context(tenant_b.page_table, bitmap)
            switched += _timed(shared, shared.dram, mlp,
                               addrs_b[lo:hi], writes[lo:hi])
    return MultiplexRow(config=config.name, slices=slices,
                        unswitched_cycles=unswitched,
                        switched_cycles=switched)


def multiplexing(runner: ExperimentRunner | None = None, *,
                 slices: int = 16,
                 config_names=("conv_4k", "conv_2m", "dvm_bm", "dvm_pe",
                               "dvm_pe_plus")) -> list[MultiplexRow]:
    """The switching study across configurations."""
    runner = runner or ExperimentRunner()
    configs = runner.configs()
    return [multiplex_run(runner, configs[name], slices=slices)
            for name in config_names]


def render(rows: list[MultiplexRow]) -> str:
    """Render the multiplexing table."""
    table_rows = [
        [r.config, str(r.slices), f"{r.slowdown:.4f}",
         f"{(r.slowdown - 1) * 100:.2f}%", f"{r.cycles_per_switch:,.0f}"]
        for r in rows
    ]
    return render_table(
        ["Config", "Slices", "Switched / unswitched", "Relative cost",
         "Cycles / switch"],
        table_rows,
        title=("Extension: accelerator multiplexing between two processes "
               "(context switch flushes the IOMMU structures).  Relative "
               "cost flatters slow baselines; compare absolute cycles."),
    )


def main(profile: str = "full") -> str:
    """Regenerate the multiplexing table."""
    from repro.core.config import HardwareScale
    scale = HardwareScale() if profile == "full" else HardwareScale.bench()
    runner = ExperimentRunner(profile=profile, scale=scale)
    text = render(multiplexing(runner))
    print(text)
    return text


if __name__ == "__main__":
    main()
