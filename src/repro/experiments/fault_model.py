"""Eager identity vs demand faulting under memory pressure (Section 4.3).

The paper's central motivation is that accelerators cannot tolerate page
faults: a PRI-style fault service — request message, host interrupt, OS
handler, response — costs microseconds to milliseconds, versus
nanoseconds for a TLB miss.  DVM's eager identity mapping exists to keep
that path cold.  With the recoverable fault subsystem
(:mod:`repro.hw.fault_queue` + :mod:`repro.kernel.fault`) the cost is now
*measurable* instead of being a crash, and this study quantifies the
argument end-to-end:

* **DVM-PE, eager identity** — the paper's design: zero faults.
* **DVM-PE under reclaim pressure** — the OS swapped out part of the
  heap (Section 4.3.2's low-memory path); the accelerator's accesses to
  swapped pages fault and are serviced by demand swap-in mid-trace.
* **conv_4k, eager pre-fault** — the baseline as simulated so far
  (frames mapped at mmap time): zero faults.
* **conv_4k, demand faulting** — frames arrive only on first touch, the
  way a CPU-style demand-paged OS would run an accelerator; every cold
  chunk costs one full fault service.

Fault-bearing runs stay on the fast timing path: the engine delivers the
predicted faults through the real fault queue and kernel handler (or
stitches fault-free segments around them) and is bit-identical to the
scalar loops either way, so every row here matches a scalar rerun and
the fault-free rows stay bit-identical to every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.algorithms import prop_bytes_for
from repro.core.config import HardwareScale, demand_faulting_config
from repro.experiments.reporting import render_table
from repro.sim.metrics import execution_cycles
from repro.sim.runner import ExperimentRunner
from repro.sim.system import HeterogeneousSystem

#: Default pair: PageRank on the LiveJournal surrogate (a Table 1 input).
DEFAULT_PAIR = ("pagerank", "LJ")

#: Default fraction of the heap the reclaim-pressure row swaps out.
DEFAULT_RECLAIM_FRACTION = 0.5


@dataclass
class FaultModelRow:
    """One execution mode's fault profile and cost."""

    label: str
    faults: int
    major_faults: int
    swap_faults: int
    fault_stall_cycles: int
    normalized_time: float


def _row(label: str, system: HeterogeneousSystem, trace) -> FaultModelRow:
    timing = system.run_trace(trace)
    cycles, ideal = execution_cycles(timing, system.dram,
                                     mlp=system.params.mlp)
    return FaultModelRow(
        label=label,
        faults=timing.faults,
        major_faults=timing.major_faults,
        swap_faults=timing.swap_faults,
        fault_stall_cycles=timing.fault_stall_cycles,
        normalized_time=cycles / ideal if ideal else 0.0,
    )


def eager_vs_demand(runner: ExperimentRunner | None = None,
                    pair=DEFAULT_PAIR,
                    reclaim_fraction: float = DEFAULT_RECLAIM_FRACTION
                    ) -> list[FaultModelRow]:
    """The four execution modes on one workload; see the module docstring."""
    runner = runner or ExperimentRunner()
    prepared = runner.prepare(*pair)
    prop = prop_bytes_for(pair[0])
    trace = prepared.result.trace
    configs = runner.configs()
    rows = []

    eager_pe = HeterogeneousSystem(configs["dvm_pe"], runner.params)
    eager_pe.load_graph(prepared.graph, prop_bytes=prop)
    rows.append(_row("DVM-PE, eager identity", eager_pe, trace))

    pressured = HeterogeneousSystem(configs["dvm_pe"], runner.params)
    pressured.load_graph(prepared.graph, prop_bytes=prop)
    freed = pressured.apply_reclaim_pressure(reclaim_fraction)
    rows.append(_row(
        f"DVM-PE, {int(reclaim_fraction * 100)}% heap reclaimed "
        f"({freed >> 10} KB swapped)", pressured, trace))

    eager_4k = HeterogeneousSystem(configs["conv_4k"], runner.params)
    eager_4k.load_graph(prepared.graph, prop_bytes=prop)
    rows.append(_row("4K baseline, eager pre-fault", eager_4k, trace))

    demand = HeterogeneousSystem(demand_faulting_config(configs["conv_4k"]),
                                 runner.params)
    demand.load_graph(prepared.graph, prop_bytes=prop)
    rows.append(_row("4K baseline, demand faulting (cold touch)",
                     demand, trace))
    return rows


def render(rows: list[FaultModelRow]) -> str:
    """Render the study as a table."""
    table_rows = [
        [r.label, str(r.faults), str(r.major_faults), str(r.swap_faults),
         f"{r.fault_stall_cycles / 1000:.0f}k", f"{r.normalized_time:.3f}"]
        for r in rows
    ]
    return render_table(
        ["Execution mode", "Faults", "Major", "Swap-in",
         "Fault stall (cyc)", "Norm. time"],
        table_rows,
        title="Fault model: eager identity vs demand faulting (Section 4.3)")


def main(profile: str = "full") -> str:
    """Run and print the eager-vs-demand fault study.

    The runner is wired from the environment so the study shares the
    sweep service's artifact cache (``REPRO_CACHE_DIR``) — its trace is
    restored from the memmapped store a figure sweep already published
    instead of being rematerialized.
    """
    scale = HardwareScale() if profile == "full" else HardwareScale.bench()
    runner = ExperimentRunner.from_env(profile=profile, scale=scale)
    text = render(eager_vs_demand(runner))
    print(text)
    return text


if __name__ == "__main__":
    main()
