"""Figure 9: dynamic MMU energy, normalized to the 4K baseline.

The paper computes the dynamic energy spent on memory management — TLB
accesses, PWC/AVC accesses and the walker's memory accesses — and shows
DVM-PE consuming 3.9x less than the 2 MB conventional configuration (76%
below the 4 KB baseline), mostly from eliminating the fully-associative
TLB; DVM-BM saves ~15% (bitmap-cache misses cost memory energy); squashed
preloads add slightly to DVM-PE+.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import faults
from repro.experiments.reporting import geometric_mean, render_table
from repro.graphs.datasets import WORKLOAD_PAIRS
from repro.sim.runner import ExperimentRunner, workers_from_env

#: Figure 9's bar order (energies normalized to conv_4k).
CONFIG_ORDER = ("conv_2m", "conv_1g", "dvm_bm", "dvm_pe", "dvm_pe_plus")


@dataclass
class Figure9Row:
    """Normalized MMU dynamic energy of one (workload, graph) group."""

    workload: str
    graph: str
    normalized: dict[str, float]    # config name -> energy / conv_4k energy


def figure9(runner: ExperimentRunner | None = None,
            pairs=None) -> list[Figure9Row]:
    """Compute the Figure 9 series (reuses Figure 8's cached runs)."""
    runner = runner or ExperimentRunner()
    pairs = pairs if pairs is not None else WORKLOAD_PAIRS
    configs = runner.configs()
    rows = []
    for workload, dataset in pairs:
        wanted = {name: configs[name]
                  for name in dict.fromkeys(("conv_4k", *CONFIG_ORDER))}
        results = runner.run_pair_configs(workload, dataset, wanted)
        if results is None:   # quarantined guest violation; row skipped
            continue
        baseline = results["conv_4k"].energy_pj
        normalized = {
            name: (results[name].energy_pj / baseline if baseline else 0.0)
            for name in CONFIG_ORDER
        }
        rows.append(Figure9Row(workload=workload, graph=dataset,
                               normalized=normalized))
    return rows


def averages(rows: list[Figure9Row]) -> dict[str, float]:
    """Geometric-mean normalized energy per configuration."""
    return {
        name: geometric_mean([r.normalized[name] for r in rows])
        for name in CONFIG_ORDER
    }


def headline(rows: list[Figure9Row]) -> dict[str, float]:
    """Headline numbers: DVM-PE's reduction vs 4K (paper: 76%) and its
    advantage over 2M (paper: 3.9x)."""
    avg = averages(rows)
    return {
        "pe_reduction_vs_4k": 1.0 - avg["dvm_pe"],
        "pe_vs_2m": avg["conv_2m"] / avg["dvm_pe"],
        "bm_reduction_vs_4k": 1.0 - avg["dvm_bm"],
    }


def render(rows: list[Figure9Row]) -> str:
    """Render Figure 9 as a table with the geometric-mean row."""
    labels = {"conv_2m": "2M", "conv_1g": "1G", "dvm_bm": "DVM-BM",
              "dvm_pe": "DVM-PE", "dvm_pe_plus": "DVM-PE+"}
    table_rows = [
        [r.workload, r.graph]
        + [f"{r.normalized[name]:.3f}" for name in CONFIG_ORDER]
        for r in rows
    ]
    avg = averages(rows)
    table_rows.append(["geomean", ""]
                      + [f"{avg[name]:.3f}" for name in CONFIG_ORDER])
    head = headline(rows)
    title = ("Figure 9: MMU dynamic energy normalized to 4K "
             f"(DVM-PE {head['pe_reduction_vs_4k'] * 100:.0f}% below 4K, "
             f"{head['pe_vs_2m']:.1f}x below 2M)")
    return render_table(["Workload", "Graph"]
                        + [labels[name] for name in CONFIG_ORDER],
                        table_rows, title=title)


def main(profile: str = "full") -> str:
    """Regenerate Figure 9 and return its rendering.

    Honors ``REPRO_WORKERS`` (parallel pair execution) and
    ``REPRO_CACHE_DIR`` (persistent trace/metrics artifacts).
    """
    runner = ExperimentRunner.from_env(profile=profile)
    workers = workers_from_env()
    if workers > 1:
        runner.run_pairs(workers=workers)   # warm the caches in parallel
    text = render(figure9(runner))
    print(text)
    if runner.resilience.events() or faults.active():
        print(runner.resilience.render())
    return text


if __name__ == "__main__":
    main()
