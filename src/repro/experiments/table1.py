"""Table 1: page-table sizes with and without Permission Entries.

The paper reports, for PageRank's and CF's input heaps, the conventional
page-table size, the fraction of it occupied by L1 PTEs (~95–99%), and the
size after PEs collapse the L1 sub-trees (e.g. LiveJournal: 4280 KB ->
48 KB).

The reproduction builds two page tables over each graph's heap — identity
mapped with PEs, and identity mapped with plain 4 KB PTEs — and reads the
sizes off the real structures.  Segments are excluded, as in the paper,
by measuring a process that maps only the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.algorithms import prop_bytes_for
from repro.accel.layout import place_graph
from repro.experiments.reporting import render_table
from repro.graphs import datasets
from repro.kernel.kernel import Kernel
from repro.kernel.vm_syscalls import MemPolicy

#: Table 1 covers PageRank on the social graphs and CF on the bipartite ones.
TABLE1_INPUTS = (
    ("pagerank", "FR"), ("pagerank", "Wiki"), ("pagerank", "LJ"),
    ("pagerank", "S24"), ("cf", "NF"), ("cf", "Bip1"), ("cf", "Bip2"),
)


@dataclass
class Table1Row:
    """One input graph's page-table accounting."""

    graph: str
    heap_bytes: int
    table_bytes: int          # conventional (4 KB PTEs)
    l1_fraction: float        # fraction of conventional table in L1 nodes
    table_bytes_pe: int       # with Permission Entries

    @property
    def shrink_factor(self) -> float:
        """Conventional-to-PE size ratio."""
        return (self.table_bytes / self.table_bytes_pe
                if self.table_bytes_pe else 0.0)


def _measure(graph, workload: str, use_pes: bool,
             phys_bytes: int) -> tuple[int, int, float]:
    """(heap_bytes, table_bytes, l1_fraction) for one identity-mapped heap."""
    kernel = Kernel(phys_bytes=phys_bytes,
                    policy=MemPolicy(mode="dvm", use_pes=use_pes))
    process = kernel.spawn(name=f"table1-{use_pes}")
    layout = place_graph(process, graph,
                         prop_bytes=prop_bytes_for(workload))
    table = process.page_table
    by_level = table.bytes_by_level()
    total = table.table_bytes()
    l1 = by_level.get(1, 0)
    return layout.heap_bytes, total, (l1 / total if total else 0.0)


def table1(profile: str = "full",
           phys_bytes: int = 2 << 30) -> list[Table1Row]:
    """Compute Table 1 over the seven evaluation inputs."""
    rows = []
    for workload, key in TABLE1_INPUTS:
        graph, _shape = datasets.load(key, profile)
        heap, conventional, l1_frac = _measure(graph, workload, False,
                                               phys_bytes)
        _heap, with_pes, _l1 = _measure(graph, workload, True, phys_bytes)
        rows.append(Table1Row(graph=key, heap_bytes=heap,
                              table_bytes=conventional,
                              l1_fraction=l1_frac, table_bytes_pe=with_pes))
    return rows


def render(rows: list[Table1Row]) -> str:
    """Render Table 1."""
    table_rows = [
        [r.graph, f"{r.heap_bytes // 1024} KB",
         f"{r.table_bytes // 1024} KB", f"{r.l1_fraction:.3f}",
         f"{r.table_bytes_pe // 1024} KB", f"{r.shrink_factor:.1f}x"]
        for r in rows
    ]
    return render_table(
        ["Input", "Heap", "Page tables", "L1 fraction", "With PEs",
         "Shrink"],
        table_rows,
        title="Table 1: page-table sizes (PEs eliminate most L1 PTEs)",
    )


def main(profile: str = "full") -> str:
    """Regenerate Table 1 and return its rendering."""
    text = render(table1(profile))
    print(text)
    return text


if __name__ == "__main__":
    main()
