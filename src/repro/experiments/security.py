"""Extension experiment: ASLR entropy under DVM (Section 5).

The paper's security discussion concedes that DVM trades address-space
randomness: conventional Linux gives the heap ~28 bits of ASLR entropy,
while an identity-mapped heap "gets randomness from physical addresses,
which may have fewer bits" — the allocator is nearly deterministic, so the
only variation comes from prior physical-allocation history.

This experiment measures it: across many boots (seeds) with randomised
boot-time allocation noise, where does a fixed heap allocation land?

* conventional policy — the ASLR'd mmap base moves the heap per boot;
* DVM policy — the heap lands where the buddy allocator's state puts it,
  which concentrates on a handful of physical addresses.

Reported per policy: distinct placements, empirical (sample) entropy, and
the span the placements cover.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.common.perms import Perm
from repro.common.util import human_bytes
from repro.experiments.reporting import render_table
from repro.kernel.kernel import Kernel
from repro.kernel.vm_syscalls import MemPolicy

MB = 1 << 20


@dataclass
class EntropyResult:
    """Placement variability of one policy."""

    policy: str
    samples: int
    distinct: int
    sample_entropy_bits: float
    span_bytes: int

    @property
    def distinct_fraction(self) -> float:
        """Fraction of boots with a unique placement."""
        return self.distinct / self.samples if self.samples else 0.0


def placement_entropy(mode: str, *, samples: int = 64,
                      heap_bytes: int = 4 * MB,
                      phys_bytes: int = 256 * MB,
                      max_noise_pages: int = 2048) -> EntropyResult:
    """Measure heap-placement variability for one policy across boots.

    Each boot allocates a random number of pages first (drivers, early
    daemons — the physical-allocation history the paper says DVM's
    randomness comes from), then maps the measured heap.
    """
    placements: Counter[int] = Counter()
    for seed in range(samples):
        kernel = Kernel(phys_bytes=phys_bytes,
                        policy=MemPolicy(mode=mode), seed=seed)
        proc = kernel.spawn(name="victim")
        proc.setup_segments()
        rng = kernel.new_rng("boot-noise")
        noise_pages = int(rng.integers(0, max_noise_pages))
        if noise_pages:
            proc.vmm.mmap(noise_pages * 4096, Perm.READ_WRITE,
                          name="boot-noise")
        heap = proc.vmm.mmap(heap_bytes, Perm.READ_WRITE, name="heap")
        placements[heap.va] += 1
    total = sum(placements.values())
    entropy = -sum((c / total) * math.log2(c / total)
                   for c in placements.values())
    addresses = sorted(placements)
    span = addresses[-1] - addresses[0] if len(addresses) > 1 else 0
    return EntropyResult(
        policy=mode, samples=samples, distinct=len(placements),
        sample_entropy_bits=entropy, span_bytes=span,
    )


def security_study(samples: int = 64) -> list[EntropyResult]:
    """Both policies' placement entropy."""
    return [
        placement_entropy("conventional", samples=samples),
        placement_entropy("dvm", samples=samples),
    ]


def render(results: list[EntropyResult]) -> str:
    """Render the entropy comparison."""
    rows = [
        [r.policy, f"{r.distinct}/{r.samples}",
         f"{r.sample_entropy_bits:.2f} bits",
         human_bytes(r.span_bytes)]
        for r in results
    ]
    return render_table(
        ["Policy", "Distinct placements", "Sample entropy", "Span"],
        rows,
        title=("Security extension: heap-placement entropy across boots "
               "(Section 5: DVM trades ASLR entropy for identity)"),
    )


def main() -> str:
    """Regenerate the entropy study."""
    text = render(security_study())
    print(text)
    return text


if __name__ == "__main__":
    main()
