"""Figure 2: TLB miss rates for graph workloads (4 KB vs huge pages).

The paper motivates DVM by showing ~21% average miss rates in a 128-entry
fully-associative TLB across the graph workloads, with 2 MB pages helping
by only ~1% on average — except Netflix, whose bipartite skew gives it
near-perfect locality at huge pages.

The reproduction reads the miss rates straight out of the conventional
configurations' runs (the same runs Figures 8/9 use), at the scaled TLB
and analog page sizes recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import faults
from repro.experiments.reporting import render_table
from repro.graphs.datasets import WORKLOAD_PAIRS
from repro.sim.runner import ExperimentRunner, workers_from_env


@dataclass
class Figure2Row:
    """One (workload, graph) bar pair of Figure 2."""

    workload: str
    graph: str
    miss_rate_4k: float
    miss_rate_2m: float


def figure2(runner: ExperimentRunner | None = None,
            pairs=None) -> list[Figure2Row]:
    """Compute the Figure 2 series; reuses the runner's cached runs."""
    runner = runner or ExperimentRunner()
    pairs = pairs if pairs is not None else WORKLOAD_PAIRS
    configs = runner.configs()
    rows = []
    for workload, dataset in pairs:
        results = runner.run_pair_configs(
            workload, dataset,
            {name: configs[name] for name in ("conv_4k", "conv_2m")})
        if results is None:   # quarantined guest violation; row skipped
            continue
        rows.append(Figure2Row(
            workload=workload, graph=dataset,
            miss_rate_4k=results["conv_4k"].tlb_miss_rate,
            miss_rate_2m=results["conv_2m"].tlb_miss_rate))
    return rows


def render(rows: list[Figure2Row]) -> str:
    """Render Figure 2 as a table plus the averages the paper quotes."""
    table_rows = [
        [r.workload, r.graph, f"{r.miss_rate_4k * 100:.1f}%",
         f"{r.miss_rate_2m * 100:.1f}%"]
        for r in rows
    ]
    avg4k = sum(r.miss_rate_4k for r in rows) / len(rows)
    avg2m = sum(r.miss_rate_2m for r in rows) / len(rows)
    table_rows.append(["average", "", f"{avg4k * 100:.1f}%",
                       f"{avg2m * 100:.1f}%"])
    return render_table(
        ["Workload", "Graph", "4K pages", "2M pages (analog)"], table_rows,
        title="Figure 2: TLB miss rates (scaled TLB; paper: 21% avg at 4K)",
    )


def main(profile: str = "full") -> str:
    """Regenerate Figure 2 and return its rendering.

    Honors ``REPRO_WORKERS`` (parallel pair execution) and
    ``REPRO_CACHE_DIR`` (persistent trace/metrics artifacts).
    """
    runner = ExperimentRunner.from_env(profile=profile)
    workers = workers_from_env()
    if workers > 1:
        # Figure 2 only reads the conventional TLBs, but the warmed cache
        # is shared with Figures 8/9, so run the full matrix.
        runner.run_pairs(workers=workers)
    text = render(figure2(runner))
    print(text)
    if runner.resilience.events() or faults.active():
        print(runner.resilience.render())
    return text


if __name__ == "__main__":
    main()
