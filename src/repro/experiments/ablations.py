"""Ablations of DVM's design choices (DESIGN.md experiment index).

Three studies isolating the mechanisms behind the paper's results:

* **AVC size sweep** — Section 4.1.2 claims "even a small 128-entry (1 KB)
  AVC has very high hit rates" *because* PEs shrink the page tables.  The
  sweep shows DVM-PE overhead as the AVC shrinks/grows.
* **PE contribution** — runs the DVM configuration with Permission Entries
  disabled (identity 4 KB PTEs under the same AVC), separating the win of
  compact tables from the win of caching all levels.
* **Bitmap-cache sweep** — DVM-BM's gap to DVM-PE is a reach problem
  (Section 6.3.1); sweeping its cache size shows the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import (
    HardwareScale,
    MMUConfig,
    standard_configs,
    two_level_tlb_config,
)
from repro.experiments.reporting import render_table
from repro.kernel.vm_syscalls import MemPolicy
from repro.sim.runner import ExperimentRunner

#: Default pair: PageRank on the LiveJournal surrogate (a Table 1 input).
DEFAULT_PAIR = ("pagerank", "LJ")


@dataclass
class AblationRow:
    """One ablation point."""

    label: str
    normalized_time: float
    energy_pj: float
    walk_mem_accesses: int


def _run(runner: ExperimentRunner, config: MMUConfig,
         label: str, pair=DEFAULT_PAIR) -> AblationRow:
    metrics = runner.run(pair[0], pair[1], config)
    return AblationRow(label=label,
                       normalized_time=metrics.normalized_time,
                       energy_pj=metrics.energy_pj,
                       walk_mem_accesses=metrics.walk_mem_accesses)


def avc_size_sweep(runner: ExperimentRunner | None = None,
                   sizes=(4, 8, 16, 32, 64),
                   pair=DEFAULT_PAIR) -> list[AblationRow]:
    """DVM-PE under different AVC capacities (in 64 B blocks)."""
    runner = runner or ExperimentRunner()
    base = runner.configs()["dvm_pe"]
    rows = []
    for blocks in sizes:
        ways = min(4, blocks)
        config = replace(base, name=f"dvm_pe_avc{blocks}",
                         walk_cache_blocks=blocks, walk_cache_ways=ways)
        rows.append(_run(runner, config, f"AVC {blocks} blocks "
                                         f"({blocks * 8} entries)", pair))
    return rows


def pe_contribution(runner: ExperimentRunner | None = None,
                    pair=DEFAULT_PAIR) -> list[AblationRow]:
    """DVM with and without Permission Entries, same AVC.

    Without PEs the page tables keep one L1 PTE per 4 KB page; the AVC
    working set explodes and walks start touching memory — quantifying how
    much of DVM-PE's win is the compact representation itself.
    """
    runner = runner or ExperimentRunner()
    base = runner.configs()["dvm_pe"]
    no_pe = replace(base, name="dvm_nope",
                    policy=MemPolicy(mode="dvm", use_pes=False))
    return [
        _run(runner, base, "DVM + Permission Entries", pair),
        _run(runner, no_pe, "DVM + 4K identity PTEs (no PEs)", pair),
    ]


def related_work_comparison(runner: ExperimentRunner | None = None,
                            pair=DEFAULT_PAIR) -> list[AblationRow]:
    """DVM vs the related-work IOMMU baseline (Section 8).

    Cong et al.'s two-level IOMMU TLB reaches within 6.4% of ideal on
    regular workloads; the paper argues TLB hierarchies remain ineffective
    for irregular access patterns — this comparison runs both against the
    same irregular graph workload.
    """
    runner = runner or ExperimentRunner()
    configs = runner.configs()
    scale = runner.scale
    return [
        _run(runner, configs["conv_4k"], "single-level TLB + PWC", pair),
        _run(runner, two_level_tlb_config(scale),
             "two-level TLB + PWC (Cong et al.)", pair),
        _run(runner, configs["dvm_pe_plus"], "DVM-PE+", pair),
    ]


def pe_format_comparison(runner: ExperimentRunner | None = None,
                         pair=DEFAULT_PAIR) -> list[AblationRow]:
    """The paper's PE format vs the spare-PTE-bits alternative.

    Section 4.1.1's "Alternatives": reusing unused PTE bits gives only four
    512 KB regions at L2 (eight 128 MB at L3), so identity ranges need
    512 KB alignment/size to avoid falling back to L1 PTEs — coarser
    coverage, bigger tables, more AVC pressure.
    """
    runner = runner or ExperimentRunner()
    base = runner.configs()["dvm_pe"]
    spare = replace(base, name="dvm_pe_spare",
                    policy=MemPolicy(mode="dvm", use_pes=True,
                                     pe_format="spare_bits"))
    return [
        _run(runner, base, "16-field Permission Entries (new format)", pair),
        _run(runner, spare, "spare PTE bits (4 regions at L2)", pair),
    ]


def bitmap_cache_sweep(runner: ExperimentRunner | None = None,
                       sizes=(8, 16, 32, 64, 128),
                       pair=DEFAULT_PAIR) -> list[AblationRow]:
    """DVM-BM under different bitmap-cache capacities (8 B words)."""
    runner = runner or ExperimentRunner()
    base = runner.configs()["dvm_bm"]
    rows = []
    for words in sizes:
        config = replace(base, name=f"dvm_bm_{words}",
                         bitmap_cache_blocks=words)
        rows.append(_run(runner, config,
                         f"bitmap cache {words} words (reach "
                         f"{words * 128 // 1024} MB)", pair))
    return rows


def energy_sensitivity(runner: ExperimentRunner | None = None,
                       tlb_fa_costs=(10.0, 20.0, 40.0, 80.0),
                       pair=DEFAULT_PAIR) -> list[AblationRow]:
    """Figure 9's conclusion under different FA-TLB energy assumptions.

    Our CACTI-like table fixes the FA-TLB : SRAM access-energy ratio; this
    sweep recomputes DVM-PE's energy saving over the 4K baseline for a
    range of ratios, showing the *ordering* is insensitive to the exact
    CACTI numbers (only the saving's magnitude moves).
    """
    from repro.hw.energy import DEFAULT_ENERGY_PJ, EnergyModel

    runner = runner or ExperimentRunner()
    configs = runner.configs()
    base_4k = runner.run(pair[0], pair[1], configs["conv_4k"])
    base_pe = runner.run(pair[0], pair[1], configs["dvm_pe"])
    rows = []
    for cost in tlb_fa_costs:
        table = dict(DEFAULT_ENERGY_PJ)
        table["tlb_fa_lookup"] = cost
        model = EnergyModel(table=table)
        # Recost both configurations' recorded events under this table.
        e4k = sum(model.cost(ev) * n
                  for ev, n in base_4k_events(runner, pair).items())
        epe = sum(model.cost(ev) * n
                  for ev, n in base_pe_events(runner, pair).items())
        rows.append(AblationRow(
            label=f"FA TLB {cost:.0f} pJ (ratio {cost / 2:.0f}:1): "
                  f"DVM-PE at {epe / e4k * 100:.0f}% of 4K energy",
            normalized_time=epe / e4k,
            energy_pj=epe,
            walk_mem_accesses=base_pe.walk_mem_accesses,
        ))
    return rows


def base_4k_events(runner: ExperimentRunner, pair) -> dict[str, int]:
    """Event counts of the cached conv_4k run (for recosting)."""
    return _events_for(runner, pair, "conv_4k")


def base_pe_events(runner: ExperimentRunner, pair) -> dict[str, int]:
    """Event counts of the cached dvm_pe run (for recosting)."""
    return _events_for(runner, pair, "dvm_pe")


def _events_for(runner: ExperimentRunner, pair,
                config_name: str) -> dict[str, int]:
    # Metrics don't retain event counts, so re-simulate once through a
    # fresh system; the runner's caches make repeated calls cheap for the
    # metrics themselves, and this path is only used by the sweep.
    from repro.accel.algorithms import prop_bytes_for
    from repro.sim.system import HeterogeneousSystem

    key = ("_events", pair, config_name)
    cached = runner._metrics.get(key)
    if cached is not None:
        return cached
    prepared = runner.prepare(*pair)
    system = HeterogeneousSystem(runner.configs()[config_name],
                                 runner.params)
    system.load_graph(prepared.graph, prop_bytes=prop_bytes_for(pair[0]))
    stats = system.run_trace(prepared.result.trace)
    events = dict(stats.energy.events)
    runner._metrics[key] = events
    return events


def scratchpad_sensitivity(runner: ExperimentRunner | None = None,
                           pair=DEFAULT_PAIR) -> list[AblationRow]:
    """VM overheads with Graphicionado's on-chip scratchpad restored.

    The real Graphicionado keeps destination-side temporary properties in
    on-chip eDRAM; the paper evaluates the accelerator *without* a
    scratchpad (Section 6.1), which routes the irregular reduce stream
    through the MMU.  Restoring the scratchpad (dropping the temp stream
    from the memory trace) shows how much of each configuration's overhead
    that one stream causes — and that DVM wins either way.
    """
    from repro.accel import trace as T
    from repro.accel.algorithms import prop_bytes_for
    from repro.accel.trace import SymbolicTrace
    from repro.sim.system import HeterogeneousSystem

    runner = runner or ExperimentRunner()
    prepared = runner.prepare(*pair)
    full = prepared.result.trace
    mask = full.streams != T.VPROP_TMP
    scratch = SymbolicTrace(streams=full.streams[mask],
                            offsets=full.offsets[mask],
                            writes=full.writes[mask])
    rows = []
    for name in ("conv_4k", "dvm_pe_plus"):
        config = runner.configs()[name]
        for label, trace in (("no scratchpad (paper)", full),
                             ("with scratchpad", scratch)):
            system = HeterogeneousSystem(config, runner.params)
            system.load_graph(prepared.graph,
                              prop_bytes=prop_bytes_for(pair[0]))
            metrics = system.run(trace, workload=pair[0], graph=pair[1])
            rows.append(AblationRow(
                label=f"{config.label}, {label}",
                normalized_time=metrics.normalized_time,
                energy_pj=metrics.energy_pj,
                walk_mem_accesses=metrics.walk_mem_accesses,
            ))
    return rows


def render(title: str, rows: list[AblationRow]) -> str:
    """Render one ablation as a table."""
    table_rows = [
        [r.label, f"{r.normalized_time:.3f}",
         f"{(r.normalized_time - 1) * 100:.1f}%", str(r.walk_mem_accesses)]
        for r in rows
    ]
    return render_table(
        ["Design point", "Norm. time", "VM overhead", "Walk mem accesses"],
        table_rows, title=title)


def main(profile: str = "full") -> str:
    """Run all three ablations on one shared runner."""
    scale = HardwareScale() if profile == "full" else HardwareScale.bench()
    runner = ExperimentRunner(profile=profile, scale=scale)
    parts = [
        render("Ablation: AVC capacity (DVM-PE)", avc_size_sweep(runner)),
        render("Ablation: Permission Entries' contribution",
               pe_contribution(runner)),
        render("Ablation: PE format vs spare PTE bits (Section 4.1.1)",
               pe_format_comparison(runner)),
        render("Ablation: bitmap-cache capacity (DVM-BM)",
               bitmap_cache_sweep(runner)),
        render("Related work: two-level IOMMU TLB vs DVM (Section 8)",
               related_work_comparison(runner)),
        render("Ablation: Graphicionado scratchpad sensitivity",
               scratchpad_sensitivity(runner)),
        render("Ablation: energy-table sensitivity (Figure 9 robustness)",
               energy_sensitivity(runner)),
    ]
    text = "\n\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":
    main()
