"""Table 5: lines of code changed for DVM's OS support.

The paper's Table 5 counts the Linux 4.10 lines its prototype changed per
feature (252 lines total).  The reproduction's analog: count the source
lines of the mini-kernel code that exists *specifically* for DVM — the same
feature rows, measured over our modules with ``inspect`` — and print them
beside the paper's numbers.  The point being reproduced is the paper's
claim that DVM needs only *modest* OS changes: identity mapping, PEs and
the flexible address space are a few hundred lines here too.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.kernel import identity, page_table, process
from repro.kernel.address_space import AddressSpace
from repro.kernel.vm_syscalls import VMM

#: The paper's Table 5 (lines changed in Linux v4.10).
PAPER_LOC = {
    "Code Segment": 39,
    "Heap Segment": 1,
    "Memory-mapped Segments": 56,
    "Stack Segment": 63,
    "Page Tables": 78,
    "Miscellaneous": 15,
}


def _loc(obj) -> int:
    """Source lines of a function/class, excluding blanks and comments."""
    lines = inspect.getsource(obj).splitlines()
    return sum(1 for line in lines
               if line.strip() and not line.strip().startswith("#"))


@dataclass
class Table5Row:
    """One feature row: paper LoC vs this reproduction's LoC."""

    feature: str
    paper_loc: int
    our_loc: int


def table5() -> list[Table5Row]:
    """Measure our DVM-specific kernel code per Table 5 feature."""
    ours = {
        # Identity mapping of the PIE code+globals blob (Section 7.2).
        "Code Segment": _loc(process.Process._identity_segment),
        # malloc-always-mmap makes the heap memory-mapped segments; the
        # single-line analog is the policy switch in mmap().
        "Heap Segment": 1,
        # Figure 7's allocation algorithm + the flexible placement.
        "Memory-mapped Segments": (
            _loc(identity.IdentityMapper.try_map)
            + _loc(AddressSpace.reserve_exact)
        ),
        # Eager 8 MB stacks moved to VA == PA.
        "Stack Segment": _loc(process.Process.setup_segments),
        # Permission Entries and their installation/split/clear paths.
        "Page Tables": (
            _loc(page_table.PermissionEntry)
            + _loc(page_table.PageTable.map_identity_range)
            + _loc(page_table.PageTable._cover_identity)
        ),
        # Policy plumbing.
        "Miscellaneous": _loc(VMM.mmap),
    }
    return [Table5Row(feature=k, paper_loc=PAPER_LOC[k], our_loc=ours[k])
            for k in PAPER_LOC]


def render(rows: list[Table5Row]) -> str:
    """Render Table 5 with totals."""
    table_rows = [[r.feature, str(r.paper_loc), str(r.our_loc)]
                  for r in rows]
    table_rows.append(["Total", str(sum(r.paper_loc for r in rows)),
                       str(sum(r.our_loc for r in rows))])
    return render_table(
        ["Affected Feature", "Paper LoC (Linux 4.10)", "This repo LoC"],
        table_rows,
        title="Table 5: OS changes required by DVM are modest",
    )


def main() -> str:
    """Regenerate Table 5 and return its rendering."""
    text = render(table5())
    print(text)
    return text


if __name__ == "__main__":
    main()
