"""Figure 10: cDVM's VM overheads for CPU-only workloads.

The paper estimates, from hardware counters plus BadgerTrap
instrumentation, ~29% average VM overhead with 4 KB pages (mcf: 84%), ~13%
with THP, and within 5% of ideal under cDVM — the benefit coming from
shorter page walks with fewer memory accesses through the AVC over
PE-compacted page tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cdvm import CPUOverheadResult
from repro.cpu.model import CPUModel
from repro.experiments.reporting import render_table

#: Figure 10's workload order.
WORKLOAD_ORDER = ("mcf", "bt", "cg", "canneal", "xsbench")
CONFIG_ORDER = ("cpu_4k", "cpu_thp", "cpu_cdvm")


@dataclass
class Figure10Row:
    """One workload's three bars."""

    workload: str
    results: dict[str, CPUOverheadResult]


def figure10(model: CPUModel | None = None,
             workloads=WORKLOAD_ORDER) -> list[Figure10Row]:
    """Compute the Figure 10 matrix."""
    model = model or CPUModel()
    matrix = model.evaluate_all(workloads)
    return [
        Figure10Row(workload=name,
                    results={cfg: matrix[(name, cfg)]
                             for cfg in CONFIG_ORDER})
        for name in workloads
    ]


def averages(rows: list[Figure10Row]) -> dict[str, float]:
    """Arithmetic-mean overhead per configuration (as the paper reports)."""
    return {
        cfg: sum(r.results[cfg].overhead for r in rows) / len(rows)
        for cfg in CONFIG_ORDER
    }


def render(rows: list[Figure10Row]) -> str:
    """Render Figure 10 with the average row."""
    labels = {"cpu_4k": "4K", "cpu_thp": "THP", "cpu_cdvm": "cDVM"}
    table_rows = [
        [r.workload]
        + [f"{r.results[cfg].overhead * 100:.1f}%" for cfg in CONFIG_ORDER]
        for r in rows
    ]
    avg = averages(rows)
    table_rows.append(["average"]
                      + [f"{avg[cfg] * 100:.1f}%" for cfg in CONFIG_ORDER])
    return render_table(
        ["Workload"] + [labels[cfg] for cfg in CONFIG_ORDER], table_rows,
        title=("Figure 10: CPU VM overheads vs ideal "
               "(paper: 29% / 13% / 5% average)"),
    )


def main() -> str:
    """Regenerate Figure 10 and return its rendering."""
    text = render(figure10())
    print(text)
    return text


if __name__ == "__main__":
    main()
