"""The shbench-style allocator stressor (for Table 4).

The paper configures MicroQuill's shbench to continuously allocate
variable-size chunks until identity mapping first fails (VA != PA), then
reports the percentage of system memory allocated at that point, for three
experiments:

1. small chunks, 100–10,000 bytes (pool-served);
2. large chunks, 100,000–10,000,000 bytes (direct mmaps);
3. four concurrent instances of experiment 2.

Our stressor mirrors shbench's alloc/free mix: each round allocates a batch
of uniformly-sized chunks and frees a batch-sized fraction of the live set,
churning the buddy allocator the way long-running programs do.  Chunk
lifetimes follow shbench's (and most allocator benchmarks') skew: the large
majority of frees hit recently-allocated chunks (short-lived objects, whose
regions coalesce back), while a minority hit arbitrary old chunks
(long-lived objects, which scatter durable fragmentation).  A cell ends at
the first allocation whose identity mapping fails (either failure mode:
physical contiguity or VA conflict), or when memory is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import OutOfMemoryError
from repro.kernel.kernel import Kernel
from repro.kernel.malloc import MallocError
from repro.kernel.process import Process
from repro.kernel.vm_syscalls import MemPolicy


@dataclass
class ShbenchResult:
    """Outcome of one shbench cell."""

    total_memory: int
    allocated_at_failure: int     # bytes allocated when identity first failed
    failed: bool                  # False if memory ran out with VA==PA intact
    allocations: int

    @property
    def percent_allocated(self) -> float:
        """The Table 4 metric: % of system memory allocated with VA == PA."""
        return 100.0 * self.allocated_at_failure / self.total_memory


def run_shbench(total_memory: int, chunk_min: int, chunk_max: int, *,
                instances: int = 1, batch: int = 64,
                free_fraction: float = 0.3, old_free_fraction: float = 0.1,
                seed: int = 0) -> ShbenchResult:
    """Run one shbench cell; see the module docstring for the protocol."""
    if chunk_min <= 0 or chunk_max < chunk_min:
        raise ValueError("invalid chunk size range")
    kernel = Kernel(phys_bytes=total_memory,
                    policy=MemPolicy(mode="dvm", use_pes=True), seed=seed)
    procs: list[Process] = []
    for i in range(instances):
        proc = kernel.spawn(name=f"shbench-{i}")
        proc.setup_segments()
        procs.append(proc)
    rng = np.random.default_rng(seed)
    live: list[list[int]] = [[] for _ in procs]
    allocations = 0
    while True:
        for idx, proc in enumerate(procs):
            mapper_stats = proc.vmm.identity_mapper.stats
            sizes = rng.integers(chunk_min, chunk_max + 1, batch)
            for size in sizes.tolist():
                failures_before = mapper_stats.failures
                try:
                    va = proc.malloc.malloc(size)
                except (MallocError, OutOfMemoryError):
                    # Identity failed and even the demand-paged fallback
                    # could not find frames: memory is truly exhausted.
                    failed = mapper_stats.failures > failures_before
                    return _result(kernel, total_memory, failed, allocations)
                allocations += 1
                if mapper_stats.failures > failures_before:
                    return _result(kernel, total_memory, True, allocations)
                live[idx].append(va)
            # shbench's churn: free a batch-sized fraction of live chunks.
            # Most frees are LIFO (short-lived objects); a minority hit
            # arbitrary old chunks, planting durable fragmentation.
            nfree = min(int(batch * free_fraction), len(live[idx]))
            for _ in range(nfree):
                chunks = live[idx]
                if rng.random() < old_free_fraction:
                    pos = int(rng.integers(0, len(chunks)))
                else:
                    pos = len(chunks) - 1 - int(rng.integers(0, min(
                        batch, len(chunks))))
                proc.malloc.free(chunks[pos])
                del chunks[pos]
            if kernel.phys.free_bytes < chunk_max + (1 << 20):
                # Memory exhausted without an identity failure.
                return _result(kernel, total_memory, False, allocations)


def _result(kernel: Kernel, total_memory: int, failed: bool,
            allocations: int) -> ShbenchResult:
    return ShbenchResult(
        total_memory=total_memory,
        allocated_at_failure=kernel.phys.used_bytes,
        failed=failed,
        allocations=allocations,
    )
