"""Table 4: percentage of memory identity-mappable under fragmentation.

The paper runs shbench against systems with 16 / 32 / 64 GB of memory and
finds 95–97% of memory can be allocated with VA == PA before identity
mapping first fails, across all three experiments.

The reproduction runs the same three experiments at scaled memory sizes
(1 / 2 / 4 GB by default — the chunk:pool:memory ratios, which govern buddy
fragmentation behaviour, are preserved; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.experiments.shbench import ShbenchResult, run_shbench

#: The paper's three experiments: (chunk_min, chunk_max, instances).
EXPERIMENTS = {
    "expt1": (100, 10_000, 1),
    "expt2": (100_000, 10_000_000, 1),
    "expt3": (100_000, 10_000_000, 4),
}

#: Scaled memory sizes standing in for the paper's 16 / 32 / 64 GB (the
#: simulator handles the paper's sizes too — pass them explicitly — but the
#: small-chunk experiment's allocation count grows linearly with memory).
DEFAULT_MEMORY_SIZES = (2 << 30, 4 << 30, 8 << 30)


@dataclass
class Table4Cell:
    """One (memory size, experiment) cell."""

    memory: int
    experiment: str
    result: ShbenchResult


def table4(memory_sizes=DEFAULT_MEMORY_SIZES,
           experiments=None, seed: int = 0) -> list[Table4Cell]:
    """Run the full Table 4 grid."""
    chosen = experiments or list(EXPERIMENTS)
    cells = []
    for memory in memory_sizes:
        for name in chosen:
            chunk_min, chunk_max, instances = EXPERIMENTS[name]
            result = run_shbench(memory, chunk_min, chunk_max,
                                 instances=instances, seed=seed)
            cells.append(Table4Cell(memory=memory, experiment=name,
                                    result=result))
    return cells


def render(cells: list[Table4Cell]) -> str:
    """Render Table 4 (rows: memory sizes; columns: experiments)."""
    experiments = sorted({c.experiment for c in cells})
    memories = sorted({c.memory for c in cells})
    index = {(c.memory, c.experiment): c.result for c in cells}
    rows = []
    for memory in memories:
        row = [f"{memory >> 30} GB"]
        for name in experiments:
            result = index[(memory, name)]
            marker = "" if result.failed else "*"
            row.append(f"{result.percent_allocated:.0f}%{marker}")
        rows.append(row)
    return render_table(
        ["System Memory"] + [e.capitalize() for e in experiments], rows,
        title=("Table 4: % of memory allocated with VA == PA before identity "
               "mapping failed (*: memory exhausted with no failure)"),
    )


def main() -> str:
    """Regenerate Table 4 and return its rendering."""
    text = render(table4())
    print(text)
    return text


if __name__ == "__main__":
    main()
