"""ASCII rendering of experiment tables and bar series.

Every experiment module renders through these helpers so the regenerated
tables/figures have a uniform look in benchmark output and in
EXPERIMENTS.md.  Also hosts the static configuration dumps standing in for
the paper's Table 2 (simulation configuration) and Table 3 (datasets).
"""

from __future__ import annotations

from repro.common.util import human_bytes
from repro.core.config import HardwareScale, standard_configs
from repro.graphs.datasets import DATASETS
from repro.sim.system import SystemParams


def render_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Render a fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(series: dict[str, float], *, width: int = 50,
                title: str = "", fmt: str = "{:.3f}") -> str:
    """Render a labelled horizontal bar chart (one bar per entry)."""
    if not series:
        return title
    peak = max(series.values()) or 1.0
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for label, value in series.items():
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)


def render_histogram(hist: dict, *, title: str = "", width: int = 40) -> str:
    """Render a power-of-two-binned histogram dict as labelled bars.

    ``hist`` is the JSON form produced by
    :meth:`repro.obs.core.Histogram.to_dict` (sparse ``bins`` keyed by
    bin index, plus exact ``count``/``total``/``min``/``max``).  Empty
    bins between populated ones are shown so the shape reads correctly;
    the exact mean survives the binning.  Emitters accept these
    histogram payloads without perturbing any existing table output —
    the round-trip test in ``tests/experiments`` pins both properties.
    """
    bins = {int(k): int(v) for k, v in (hist.get("bins") or {}).items()}
    count = int(hist.get("count", 0))
    header = title or "histogram"
    if not bins or not count:
        return f"{header}\n  (empty)"
    lo_bin, hi_bin = min(bins), max(bins)
    peak = max(bins.values())
    lines = [header]
    for i in range(lo_bin, hi_bin + 1):
        n = bins.get(i, 0)
        lo = 0 if i == 0 else 1 << (i - 1)
        hi = 1 if i == 0 else 1 << i
        label = f"[{lo}, {hi})"
        bar = "#" * max(0, round(width * n / peak))
        share = 100.0 * n / count
        lines.append(f"  {label.rjust(24)} | {bar.ljust(width)} "
                     f"{n} ({share:.1f}%)")
    mean = hist.get("total", 0) / count
    lines.append(f"  count {count}, mean {mean:.1f}, "
                 f"min {hist.get('min')}, max {hist.get('max')}")
    return "\n".join(lines)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (for normalized-time averaging)."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def table2_text(scale: HardwareScale | None = None,
                params: SystemParams | None = None) -> str:
    """Our analog of Table 2: the simulation configuration."""
    scale = scale or HardwareScale()
    params = params or SystemParams()
    configs = standard_configs(scale)
    rows = [
        ["Accelerator", "8 processing engines (Graphicionado model)"],
        ["TLB", f"{scale.tlb_entries}-entry FA, 1 cycle "
                f"(paper: 128-entry FA)"],
        ["PWC/AVC", f"{scale.walk_cache_blocks} x 64 B blocks, "
                    f"{scale.walk_cache_ways}-way, 1 cycle"],
        ["Bitmap cache", f"{scale.bitmap_cache_blocks} x 8 B words, 4-way"],
        ["Page sizes", f"4 KB / {human_bytes(scale.page_2m)} analog of 2 MB"
                       f" / {human_bytes(scale.page_1g)} analog of 1 GB"],
        ["Memory", f"{human_bytes(params.phys_bytes)} "
                   f"(paper: 32 GB, 4x DDR4)"],
        ["Latency", f"data {params.data_latency} cyc, "
                    f"walk {params.walk_latency} cyc, MLP {params.mlp}"],
        ["Configurations", ", ".join(c.label for c in configs.values())],
    ]
    return render_table(["Component", "Setting"], rows,
                        title="Table 2 (analog): simulation configuration")


def table3_text(profile: str = "full") -> str:
    """Our analog of Table 3: datasets and their surrogates."""
    rows = []
    for key, ds in DATASETS.items():
        graph, shape = ds.build(profile)
        detail = (f"{shape.num_users} users / {shape.num_items} items"
                  if shape is not None else f"{graph.num_vertices} vertices")
        rows.append([
            key, ds.name,
            f"{ds.paper.vertices} / {ds.paper.edges} edges",
            f"{detail}, {graph.num_edges} edges",
        ])
    return render_table(
        ["Key", "Graph", "Paper size", f"Surrogate ({profile})"], rows,
        title="Table 3 (analog): graph datasets",
    )
