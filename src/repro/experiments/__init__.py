"""Experiment modules: one per paper table/figure (see DESIGN.md index)."""

from repro.experiments import (  # noqa: F401
    ablations,
    figure2,
    figure8,
    figure9,
    figure10,
    multiplexing,
    reporting,
    security,
    shbench,
    table1,
    table4,
    table5,
    virt_extension,
)

__all__ = [
    "ablations",
    "figure2",
    "figure8",
    "figure9",
    "figure10",
    "multiplexing",
    "reporting",
    "security",
    "shbench",
    "table1",
    "table4",
    "table5",
    "virt_extension",
]
