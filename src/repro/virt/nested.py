"""DVM in virtualized environments (paper Section 5, "Virtual Machines").

Virtualization doubles translation work: a guest virtual address (gVA) must
be translated to a guest physical address (gPA) through the guest's page
table, and every gPA — including the guest page-table entries themselves —
must be translated to a system physical address (sPA) through the
hypervisor's nested table.  A conventional 4x4-level 2D walk costs 24
memory accesses per TLB miss.

The paper sketches three DVM extensions, all reproduced here as the four
combinations of (guest policy, host policy):

==============  =================================================================
``nested``      conventional guest + conventional host: the full 2D walk
``host_dvm``    hypervisor identity-maps guest RAM (gPA == sPA): guest-table
                accesses hit memory directly; the host dimension becomes DAV
``guest_dvm``   guest OS identity-maps (gVA == gPA): the guest dimension
                becomes DAV; one 1D host walk translates the data address
``full_dvm``    both: gVA == gPA == sPA; translation disappears, leaving
                region-level validation in the AVCs
==============  =================================================================

Guest RAM is one eagerly-allocated host region *presented to the guest at
gPA == sPA* (the paper's "guest OS support for multiple non-contiguous
physical memory regions"), so identity holds end-to-end when both levels
use DVM.  All page tables are real: the guest's table nodes live in guest
RAM, so their entry addresses are gPAs that genuinely need the host
dimension — exactly the recursion that makes nested walks quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PageFault
from repro.common.perms import Perm
from repro.hw.walkcache import AccessValidationCache, PageWalkCache
from repro.hw.walker import PageTableWalker
from repro.kernel.kernel import Kernel
from repro.kernel.vm_syscalls import Allocation, MemPolicy

#: The four schemes: (name, guest uses DVM, host uses DVM).
SCHEMES = {
    "nested": (False, False),
    "host_dvm": (False, True),
    "guest_dvm": (True, False),
    "full_dvm": (True, True),
}


@dataclass
class NestedTranslation:
    """Cost breakdown of translating one gVA."""

    gva: int
    spa: int
    guest_mem_accesses: int      # guest page-table entry fetches (at sPAs)
    host_mem_accesses: int       # host page-table entry fetches
    guest_sram_accesses: int     # guest-dimension walk-cache hits
    host_sram_accesses: int      # host-dimension walk-cache hits
    identity_end_to_end: bool    # gVA == sPA

    @property
    def total_mem_accesses(self) -> int:
        """Memory accesses this translation put on the critical path."""
        return self.guest_mem_accesses + self.host_mem_accesses


class VirtualizedSystem:
    """One guest running over one hypervisor, under a chosen scheme."""

    def __init__(self, scheme: str, *, host_bytes: int = 1 << 30,
                 guest_bytes: int = 256 << 20, seed: int = 0):
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; have {sorted(SCHEMES)}")
        self.scheme = scheme
        guest_dvm, host_dvm = SCHEMES[scheme]
        host_policy = MemPolicy(mode="dvm" if host_dvm else "conventional")
        guest_policy = MemPolicy(mode="dvm" if guest_dvm else "conventional")
        # The hypervisor allocates guest RAM eagerly and contiguously; the
        # nested table maps the gPA range [base, base+size).
        self.host = Kernel(phys_bytes=host_bytes, policy=host_policy,
                           seed=seed)
        self.hypervisor = self.host.spawn(name=f"hypervisor-{scheme}")
        # Guest RAM is aligned to the largest PE sub-region (64 MB) so the
        # guest's internal buddy alignments hold as absolute alignments —
        # real hypervisors align guest RAM for the same reason.
        self.guest_ram: Allocation = self.hypervisor.vmm.mmap(
            guest_bytes, Perm.READ_WRITE, name="guest-ram",
            alignment=64 << 20)
        # The guest sees its RAM at gPA == the VA the hypervisor mapped it
        # at.  Under a DVM host that VA equals the sPA (identity); under a
        # conventional host it does not, and the nested table translates.
        self.guest = Kernel(phys_bytes=guest_bytes, seed=seed + 1,
                            policy=guest_policy,
                            phys_base=self.guest_ram.va)
        self.guest_process = self.guest.spawn(name=f"guest-{scheme}")
        # Walk machinery: DVM dimensions get an AVC, conventional get a PWC.
        self._guest_walker = PageTableWalker(
            self.guest_process.page_table,
            AccessValidationCache() if guest_dvm else PageWalkCache())
        self._host_walker = PageTableWalker(
            self.hypervisor.page_table,
            AccessValidationCache() if host_dvm else PageWalkCache())

    # -- guest-side allocation -----------------------------------------------------

    def guest_mmap(self, size: int,
                   perm: Perm = Perm.READ_WRITE) -> Allocation:
        """Allocate guest memory (identity mapped under a DVM guest)."""
        return self.guest_process.vmm.mmap(size, perm)

    # -- translation -----------------------------------------------------------------

    def translate(self, gva: int) -> NestedTranslation:
        """Translate one gVA to its sPA, accounting the 2D walk costs."""
        guest_mem = guest_sram = host_mem = host_sram = 0
        # Dimension 1: the guest walk.  Each visited guest-table entry is a
        # memory word at some gPA that the host dimension must resolve.
        ginfo, gsram, gmem = self._guest_walker.walk(gva)
        if not ginfo[0]:
            raise PageFault(gva, f"guest page fault at {gva:#x}")
        guest_sram += gsram
        guest_mem += gmem
        # Entry fetches that missed the guest walk cache go to memory at
        # their gPAs: each one costs a host-dimension resolution.  Misses
        # concentrate at the leaf end of the walk, so the last ``gmem``
        # visited entries are the ones charged (exact for cold walks).
        visited = self.guest_process.page_table.walk(gva).visited
        for entry_gpa in (visited[-gmem:] if gmem else []):
            hsram, hmem = self._resolve_host(entry_gpa)
            host_sram += hsram
            host_mem += hmem
        gpa = ginfo[2] + (gva & 0xFFF)
        # Dimension 2: resolve the data gPA itself.
        hsram, hmem = self._resolve_host(gpa)
        host_sram += hsram
        host_mem += hmem
        hinfo = self._host_walker.info_for(gpa >> 12)
        if not hinfo[0]:
            raise PageFault(gpa, f"host page fault at gPA {gpa:#x}")
        spa = hinfo[2] + (gpa & 0xFFF)
        return NestedTranslation(
            gva=gva, spa=spa,
            guest_mem_accesses=guest_mem, host_mem_accesses=host_mem,
            guest_sram_accesses=guest_sram, host_sram_accesses=host_sram,
            identity_end_to_end=(spa == gva),
        )

    # -- internals ----------------------------------------------------------------------

    def _resolve_host(self, gpa: int) -> tuple[int, int]:
        """Host-dimension resolution of one gPA: (sram, mem) accesses."""
        hinfo, hsram, hmem = self._host_walker.walk(gpa)
        if not hinfo[0]:
            raise PageFault(gpa, f"host page fault at gPA {gpa:#x}")
        return hsram, hmem


def compare_schemes(buffer_size: int = 8 << 20, probes: int = 512,
                    seed: int = 3, mode: str = "steady"
                    ) -> dict[str, dict[str, float]]:
    """Average 2D-walk costs per scheme over random probes of a buffer.

    ``mode="steady"`` keeps the walk caches warm across probes — the
    operating point the paper's DVM claims concern: PE-compacted tables
    stay AVC-resident while conventional dimensions keep fetching L1 PTEs
    from memory, so the 2D walk collapses toward one dimension
    (``host_dvm``/``guest_dvm``) or to pure validation (``full_dvm``).

    ``mode="cold"`` flushes the caches before every probe, giving the
    worst-case per-TLB-miss cost (the regime of the textbook 24-access 2D
    walk; intra-walk cache reuse still helps, as real nested walkers do).
    """
    import numpy as np
    if mode not in ("steady", "cold"):
        raise ValueError(f"unknown mode {mode!r}")
    out: dict[str, dict[str, float]] = {}
    for scheme in SCHEMES:
        system = VirtualizedSystem(scheme)
        alloc = system.guest_mmap(buffer_size)
        rng = np.random.default_rng(seed)
        offsets = rng.integers(0, buffer_size // 8, probes) * 8
        mem = sram = identity = 0
        for offset in offsets.tolist():
            if mode == "cold":
                system._guest_walker.cache.invalidate_all()
                system._host_walker.cache.invalidate_all()
            t = system.translate(alloc.va + int(offset))
            mem += t.total_mem_accesses
            sram += t.guest_sram_accesses + t.host_sram_accesses
            identity += t.identity_end_to_end
        out[scheme] = {
            "mem_per_miss": mem / probes,
            "sram_per_miss": sram / probes,
            "identity_fraction": identity / probes,
        }
    return out
