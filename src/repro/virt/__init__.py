"""Virtualization extension: DVM across the 2D translation (Section 5)."""

from repro.virt.nested import (
    SCHEMES,
    NestedTranslation,
    VirtualizedSystem,
    compare_schemes,
)

__all__ = [
    "SCHEMES",
    "NestedTranslation",
    "VirtualizedSystem",
    "compare_schemes",
]
