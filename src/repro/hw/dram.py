"""DRAM timing and accounting.

The paper's system (Table 2) has four DDR4 channels (51.2 GB/s) behind a
1 GHz accelerator.  The trace-driven model needs two numbers from DRAM:

* ``data_latency`` — average load-to-use latency of a data access, which
  sets the ideal (no-MMU) execution time together with the accelerator's
  memory-level parallelism;
* ``walk_latency`` — average latency of a page-table / bitmap fetch.  Walk
  references exhibit strong row-buffer and memory-controller locality, so
  they resolve faster than demand data misses on average.

Both are in accelerator cycles.  The model also counts every access for the
dynamic-energy report (Figure 9), and tracks row-buffer locality of the
demand-data stream (open-row hits per bank) as a pure counter: rows inform
the bandwidth discussion but carry no latency in the two-number model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default latencies (accelerator cycles at 1 GHz).
DEFAULT_DATA_LATENCY = 100
DEFAULT_WALK_LATENCY = 70

#: Row-locality model: 16 banks, bank = low page bits, row = high page
#: bits.  Derived from the *virtual* 4 KB page stream so both timing
#: engines (and their fault-segment replays) account identically.
NUM_BANKS = 16
_BANK_MASK = NUM_BANKS - 1
_BANK_SHIFT = 4


@dataclass
class DRAMStats:
    """Access counters by requester."""

    data_accesses: int = 0
    walk_accesses: int = 0      # page table / bitmap fetches
    squashed_preloads: int = 0  # DVM-PE+ preloads discarded after DAV failure
    row_hits: int = 0           # demand-data accesses to the open row
    row_misses: int = 0         # demand-data accesses that opened a row

    @property
    def total_accesses(self) -> int:
        """All DRAM accesses including squashed preloads."""
        return self.data_accesses + self.walk_accesses + self.squashed_preloads

    def to_dict(self) -> dict[str, int]:
        """Counter snapshot (observability reporting, ``repro.obs``)."""
        return {"data_accesses": self.data_accesses,
                "walk_accesses": self.walk_accesses,
                "squashed_preloads": self.squashed_preloads,
                "row_hits": self.row_hits,
                "row_misses": self.row_misses}


@dataclass
class DRAMModel:
    """Latency source and access counter for the memory system."""

    data_latency: int = DEFAULT_DATA_LATENCY
    walk_latency: int = DEFAULT_WALK_LATENCY
    stats: DRAMStats = field(default_factory=DRAMStats)
    #: Open row per bank (-1 = closed), advanced by :meth:`account_rows`.
    _last_rows: list[int] = field(default_factory=lambda: [-1] * NUM_BANKS)

    def data_access(self) -> int:
        """One demand data access; returns its latency in cycles."""
        self.stats.data_accesses += 1
        return self.data_latency

    def walk_access(self) -> int:
        """One page-table/bitmap fetch; returns its latency in cycles."""
        self.stats.walk_accesses += 1
        return self.walk_latency

    def squashed_preload(self) -> None:
        """A preload issued in parallel with DAV that had to be discarded.

        Costs energy and bandwidth but no exposed latency (the retry is
        accounted by the caller as a fresh data access).
        """
        self.stats.squashed_preloads += 1

    # -- row-buffer accounting (demand-data stream) -------------------------

    def account_rows(self, pages: np.ndarray) -> None:
        """Account row-buffer hits/misses for an in-order 4 KB page stream.

        ``pages`` are the virtual page numbers of the demand-data accesses,
        in trace order.  Per bank, an access hits iff it targets the row
        left open by the previous access to that bank; the open-row state
        persists across calls, so a trace split into fault-bounded
        segments accounts identically to one unsegmented pass.
        """
        n = int(len(pages))
        if not n:
            return
        from repro.sim import _native
        native = _native.row_hits(pages, self._last_rows)
        if native is not None:
            hits = native
        else:
            pages = np.asarray(pages, dtype=np.int64)
            banks = pages & _BANK_MASK
            rows = pages >> _BANK_SHIFT
            hits = 0
            for bank in range(NUM_BANKS):
                bank_rows = rows[banks == bank]
                if not bank_rows.size:
                    continue
                same = np.empty(bank_rows.size, dtype=bool)
                same[0] = bank_rows[0] == self._last_rows[bank]
                np.equal(bank_rows[1:], bank_rows[:-1], out=same[1:])
                hits += int(same.sum())
                self._last_rows[bank] = int(bank_rows[-1])
        self.stats.row_hits += hits
        self.stats.row_misses += n - hits

    def account_rows_runs(self, head_pages: np.ndarray,
                          lengths: np.ndarray) -> None:
        """Run-compressed :meth:`account_rows` for the batched engine.

        A page run's interior accesses repeat the head's page, so they are
        guaranteed open-row hits and never move any bank's open row; only
        the run heads need the per-bank comparison.
        """
        self.account_rows(head_pages)
        self.stats.row_hits += int(lengths.sum()) - int(len(lengths))
