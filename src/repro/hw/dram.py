"""DRAM timing and accounting.

The paper's system (Table 2) has four DDR4 channels (51.2 GB/s) behind a
1 GHz accelerator.  The trace-driven model needs two numbers from DRAM:

* ``data_latency`` — average load-to-use latency of a data access, which
  sets the ideal (no-MMU) execution time together with the accelerator's
  memory-level parallelism;
* ``walk_latency`` — average latency of a page-table / bitmap fetch.  Walk
  references exhibit strong row-buffer and memory-controller locality, so
  they resolve faster than demand data misses on average.

Both are in accelerator cycles.  The model also counts every access for the
dynamic-energy report (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default latencies (accelerator cycles at 1 GHz).
DEFAULT_DATA_LATENCY = 100
DEFAULT_WALK_LATENCY = 70


@dataclass
class DRAMStats:
    """Access counters by requester."""

    data_accesses: int = 0
    walk_accesses: int = 0      # page table / bitmap fetches
    squashed_preloads: int = 0  # DVM-PE+ preloads discarded after DAV failure

    @property
    def total_accesses(self) -> int:
        """All DRAM accesses including squashed preloads."""
        return self.data_accesses + self.walk_accesses + self.squashed_preloads

    def to_dict(self) -> dict[str, int]:
        """Counter snapshot (observability reporting, ``repro.obs``)."""
        return {"data_accesses": self.data_accesses,
                "walk_accesses": self.walk_accesses,
                "squashed_preloads": self.squashed_preloads}


@dataclass
class DRAMModel:
    """Latency source and access counter for the memory system."""

    data_latency: int = DEFAULT_DATA_LATENCY
    walk_latency: int = DEFAULT_WALK_LATENCY
    stats: DRAMStats = field(default_factory=DRAMStats)

    def data_access(self) -> int:
        """One demand data access; returns its latency in cycles."""
        self.stats.data_accesses += 1
        return self.data_latency

    def walk_access(self) -> int:
        """One page-table/bitmap fetch; returns its latency in cycles."""
        self.stats.walk_accesses += 1
        return self.walk_latency

    def squashed_preload(self) -> None:
        """A preload issued in parallel with DAV that had to be discarded.

        Costs energy and bandwidth but no exposed latency (the retry is
        accounted by the caller as a fresh data access).
        """
        self.stats.squashed_preloads += 1
