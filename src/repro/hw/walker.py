"""The IOMMU's page-table walker, with walk-cache timing.

The walker consumes the *functional* walk from :class:`PageTable` (which
entry addresses a walk touches and what it finds) and adds *timing*: each
touched entry block is looked up in the walk cache (PWC or AVC); hits cost
one SRAM cycle, misses cost one memory access.  L1-level blocks are only
eligible when the cache says so — the PWC/AVC policy split at the heart of
Section 4.1.2.

Functional outcomes are memoized per 4 KB virtual page: page tables are
immutable during a trace run, and every VA in a page shares its walk path
(PE sub-regions are >= 128 KB, so a page never straddles fields).  The memo
stores exactly what the IOMMU's hot loop needs:

``(ok, perm, pa_page_base, identity, cacheable_block_ids, fixed_mem)``

where ``cacheable_block_ids`` are the 64 B-block numbers of the touched
entries this walk cache may hold, and ``fixed_mem`` counts the touched
levels it refuses (always-memory accesses: L1 entries under a PWC).
"""

from __future__ import annotations

from repro.common.consts import PAGE_SHIFT
from repro.hw.walkcache import PageWalkCache
from repro.kernel.page_table import PageTable

#: Memo entry layout (see module docstring).
WalkInfo = tuple[bool, int, int, bool, tuple[int, ...], int]

#: 64 B block shift for page-table entry addresses.
_BLOCK_SHIFT = 6


class PageTableWalker:
    """Timed walker over one page table and one walk cache."""

    def __init__(self, page_table: PageTable, walk_cache: PageWalkCache):
        self.page_table = page_table
        self.cache = walk_cache
        self.walks = 0
        self._memo: dict[int, WalkInfo] = {}

    def info_for(self, page: int) -> WalkInfo:
        """Functional walk outcome for a 4 KB page number (memoized)."""
        info = self._memo.get(page)
        if info is None:
            result = self.page_table.walk(page << PAGE_SHIFT)
            pa_base = (result.pa - (result.pa & 0xFFF)) if result.ok else 0
            cacheable: list[int] = []
            fixed_mem = 0
            caches_level = self.cache.caches_level
            for i, entry_addr in enumerate(result.visited):
                level = 4 - i
                if caches_level(level):
                    cacheable.append(entry_addr >> _BLOCK_SHIFT)
                else:
                    fixed_mem += 1
            info = (result.ok, int(result.perm), pa_base, result.identity,
                    tuple(cacheable), fixed_mem)
            self._memo[page] = info
        return info

    def walk(self, va: int) -> tuple[WalkInfo, int, int]:
        """Timed walk for ``va``: (info, sram accesses, memory accesses).

        This convenience path is used by tests and single accesses; the
        IOMMU trace loops inline the same cache operations for speed.
        """
        info = self.info_for(va >> PAGE_SHIFT)
        self.walks += 1
        cache = self.cache
        sram = 0
        mem = info[5]
        for block_id in info[4]:
            sram += 1
            if not cache.access(block_id << _BLOCK_SHIFT):
                mem += 1
        return info, sram, mem

    def invalidate(self) -> None:
        """Drop memoized outcomes (call after any page-table mutation)."""
        self._memo.clear()
