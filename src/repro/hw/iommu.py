"""The IOMMU: per-configuration address translation / access validation.

This is the timing heart of the reproduction.  Each accelerator memory
reference enters the IOMMU, which — depending on the configuration —
consults a TLB and page-walk cache (conventional), the permission bitmap
(DVM-BM), or performs Devirtualized Access Validation through the AVC
(DVM-PE / DVM-PE+).  The IOMMU produces two stall aggregates:

* ``sram_stall_cycles`` — SRAM lookup cycles on the critical path.  These
  pipeline across the accelerator's processing engines, so the system model
  divides them by the memory-level parallelism.
* ``mem_stall_cycles`` — cycles serialized behind the walker's memory
  accesses (page-table / bitmap fetches) plus DVM-PE+ squash retries.

Stall rules per mechanism (Sections 3.2, 4.1, 4.2):

conventional   TLB hit: free (1-cycle, pipelined).  Miss: walk; each
               PWC-eligible level costs 1 SRAM cycle, PWC misses and L1
               PTEs cost one memory fetch each.
dvm_bm         Every access probes the bitmap cache (1 SRAM cycle; miss =
               one memory fetch).  A 00 result means not identity mapped:
               fall back to TLB + full walk.
dvm_pe         Every access walks via the AVC (2–4 SRAM cycles on hits;
               misses go to memory).  DAV is on the critical path.
dvm_pe_plus    Reads overlap DAV with a preload to PA == VA: SRAM cycles
               hide entirely; walk memory fetches expose only what exceeds
               the data access latency.  If DAV finds a non-identity page,
               the preload is squashed (energy + bandwidth) and the read
               retries at the translated PA (one serialized data latency).
               Writes behave like dvm_pe.
ideal          No translation, no protection. Zero overhead.

Implementation note: the per-access loops inline the TLB / walk-cache /
bitmap-cache dictionary operations (rather than calling the model objects'
methods) because they execute millions of times per experiment.  The inline
operations are op-for-op identical to :meth:`TLB.lookup`/:meth:`fill` and
:meth:`SetAssocCache.access`; the unit tests in
``tests/hw/test_iommu_equivalence.py`` verify the equivalence.

On top of the scalar loops sits a batched engine
(:mod:`repro.sim.fastpath`): :meth:`IOMMU.run_trace` compresses the trace
into page runs and resolves guaranteed LRU hits vectorially, replaying
only the residual accesses through the same dict operations.  The fast
engine produces bit-identical :class:`TimingStats` and final structure
state (``tests/sim/test_fastpath_equivalence.py``).  Traces that could
fault are segmented at predicted fault sites: fault-free segments replay
batched, while the fault-bearing spans run through the scalar loops —
and the real fault-delivery machinery (:mod:`repro.hw.fault_queue`,
:mod:`repro.kernel.fault`) — as scalar bridges.  Only a few shapes
still refuse outright (an L2 TLB, vector-budget overruns, raw IOMMUs
without a fault path on faulting traces); the scalar loops remain the
ground truth either way.  Select the engine per call
(``engine="scalar"``) or globally via the ``REPRO_TIMING_ENGINE``
environment variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.common.errors import PageFault, ProtectionFault
from repro.hw.bitmap import PermissionBitmap
from repro.obs import core as obs_core
from repro.obs import record as obs_record
from repro.hw.dram import DRAMModel
from repro.hw.energy import EnergyAccount
from repro.hw.tlb import TLB
from repro.hw.walkcache import AccessValidationCache, PageWalkCache
from repro.hw.walker import PageTableWalker
from repro.kernel.page_table import PageTable

if TYPE_CHECKING:  # avoid a circular import; MMUConfig is only a type here
    from repro.core.config import MMUConfig


@dataclass
class TimingStats:
    """Aggregate result of running a trace through one IOMMU configuration."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    sram_stall_cycles: int = 0
    mem_stall_cycles: int = 0
    tlb_lookups: int = 0
    tlb_misses: int = 0
    tlb_l2_lookups: int = 0
    tlb_l2_hits: int = 0
    walks: int = 0
    walk_sram_accesses: int = 0
    walk_mem_accesses: int = 0
    bitmap_lookups: int = 0
    bitmap_mem_accesses: int = 0
    identity_accesses: int = 0
    fallback_accesses: int = 0
    squashed_preloads: int = 0
    faults: int = 0                  # recoverable guest faults serviced
    major_faults: int = 0            # serviced by demand page-in
    swap_faults: int = 0             # serviced by reclaimer swap-in
    fault_stall_cycles: int = 0      # engine stall across all services
    energy: EnergyAccount = field(default_factory=EnergyAccount)

    @property
    def tlb_miss_rate(self) -> float:
        """TLB miss rate over the run (0 when the TLB is unused)."""
        return self.tlb_misses / self.tlb_lookups if self.tlb_lookups else 0.0


class IOMMU:
    """One IOMMU instance bound to a process's page table."""

    def __init__(self, config: "MMUConfig", page_table: PageTable,
                 dram: DRAMModel, perm_bitmap: PermissionBitmap | None = None):
        self.config = config
        self.page_table = page_table
        self.dram = dram
        self.perm_bitmap = perm_bitmap
        # Recoverable-fault plumbing (attach_fault_path).  Without one the
        # IOMMU keeps the legacy raise-on-fault behaviour.
        self.fault_path = None
        mech = config.mech
        self.tlb: TLB | None = None
        self.tlb_l2: TLB | None = None
        self.walker: PageTableWalker | None = None
        if mech in ("conventional", "dvm_bm"):
            self.tlb = TLB(config.tlb_entries,
                           page_size=config.tlb_page_size,
                           ways=config.tlb_ways)
            if mech == "conventional" and config.tlb_l2_entries:
                self.tlb_l2 = TLB(config.tlb_l2_entries,
                                  page_size=config.tlb_page_size,
                                  ways=config.tlb_l2_ways)
            cache = PageWalkCache(config.walk_cache_blocks,
                                  config.walk_cache_ways)
            self.walker = PageTableWalker(page_table, cache)
        elif mech in ("dvm_pe", "dvm_pe_plus"):
            cache = AccessValidationCache(config.walk_cache_blocks,
                                          config.walk_cache_ways)
            self.walker = PageTableWalker(page_table, cache)
        if mech == "dvm_bm" and perm_bitmap is None:
            raise ValueError("DVM-BM requires the process's permission bitmap")

    def attach_fault_path(self, fault_path) -> None:
        """Enable recoverable guest faults via a :class:`FaultPath`.

        With a path attached, the per-mechanism loops stop raising bare
        :class:`PageFault`/:class:`ProtectionFault` mid-stream: the fault
        is delivered to the kernel handler, the engine stall is charged
        to the trace's :class:`TimingStats`, and the access resumes (or a
        structured :class:`~repro.common.errors.AccessViolation`
        escapes).  Fault-free traces never hit this machinery, so timing
        stays bit-identical with or without a path.
        """
        self.fault_path = fault_path

    # -- context switching -------------------------------------------------------

    def switch_context(self, page_table: PageTable,
                       perm_bitmap: PermissionBitmap | None = None) -> None:
        """Point the IOMMU at another process (accelerator multiplexing).

        The paper's Section 1 motivates protection precisely because
        accelerators are multiplexed among processes; a context switch
        rebinds the page table (and bitmap) and flushes the
        virtually-tagged and physically-tagged lookup structures (no ASIDs
        are modelled).  DVM's tiny PE working set makes the subsequent
        refill cheap — measured by ``experiments/multiplexing.py``.
        """
        self.page_table = page_table
        # The fault path's kernel handler is bound to the previous
        # process; servicing the new tenant's faults through it would
        # touch the wrong address space.  Detach — the caller re-attaches
        # a path for the new process if it wants recoverable faults.
        self.fault_path = None
        if self.config.mech == "dvm_bm":
            if perm_bitmap is None:
                raise ValueError("DVM-BM context switches need the new "
                                 "process's permission bitmap")
            self.perm_bitmap = perm_bitmap
            self.perm_bitmap.cache.invalidate_all()
        if self.tlb is not None:
            self.tlb.invalidate_all()
        if self.tlb_l2 is not None:
            self.tlb_l2.invalidate_all()
        if self.walker is not None:
            cache = self.walker.cache
            cache.invalidate_all()
            self.walker = PageTableWalker(page_table, cache)

    def invalidate_range(self, va: int, size: int) -> None:
        """IOTLB shootdown for ``[va, va+size)`` (OS unmap/protect path).

        Removes the range's TLB entries and memoized walk outcomes; the
        physically-indexed walk cache is flushed conservatively, since the
        unmapped range's page-table nodes may be freed and their frames
        reused.  Finer-grained than :meth:`switch_context`, mirroring the
        per-range invalidations IOMMU drivers issue on unmap.
        """
        for tlb in (self.tlb, self.tlb_l2):
            if tlb is None:
                continue
            first = va >> tlb.page_shift
            last = (va + size - 1) >> tlb.page_shift
            for tlb_set in tlb._sets:
                for vpn in [v for v in tlb_set if first <= v <= last]:
                    del tlb_set[vpn]
        if self.walker is not None:
            first_page = va >> 12
            last_page = (va + size - 1) >> 12
            memo = self.walker._memo
            for page in [p for p in memo if first_page <= p <= last_page]:
                del memo[page]
            self.walker.cache.invalidate_all()

    # -- trace simulation -------------------------------------------------------

    def run_trace(self, addrs, writes, engine: str | None = None
                  ) -> TimingStats:
        """Simulate a whole trace; returns aggregated timing statistics.

        ``addrs`` is a sequence of virtual addresses, ``writes`` a parallel
        sequence of 0/1 flags.  Both may be numpy arrays.  ``engine``
        selects ``"fast"`` (batched page-run engine, the default) or
        ``"scalar"`` (the per-access loops); unset, the
        ``REPRO_TIMING_ENGINE`` environment variable decides.  The fast
        engine replays fault-bearing traces as fault-free segments
        stitched by scalar bridges, and falls back to the scalar loops
        entirely for the few shapes it refuses — results are identical
        either way.
        """
        from repro.sim import fastpath
        if engine is None:
            engine = fastpath.default_engine()
        elif engine not in ("fast", "scalar"):
            raise ValueError(f"unknown timing engine {engine!r}")
        if engine == "fast":
            return self.run_batch(fastpath.PageRunBatch.from_trace(
                addrs, writes))
        addr_list = addrs.tolist() if hasattr(addrs, "tolist") else list(addrs)
        write_list = (writes.tolist() if hasattr(writes, "tolist")
                      else list(writes))
        if len(addr_list) != len(write_list):
            raise ValueError("addrs and writes must have equal length")
        stats = TimingStats()
        self._maybe_inject_fault(addr_list, write_list, stats)
        return self._run_scalar(addr_list, write_list, stats)

    def run_batch(self, batch) -> TimingStats:
        """Simulate a pre-compressed :class:`~repro.sim.fastpath.PageRunBatch`.

        The batched entry point: callers that already hold a page-run batch
        (the parallel runner shares them across configurations) skip the
        pre-pass.  Falls back to the scalar loops when the fast engine
        declines the trace.
        """
        from repro.sim import fastpath
        stats = TimingStats()
        self._maybe_inject_fault(batch.addrs, batch.writes, stats)
        outcome = fastpath.run_batch(self, batch, stats)
        if outcome:
            self._finalize_energy(stats)
            if obs_core.ENABLED:
                obs_record.record_fastpath(self.config.mech, accepted=True,
                                           segments=outcome.segments)
                obs_record.record_trace_run(self, stats)
            return stats
        if obs_core.ENABLED:
            obs_record.record_fastpath(self.config.mech, accepted=False,
                                       reason=outcome.reason)
        return self._run_scalar(batch.addrs.tolist(), batch.writes.tolist(),
                                stats)

    def _run_scalar(self, addr_list: list, write_list: list,
                    stats: TimingStats | None = None) -> TimingStats:
        """Dispatch to the per-access loops (the ground-truth engine).

        ``stats`` lets an entry point that already charged fault-injection
        stall pass its accumulator through; the loops assign (not add) the
        trace-wide counters, so pre-charged fault fields survive.
        """
        if stats is None:
            stats = TimingStats()
        mech = self.config.mech
        if mech == "ideal":
            self._run_ideal(addr_list, write_list, stats)
        elif mech == "conventional":
            self._run_conventional(addr_list, write_list, stats)
        elif mech == "dvm_bm":
            self._run_bitmap(addr_list, write_list, stats)
        else:
            self._run_dav(addr_list, write_list, stats,
                          preload=(mech == "dvm_pe_plus"))
        self._finalize_energy(stats)
        if obs_core.ENABLED:
            # Derived, read-only instrumentation — runs after the loops,
            # so the per-access hot path carries zero observability code.
            obs_record.record_trace_run(self, stats)
        return stats

    def access(self, va: int, is_write: bool = False) -> TimingStats:
        """Single-access convenience wrapper (for tests)."""
        return self.run_trace([va], [1 if is_write else 0])

    # -- per-mechanism loops --------------------------------------------------------

    def _run_ideal(self, addrs, writes, stats: TimingStats) -> None:
        n = len(addrs)
        stats.accesses = n
        stats.writes = sum(writes)
        stats.reads = n - stats.writes
        self.dram.stats.data_accesses += n
        if n:
            self.dram.account_rows(np.asarray(addrs, np.int64) >> 12)

    def _run_conventional(self, addrs, writes, stats: TimingStats) -> None:
        tlb = self.tlb
        walker = self.walker
        memo = walker._memo
        info_for = walker.info_for
        cache = walker.cache
        cache_sets = cache._sets
        ncsets = cache.num_sets
        cways = cache.ways
        walk_latency = self.dram.walk_latency
        tshift = tlb.page_shift
        tsets = tlb._sets
        ntsets = tlb.num_sets
        tways = tlb.ways
        tlb_l2 = self.tlb_l2
        if tlb_l2 is not None:
            l2sets = tlb_l2._sets
            nl2sets = tlb_l2.num_sets
            l2ways = tlb_l2.ways
        sram_stall = mem_stall = walk_sram = walk_mem = walks = 0
        cache_misses = 0
        l2_lookups = l2_hits = 0
        nwrites = 0
        for va, w in zip(addrs, writes):
            nwrites += w
            vpn = va >> tshift
            tlb_set = tsets[vpn % ntsets]
            entry = tlb_set.get(vpn)
            if entry is not None:
                del tlb_set[vpn]
                tlb_set[vpn] = entry
                perm = entry[1]
                if w:
                    if perm != 2:
                        self._tlb_hit_fault(va, w, stats, vpn, tshift)
                elif not perm:
                    self._tlb_hit_fault(va, w, stats, vpn, tshift)
                continue
            if tlb_l2 is not None:
                # Second-level probe: one exposed SRAM cycle; a hit refills
                # the first level and skips the walk.
                l2_lookups += 1
                sram_stall += 1
                l2_set = l2sets[vpn % nl2sets]
                entry = l2_set.get(vpn)
                if entry is not None:
                    del l2_set[vpn]
                    l2_set[vpn] = entry
                    l2_hits += 1
                    if len(tlb_set) >= tways:
                        for lru in tlb_set:
                            break
                        del tlb_set[lru]
                    tlb_set[vpn] = entry
                    perm = entry[1]
                    if w:
                        if perm != 2:
                            self._tlb_hit_fault(va, w, stats, vpn, tshift)
                    elif not perm:
                        self._tlb_hit_fault(va, w, stats, vpn, tshift)
                    continue
            page = va >> 12
            info = memo.get(page) or info_for(page)
            if not info[0]:
                info = self._page_fault(va, w, stats)
            fixed = info[5]
            mem = fixed
            blocks = info[4]
            sram = len(blocks)
            for blk in blocks:
                cache_set = cache_sets[blk % ncsets]
                if blk in cache_set:
                    del cache_set[blk]
                else:
                    mem += 1
                    if len(cache_set) >= cways:
                        for lru in cache_set:
                            break
                        del cache_set[lru]
                cache_set[blk] = True
            walks += 1
            walk_sram += sram
            walk_mem += mem
            cache_misses += mem - fixed
            sram_stall += sram
            mem_stall += mem * walk_latency
            perm = info[1]
            if w:
                if perm != 2:
                    info = self._perm_fault(va, w, stats)
                    perm = info[1]
            elif not perm:
                info = self._perm_fault(va, w, stats)
                perm = info[1]
            if len(tlb_set) >= tways:
                for lru in tlb_set:
                    break
                del tlb_set[lru]
            filled = (info[2] - ((va & ~0xFFF) - (vpn << tshift)), perm)
            tlb_set[vpn] = filled
            if tlb_l2 is not None:
                l2_set = l2sets[vpn % nl2sets]
                if vpn in l2_set:
                    del l2_set[vpn]
                elif len(l2_set) >= l2ways:
                    for lru in l2_set:
                        break
                    del l2_set[lru]
                l2_set[vpn] = filled
        n = len(addrs)
        self.dram.stats.data_accesses += n
        self.dram.stats.walk_accesses += walk_mem
        if n:
            self.dram.account_rows(np.asarray(addrs, np.int64) >> 12)
        tlb.stats.hits += n - walks - l2_hits
        tlb.stats.misses += walks + l2_hits
        if tlb_l2 is not None:
            tlb_l2.stats.hits += l2_hits
            tlb_l2.stats.misses += l2_lookups - l2_hits
        cache.stats.hits += walk_sram - cache_misses
        cache.stats.misses += cache_misses
        stats.accesses = n
        stats.writes = nwrites
        stats.reads = n - nwrites
        stats.sram_stall_cycles = sram_stall
        stats.mem_stall_cycles = mem_stall
        stats.tlb_lookups = n
        stats.tlb_misses = walks
        stats.tlb_l2_lookups = l2_lookups
        stats.tlb_l2_hits = l2_hits
        stats.walks = walks
        stats.walk_sram_accesses = walk_sram
        stats.walk_mem_accesses = walk_mem

    def _run_bitmap(self, addrs, writes, stats: TimingStats) -> None:
        bitmap = self.perm_bitmap
        perms = bitmap._perms
        bm_cache = bitmap.cache
        bm_sets = bm_cache._sets
        nbsets = bm_cache.num_sets
        bways = bm_cache.ways
        # Bitmap words are 8 B: the word for a page sits (page >> 2) bytes
        # past the base, i.e. word number (base >> 3) + (page >> 5).
        bm_base_block = bitmap.base_pa >> 3
        tlb = self.tlb
        walker = self.walker
        memo = walker._memo
        info_for = walker.info_for
        cache = walker.cache
        cache_sets = cache._sets
        ncsets = cache.num_sets
        cways = cache.ways
        walk_latency = self.dram.walk_latency
        tshift = tlb.page_shift
        tsets = tlb._sets
        ntsets = tlb.num_sets
        tways = tlb.ways
        sram_stall = mem_stall = bm_mem = 0
        walks = walk_sram = walk_mem = 0
        tlb_lookups = tlb_misses = identity = 0
        nwrites = 0
        for va, w in zip(addrs, writes):
            nwrites += w
            page = va >> 12
            # Bitmap probe: the page's 2 bits live (page >> 2) bytes in.
            blk = bm_base_block + (page >> 5)
            bm_set = bm_sets[blk % nbsets]
            sram_stall += 1
            if blk in bm_set:
                del bm_set[blk]
            else:
                bm_mem += 1
                mem_stall += walk_latency
                if len(bm_set) >= bways:
                    for lru in bm_set:
                        break
                    del bm_set[lru]
            bm_set[blk] = True
            perm = perms.get(page, 0)
            if perm:
                identity += 1
                perm = int(perm)
                if w:
                    if perm != 2:
                        self._perm_fault(va, w, stats)
                continue
            # Not identity mapped: conventional translation fallback.
            tlb_lookups += 1
            vpn = va >> tshift
            tlb_set = tsets[vpn % ntsets]
            entry = tlb_set.get(vpn)
            if entry is not None:
                del tlb_set[vpn]
                tlb_set[vpn] = entry
                perm = entry[1]
                if w:
                    if perm != 2:
                        self._tlb_hit_fault(va, w, stats, vpn, tshift)
                elif not perm:
                    self._tlb_hit_fault(va, w, stats, vpn, tshift)
                continue
            tlb_misses += 1
            info = memo.get(page) or info_for(page)
            if not info[0]:
                info = self._page_fault(va, w, stats)
            mem = info[5]
            blocks = info[4]
            sram = len(blocks)
            for pblk in blocks:
                cache_set = cache_sets[pblk % ncsets]
                if pblk in cache_set:
                    del cache_set[pblk]
                else:
                    mem += 1
                    if len(cache_set) >= cways:
                        for lru in cache_set:
                            break
                        del cache_set[lru]
                cache_set[pblk] = True
            walks += 1
            walk_sram += sram
            walk_mem += mem
            sram_stall += sram
            mem_stall += mem * walk_latency
            perm = info[1]
            if w:
                if perm != 2:
                    info = self._perm_fault(va, w, stats)
                    perm = info[1]
            elif not perm:
                info = self._perm_fault(va, w, stats)
                perm = info[1]
            if len(tlb_set) >= tways:
                for lru in tlb_set:
                    break
                del tlb_set[lru]
            tlb_set[vpn] = (
                info[2] - ((va & ~0xFFF) - (vpn << tshift)), perm
            )
        n = len(addrs)
        self.dram.stats.data_accesses += n
        self.dram.stats.walk_accesses += walk_mem + bm_mem
        if n:
            self.dram.account_rows(np.asarray(addrs, np.int64) >> 12)
        bm_cache.stats.hits += n - bm_mem
        bm_cache.stats.misses += bm_mem
        tlb.stats.hits += tlb_lookups - tlb_misses
        tlb.stats.misses += tlb_misses
        stats.accesses = n
        stats.writes = nwrites
        stats.reads = n - nwrites
        stats.sram_stall_cycles = sram_stall
        stats.mem_stall_cycles = mem_stall
        stats.tlb_lookups = tlb_lookups
        stats.tlb_misses = tlb_misses
        stats.walks = walks
        stats.walk_sram_accesses = walk_sram
        stats.walk_mem_accesses = walk_mem
        stats.bitmap_lookups = n
        stats.bitmap_mem_accesses = bm_mem
        stats.identity_accesses = identity
        stats.fallback_accesses = n - identity

    def _run_dav(self, addrs, writes, stats: TimingStats, *,
                 preload: bool) -> None:
        walker = self.walker
        memo = walker._memo
        info_for = walker.info_for
        cache = walker.cache
        cache_sets = cache._sets
        ncsets = cache.num_sets
        cways = cache.ways
        walk_latency = self.dram.walk_latency
        data_latency = self.dram.data_latency
        sram_stall = mem_stall = 0
        walk_sram = walk_mem = identity = squashes = 0
        nwrites = 0
        for va, w in zip(addrs, writes):
            nwrites += w
            page = va >> 12
            info = memo.get(page) or info_for(page)
            if not info[0]:
                info = self._page_fault(va, w, stats)
            perm = info[1]
            if w:
                if perm != 2:
                    info = self._perm_fault(va, w, stats)
            elif not perm:
                info = self._perm_fault(va, w, stats)
            mem = info[5]
            blocks = info[4]
            sram = len(blocks)
            for blk in blocks:
                cache_set = cache_sets[blk % ncsets]
                if blk in cache_set:
                    del cache_set[blk]
                else:
                    mem += 1
                    if len(cache_set) >= cways:
                        for lru in cache_set:
                            break
                        del cache_set[lru]
                cache_set[blk] = True
            walk_sram += sram
            walk_mem += mem
            is_identity = info[3]
            identity += is_identity
            if preload and not w:
                # DAV overlaps the preload: SRAM cycles hide entirely; only
                # walk memory time beyond the data fetch is exposed.
                if mem:
                    exposed = mem * walk_latency - data_latency
                    if exposed > 0:
                        mem_stall += exposed
                if not is_identity:
                    squashes += 1
                    mem_stall += data_latency
            else:
                sram_stall += sram
                mem_stall += mem * walk_latency
        n = len(addrs)
        self.dram.stats.data_accesses += n
        self.dram.stats.walk_accesses += walk_mem
        self.dram.stats.squashed_preloads += squashes
        if n:
            self.dram.account_rows(np.asarray(addrs, np.int64) >> 12)
        walker.walks += n
        cache.stats.hits += walk_sram - walk_mem
        cache.stats.misses += walk_mem
        stats.accesses = n
        stats.writes = nwrites
        stats.reads = n - nwrites
        stats.sram_stall_cycles = sram_stall
        stats.mem_stall_cycles = mem_stall
        stats.walks = n
        stats.walk_sram_accesses = walk_sram
        stats.walk_mem_accesses = walk_mem
        stats.identity_accesses = identity
        stats.fallback_accesses = n - identity
        stats.squashed_preloads = squashes

    # -- recoverable faults (cold paths) ---------------------------------------

    def _page_fault(self, va: int, w: int, stats: TimingStats):
        """Cold path: an access touched an unmapped page.

        Legacy raise without a fault path; otherwise the fault is
        delivered, serviced and the fresh post-service WalkInfo returned
        so the access resumes.
        """
        if self.fault_path is None:
            raise PageFault(va)
        return self._deliver_fault(va, "w" if w else "r", stats)

    def _perm_fault(self, va: int, w: int, stats: TimingStats):
        """Cold path: an access was denied by the permission check."""
        if self.fault_path is None:
            raise ProtectionFault(va, "w" if w else "r")
        return self._deliver_fault(va, "w" if w else "r", stats)

    def _tlb_hit_fault(self, va: int, w: int, stats: TimingStats,
                       vpn: int, tshift: int) -> None:
        """Cold path: permission fault on a TLB hit.

        After a successful service the stale entries (popped by
        :meth:`_deliver_fault`) are refilled from the fresh walk, so
        later accesses see the corrected permission.
        """
        info = self._perm_fault(va, w, stats)
        filled = (info[2] - ((va & ~0xFFF) - (vpn << tshift)), info[1])
        for tlb in (self.tlb, self.tlb_l2):
            if tlb is not None:
                tlb._sets[vpn % tlb.num_sets][vpn] = filled

    def _deliver_fault(self, va: int, access: str, stats: TimingStats):
        """Deliver one guest fault through the fault path.

        Charges the engine stall, drops the page's stale cached state
        (TLB entries, walker memo) and re-walks authoritatively.  Raises
        :class:`~repro.common.errors.AccessViolation` — from the handler,
        or here if the fault persists after service — otherwise returns
        the fresh WalkInfo.
        """
        path = self.fault_path
        kind, stall = path.deliver(va, access)
        stats.faults += 1
        if kind == "major":
            stats.major_faults += 1
        elif kind == "swap":
            stats.swap_faults += 1
        stats.fault_stall_cycles += stall
        for tlb in (self.tlb, self.tlb_l2):
            if tlb is not None:
                vpn = va >> tlb.page_shift
                tlb._sets[vpn % tlb.num_sets].pop(vpn, None)
        walker = self.walker
        if walker is None:
            return None
        walker._memo.pop(va >> 12, None)
        info = walker.info_for(va >> 12)
        perm = info[1]
        if not info[0] or (perm != 2 if access == "w" else not perm):
            path.escalate(va, access,
                          reason=f"fault persists after {kind} service")
        return info

    def _maybe_inject_fault(self, addrs, writes, stats: TimingStats) -> None:
        """Chaos hook: synthesize one guest fault for this trace.

        ``page_fault`` delivers a spurious-serviceable fault for the
        middle access (the stall perturbs timing — the runner's barrier
        discards and re-runs); ``perm_fault`` escalates an injected
        violation (the pair is quarantined).  Only fires on IOMMUs with a
        fault path — raw IOMMUs keep chaos-free legacy semantics.
        """
        from repro.common import faults
        if self.fault_path is None or not faults.active():
            return
        if self.config.mech == "ideal":
            return      # no translation, no protection — nothing to fault
        n = len(addrs)
        if not n:
            return
        i = n // 2
        va, w = int(addrs[i]), int(writes[i])
        if faults.should_fire("page_fault"):
            self._deliver_fault(va, "w" if w else "r", stats)
        if faults.should_fire("perm_fault"):
            self.fault_path.escalate(
                va, "w" if w else "r", kind="injected", index=i,
                reason="injected permission violation")

    # -- helpers -----------------------------------------------------------------

    def _finalize_energy(self, stats: TimingStats) -> None:
        """Fill the MMU dynamic-energy account (Figure 9's methodology).

        Finalization is additive over the trace-wide totals, so it runs
        exactly once per trace — segment replay and scalar bridges defer
        to the batch-level caller, which finalizes the summed stats.
        """
        if self.config.mech == "ideal":
            return
        tlb_event = ("tlb_fa_lookup" if self.config.tlb_ways is None
                     else "tlb_sa_lookup")
        # DVM-BM probes its fallback FA TLB in parallel with the bitmap
        # cache on every access (the latency model charges only the
        # bitmap, but the energy is spent) — this parallel probe is why
        # the paper's DVM-BM saves only ~15% energy over the baseline.
        tlb_lookups = (stats.accesses if self.config.mech == "dvm_bm"
                       else stats.tlb_lookups)
        events = {tlb_event: tlb_lookups}
        # An L2 TLB is always set-associative; fold into the same event
        # when the L1 is too.
        events["tlb_sa_lookup"] = (events.get("tlb_sa_lookup", 0)
                                   + stats.tlb_l2_lookups)
        events["sram_lookup"] = (stats.walk_sram_accesses
                                 + stats.bitmap_lookups)
        events["dram_access"] = (stats.walk_mem_accesses
                                 + stats.bitmap_mem_accesses
                                 + stats.squashed_preloads)
        events["fault_service"] = stats.faults
        stats.energy.add_batch(events)
