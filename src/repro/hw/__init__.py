"""Hardware substrate: caches, TLBs, walkers, IOMMU, DRAM and energy."""

from repro.hw.bitmap import BitmapLookup, PermissionBitmap
from repro.hw.cache import CacheStats, SetAssocCache
from repro.hw.dram import DRAMModel, DRAMStats
from repro.hw.energy import DEFAULT_ENERGY_PJ, EnergyAccount, EnergyModel
from repro.hw.iommu import IOMMU, TimingStats
from repro.hw.tlb import TLB, TLBEntry, TwoLevelTLB
from repro.hw.walkcache import AccessValidationCache, PageWalkCache
from repro.hw.walker import PageTableWalker, WalkInfo

__all__ = [
    "BitmapLookup",
    "PermissionBitmap",
    "CacheStats",
    "SetAssocCache",
    "DRAMModel",
    "DRAMStats",
    "DEFAULT_ENERGY_PJ",
    "EnergyAccount",
    "EnergyModel",
    "IOMMU",
    "TimingStats",
    "TLB",
    "TLBEntry",
    "TwoLevelTLB",
    "AccessValidationCache",
    "PageWalkCache",
    "PageTableWalker",
    "WalkInfo",
]
