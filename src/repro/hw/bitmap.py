"""DVM-BM: flat permission bitmap with a small bitmap cache.

The paper's first DAV implementation (Section 6.3, "DVM-BM") stores 2-bit
permissions for every identity-mapped 4 KB page in a flat bitmap in
physical memory — Border Control's approach optimised for DVM.  One 64 B
bitmap block covers 256 pages (1 MB of address space).  A dedicated cache
holds recently-used bitmap blocks; misses cost one memory access.

A ``00`` (no-permission) result means the VA is *not* identity mapped, and
the IOMMU falls back to full address translation through its TLB.

The bitmap cache holds 8-byte bitmap *words*: one cached entry covers
32 pages (128 KB of address space), so the paper's 128-entry cache reaches
16 MB — far below big-memory heaps, which is why DVM-BM's hit rate trails
the AVC's (Section 6.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.consts import PAGE_SHIFT, PAGE_SIZE
from repro.common.perms import Perm
from repro.common.util import is_aligned
from repro.hw.cache import SetAssocCache

#: Bytes per cached bitmap word.
WORD_BYTES = 8

#: Bytes of address space covered by one cached bitmap word.
WORD_COVERAGE = WORD_BYTES * 4 * PAGE_SIZE  # 32 pages = 128 KB


@dataclass
class BitmapLookup:
    """Result of one bitmap probe."""

    perm: Perm
    cache_hit: bool

    @property
    def identity(self) -> bool:
        """Non-00 permission implies the page is identity mapped."""
        return self.perm != Perm.NONE


class PermissionBitmap:
    """The kernel-maintained bitmap plus its IOMMU-side cache.

    Parameters
    ----------
    base_pa:
        Physical address where the kernel placed the bitmap (used to index
        the physically-tagged bitmap cache).
    cache_blocks / cache_ways:
        Geometry of the bitmap cache (scaled default mirrors the AVC).
    """

    def __init__(self, base_pa: int = 0x10_0000, cache_blocks: int = 16,
                 cache_ways: int = 4):
        self.base_pa = base_pa
        self.cache = SetAssocCache(num_blocks=cache_blocks, ways=cache_ways,
                                   block_size=WORD_BYTES)
        self._perms: dict[int, Perm] = {}  # page number -> permission
        self.memory_accesses = 0           # bitmap fetches that went to DRAM

    # -- kernel-side maintenance -------------------------------------------------

    def set_range(self, va: int, size: int, perm: Perm) -> None:
        """Record ``perm`` for every page of an identity-mapped range."""
        self._check_range(va, size)
        for page in range(va >> PAGE_SHIFT, (va + size) >> PAGE_SHIFT):
            self._perms[page] = perm

    def clear_range(self, va: int, size: int) -> None:
        """Drop permissions for a range (unmap)."""
        self._check_range(va, size)
        for page in range(va >> PAGE_SHIFT, (va + size) >> PAGE_SHIFT):
            self._perms.pop(page, None)

    # -- IOMMU-side lookup ----------------------------------------------------------

    def lookup(self, va: int) -> BitmapLookup:
        """One-step DAV: fetch the bitmap word for ``va`` and read 2 bits."""
        page = va >> PAGE_SHIFT
        # Each page occupies 2 bits; its word lives at base + page/4 bytes.
        block_addr = self.base_pa + (page >> 2)
        hit = self.cache.access(block_addr)
        if not hit:
            self.memory_accesses += 1
        return BitmapLookup(perm=self._perms.get(page, Perm.NONE),
                            cache_hit=hit)

    def bitmap_bytes(self, heap_span: int) -> int:
        """Bitmap storage needed to cover ``heap_span`` bytes (2 bits/page)."""
        return (heap_span // PAGE_SIZE) // 4

    # -- internals -------------------------------------------------------------------

    @staticmethod
    def _check_range(va: int, size: int) -> None:
        if not is_aligned(va, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise ValueError(
                f"bitmap ranges must be page aligned: [{va:#x}, +{size:#x})"
            )
