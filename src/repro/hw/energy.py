"""Dynamic-energy model for memory-management hardware (Figure 9).

The paper computes MMU dynamic energy as the sum of TLB accesses, PWC/AVC
accesses and the memory accesses made by the page-table walker, with
per-access energies from CACTI 6.5.  We use a table of CACTI-like relative
energies; Figure 9 is normalized, so only the *ratios* matter:

* a fully-associative TLB lookup is an order of magnitude more expensive
  than a small set-associative SRAM lookup (every tag compares in parallel);
* a DRAM access is two orders of magnitude above SRAM.

Each event type maps to a picojoule cost; the accounting object is filled
by the IOMMU models during trace simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: CACTI-like access energies in picojoules.
DEFAULT_ENERGY_PJ = {
    "tlb_fa_lookup": 20.0,     # 128-entry fully-associative CAM (scaled: 16)
    "tlb_sa_lookup": 4.0,      # set-associative TLB lookup
    "sram_lookup": 2.0,        # PWC / AVC / bitmap-cache access (4-way, 1 KB)
    "dram_access": 150.0,      # one 64 B DRAM access
    "fault_service": 4000.0,   # one PRI round trip: request + host IRQ +
    #                            OS handler + response message
}


@dataclass
class EnergyModel:
    """Per-event energy table (override entries to study sensitivity)."""

    table: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ENERGY_PJ))

    def cost(self, event: str) -> float:
        """Energy in pJ for one event of the given type."""
        return self.table[event]


@dataclass
class EnergyAccount:
    """Accumulated MMU dynamic energy for one simulation run."""

    model: EnergyModel = field(default_factory=EnergyModel)
    events: dict[str, int] = field(default_factory=dict)

    def add(self, event: str, count: int = 1) -> None:
        """Record ``count`` events of a type."""
        if event not in self.model.table:
            raise KeyError(f"unknown energy event {event!r}")
        self.events[event] = self.events.get(event, 0) + count

    def add_batch(self, events: dict[str, int]) -> None:
        """Record a whole counter snapshot at once (batched accounting).

        Zero-count entries are dropped so a batched caller leaves the
        same event set behind as an equivalent per-event caller that
        guards each :meth:`add` behind ``if count:``.
        """
        for event, count in events.items():
            if count:
                self.add(event, count)

    def total_pj(self) -> float:
        """Total MMU dynamic energy in picojoules."""
        return sum(self.model.cost(event) * count
                   for event, count in self.events.items())

    def breakdown_pj(self) -> dict[str, float]:
        """Energy by event type."""
        return {event: self.model.cost(event) * count
                for event, count in self.events.items()}
