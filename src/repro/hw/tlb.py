"""TLB models: the IOMMU TLB and the two-level CPU TLB hierarchy.

The IOMMU TLB (paper Table 2: 128-entry fully associative, 1-cycle) caches
translations at a configurable coverage granularity — the *reach page size*.
For the conventional baselines this is the analog page size of the
configuration (4 KB / "2M" / "1G"); an entry covers one naturally aligned
region of that size, which the VMM guarantees is physically contiguous.

Entries are stored as plain ``(pa_base, perm)`` tuples keyed by virtual
page number — the representation the IOMMU's inlined trace loops operate
on directly (this is the simulator's hottest data structure).

For CPUs (cDVM, Section 7) a two-level hierarchy models the Intel Xeon's
64-entry L1 DTLB backed by a 512-entry L2 TLB.
"""

from __future__ import annotations

from repro.common.consts import PAGE_SIZE
from repro.common.perms import Perm
from repro.common.util import is_power_of_two
from repro.hw.cache import CacheStats, lru_get, lru_put

#: A cached translation: (region-aligned physical base, permission).
TLBEntry = tuple[int, int]


class TLB:
    """A fully-associative (or set-associative) LRU TLB.

    Parameters
    ----------
    entries:
        Total entry count.
    page_size:
        Coverage granularity of one entry (the reach page size).
    ways:
        Associativity; defaults to fully associative.  The paper notes FA
        TLBs are power-hungry — the energy model charges them accordingly.
    """

    def __init__(self, entries: int, page_size: int = PAGE_SIZE,
                 ways: int | None = None):
        if entries <= 0:
            raise ValueError(f"TLB needs at least one entry, got {entries}")
        if not is_power_of_two(page_size):
            raise ValueError(f"page size must be a power of two: {page_size}")
        self.entries = entries
        self.page_size = page_size
        self.ways = entries if ways is None else ways
        if entries % self.ways:
            raise ValueError(f"{entries} entries not divisible into {self.ways} ways")
        self.num_sets = entries // self.ways
        self.stats = CacheStats()
        self.page_shift = page_size.bit_length() - 1
        self._sets: list[dict[int, TLBEntry]] = [
            dict() for _ in range(self.num_sets)
        ]

    @property
    def reach(self) -> int:
        """Total bytes of address space the TLB can map."""
        return self.entries * self.page_size

    def lookup(self, va: int) -> TLBEntry | None:
        """Probe for ``va``; returns ``(pa_base, perm)`` on hit, else None."""
        vpn = va >> self.page_shift
        entry = lru_get(self._sets[vpn % self.num_sets], vpn)
        if entry is not None:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def fill(self, va: int, pa: int, perm: Perm | int) -> None:
        """Install the translation for the region containing ``va``.

        ``pa`` is the PA corresponding to ``va``; the entry stores the
        region-aligned physical base.
        """
        vpn = va >> self.page_shift
        lru_put(self._sets[vpn % self.num_sets], vpn,
                (pa - (va - (vpn << self.page_shift)), int(perm)), self.ways)

    def install(self, vpn: int, entry: TLBEntry) -> None:
        """Install a prebuilt entry at the MRU position (no stats).

        The batched timing engine rebuilds end-of-trace TLB contents
        through this; counters are accounted separately in bulk.
        """
        lru_put(self._sets[vpn % self.num_sets], vpn, entry, self.ways)

    def translate(self, va: int) -> int | None:
        """PA for ``va`` if resident (updates LRU/stats), else None."""
        entry = self.lookup(va)
        if entry is None:
            return None
        return entry[0] + (va - ((va >> self.page_shift) << self.page_shift))

    def invalidate_all(self) -> None:
        """Flush all entries (e.g. on context switch)."""
        for tlb_set in self._sets:
            tlb_set.clear()

    def occupancy(self) -> int:
        """Number of valid entries resident."""
        return sum(len(s) for s in self._sets)


class TwoLevelTLB:
    """L1 + L2 data-TLB hierarchy for the cDVM CPU study (Section 7.3).

    Mirrors the paper's measurement platform: a small L1 backed by a larger
    L2; a translation is filled into both on a walk, and L2 hits refill L1.
    """

    def __init__(self, l1_entries: int = 64, l2_entries: int = 512,
                 page_size: int = PAGE_SIZE, l2_ways: int = 4):
        self.l1 = TLB(l1_entries, page_size=page_size)
        self.l2 = TLB(l2_entries, page_size=page_size, ways=l2_ways)
        self.page_size = page_size

    def lookup(self, va: int) -> tuple[str, TLBEntry | None]:
        """Probe L1 then L2.

        Returns ``("l1", entry)``, ``("l2", entry)`` — refilling L1 on an
        L2 hit — or ``("miss", None)`` when both miss.
        """
        entry = self.l1.lookup(va)
        if entry is not None:
            return "l1", entry
        entry = self.l2.lookup(va)
        if entry is not None:
            pa_base, perm = entry
            region_base = (va >> self.l1.page_shift) << self.l1.page_shift
            self.l1.fill(region_base, pa_base, perm)
            return "l2", entry
        return "miss", None

    def fill(self, va: int, pa: int, perm: Perm | int) -> None:
        """Install a walked translation into both levels."""
        self.l1.fill(va, pa, perm)
        self.l2.fill(va, pa, perm)

    @property
    def miss_rate(self) -> float:
        """Overall miss rate: walks per lookup."""
        total = self.l1.stats.accesses
        return self.l2.stats.misses / total if total else 0.0
