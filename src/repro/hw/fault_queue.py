"""IOMMU fault queue: the PRI-style recoverable guest-fault path.

The paper's central motivation (Sections 2 and 4.3) is that accelerators
cannot tolerate page faults: servicing a fault from an IO device — an ATS
page request travelling to the root complex, a host interrupt, the OS
handler, and the response message — costs microseconds to milliseconds,
versus nanoseconds for a TLB miss.  DVM's eager identity mapping exists
precisely to make this path cold.  This module *models* the path instead
of crashing the simulation, so the cost DVM avoids becomes measurable:

* :class:`FaultRecord` — one structured guest fault (va, access type,
  fault kind, configuration, trace index, coalesce count).
* :class:`FaultQueue` — a bounded page-request queue with per-page fault
  coalescing and a request/service/response latency model.  A fault's
  engine stall is ``request + service + response`` cycles; a fault that
  coalesces onto a pending request for the same page pays only the
  response leg; a full queue stalls the engine for one extra service
  drain before admission.
* :class:`FaultPath` — glue between the queue and the kernel-side
  handler (:mod:`repro.kernel.fault`): delivers a fault, charges the
  stall, and escalates unserviceable faults to a structured
  :class:`~repro.common.errors.AccessViolation`.

The seven IOMMU configurations call :meth:`FaultPath.deliver` from their
fault sites instead of raising mid-stream; fault-free traces never touch
this module, so the default timing path is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.consts import PAGE_SHIFT
from repro.common.errors import AccessViolation
from repro.obs import core as obs_core
from repro.obs import record as obs_record

#: Default bounded capacity of the page-request queue (PRI queues are
#: small; SMMU/VT-d event queues hold a few hundred records).
DEFAULT_CAPACITY = 128

#: PRI message legs, in accelerator cycles.  At ~1 GHz the round trip
#: (request + service + response) is ~21 us — the low end of the paper's
#: "microseconds to milliseconds" fault-service cost.
DEFAULT_REQUEST_CYCLES = 600
DEFAULT_SERVICE_CYCLES = 20_000
DEFAULT_RESPONSE_CYCLES = 600


@dataclass
class FaultRecord:
    """One structured guest fault as seen by the IOMMU."""

    va: int                 # faulting virtual address
    access: str             # "r" | "w"
    kind: str               # "major" | "swap" | "perm" | "unmapped" |
    #                         "spurious" | "injected"
    config: str = ""        # MMU configuration name
    index: int = -1         # trace position (-1 when unknown)
    stream: int | None = None   # symbolic stream id, when the caller knows it
    coalesced: int = 0      # later faults absorbed by this record

    @property
    def page(self) -> int:
        """4 KB page number of the faulting address."""
        return self.va >> PAGE_SHIFT


@dataclass
class FaultQueueStats:
    """Counters for one fault queue's lifetime."""

    enqueued: int = 0        # records admitted (one per distinct service)
    coalesced: int = 0       # faults absorbed by a pending record
    serviced: int = 0        # records retired after successful service
    violations: int = 0      # faults escalated as access violations
    queue_full_stalls: int = 0   # admissions that waited for a free slot
    stall_cycles: int = 0    # total engine stall charged through the queue


class FaultQueue:
    """A bounded IOMMU page-request queue with per-page coalescing."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 request_cycles: int = DEFAULT_REQUEST_CYCLES,
                 service_cycles: int = DEFAULT_SERVICE_CYCLES,
                 response_cycles: int = DEFAULT_RESPONSE_CYCLES):
        if capacity < 1:
            raise ValueError(f"fault queue capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self.request_cycles = request_cycles
        self.service_cycles = service_cycles
        self.response_cycles = response_cycles
        self.stats = FaultQueueStats()
        self._pending: dict[int, FaultRecord] = {}

    # -- queue operations ------------------------------------------------------

    def admit(self, record: FaultRecord) -> tuple[FaultRecord, int]:
        """Admit a fault; returns ``(record, admission stall cycles)``.

        A fault whose page already has a pending request coalesces onto
        it (the returned record is the pending one) and pays nothing at
        admission — its stall is the response leg, charged at retire.  A
        full queue stalls the engine for one service drain first.
        """
        pending = self._pending.get(record.page)
        if pending is not None:
            pending.coalesced += 1
            self.stats.coalesced += 1
            return pending, 0
        stall = 0
        if len(self._pending) >= self.capacity:
            # The queue is full: the engine stalls until the head-of-queue
            # service drains a slot.
            self.stats.queue_full_stalls += 1
            stall = self.service_cycles
            self._retire_oldest()
        self._pending[record.page] = record
        self.stats.enqueued += 1
        self.stats.stall_cycles += stall
        return record, stall

    def retire(self, record: FaultRecord, *, coalesced: bool = False) -> int:
        """Retire a serviced record; returns the service stall cycles.

        A primary fault pays the full PRI round trip; a coalesced fault
        waits only for the in-flight service's response leg.
        """
        self._pending.pop(record.page, None)
        self.stats.serviced += 1
        stall = (self.response_cycles if coalesced else
                 self.request_cycles + self.service_cycles
                 + self.response_cycles)
        self.stats.stall_cycles += stall
        return stall

    def pending(self) -> int:
        """Number of in-flight (unretired) fault records."""
        return len(self._pending)

    def _retire_oldest(self) -> None:
        for page in self._pending:
            del self._pending[page]
            return


class FaultPath:
    """The IOMMU's recoverable-fault plumbing: queue + kernel handler.

    ``handler`` is any object with ``service(va, access) -> str | None``
    (see :class:`repro.kernel.fault.FaultHandler`): the returned string is
    the fault kind serviced, ``None`` means the fault is a true violation.
    """

    def __init__(self, queue: FaultQueue, handler, config: str = ""):
        self.queue = queue
        self.handler = handler
        self.config = config

    def deliver(self, va: int, access: str, *,
                index: int = -1) -> tuple[str, int]:
        """Service one guest fault; returns ``(kind, stall cycles)``.

        Enqueues a structured record, invokes the kernel handler, and
        charges the PRI round trip.  Raises
        :class:`~repro.common.errors.AccessViolation` when the handler
        refuses (permission violation, or no backing for the address).
        """
        record = FaultRecord(va=va, access=access, kind="pending",
                             config=self.config, index=index)
        record, admit_stall = self.queue.admit(record)
        coalesced = record.coalesced > 0
        kind = self.handler.service(va, access)
        if kind is None:
            self.queue.stats.violations += 1
            record.kind = "perm"
            if obs_core.ENABLED:
                obs_core.REGISTRY.counter("fault.violations",
                                          config=self.config).inc()
            raise AccessViolation(record)
        record.kind = kind
        stall = admit_stall + self.queue.retire(record, coalesced=coalesced)
        if obs_core.ENABLED:
            obs_record.record_fault_service(self.config, kind, stall,
                                            va, access)
            if coalesced:
                obs_core.REGISTRY.counter("fault.coalesced",
                                          config=self.config).inc()
        return kind, stall

    def escalate(self, va: int, access: str, *, kind: str = "perm",
                 index: int = -1, reason: str = ""):
        """Raise a structured violation for an unserviceable fault."""
        self.queue.stats.violations += 1
        if obs_core.ENABLED:
            obs_core.REGISTRY.counter("fault.violations",
                                      config=self.config).inc()
        record = FaultRecord(va=va, access=access, kind=kind,
                             config=self.config, index=index)
        message = None
        if reason:
            message = (f"access violation: {access!r} access to {va:#x} "
                       f"under {self.config or 'unknown config'}: {reason}")
        raise AccessViolation(record, message)
