"""Page-walk caches: the conventional PWC and the paper's AVC.

Both are physically-indexed set-associative caches of page-table-entry
blocks (64 B holding eight 8-byte entries).  They differ in one policy bit,
which is the crux of the paper's Section 4.1.2:

* A conventional **PWC** caches only upper-level entries (L4–L2); L1 leaf
  PTEs are excluded to avoid pollution, so every 4 KB-page walk costs at
  least one memory access for the L1 PTE.
* The **Access Validation Cache (AVC)** caches *all* levels, including L1
  PTEs and Permission Entries.  With PE-compacted page tables the entry
  working set is tiny, so walks complete in 2–4 SRAM accesses with no
  memory reference — letting the AVC replace both the TLB and the PWC.

The AVC does not support translation skipping (paper Section 4.1.2), so
walks always proceed root-to-leaf.
"""

from __future__ import annotations

from repro.hw.cache import SetAssocCache

#: Default scaled geometry: 16 blocks x 64 B, 4-way (the paper's 1 KB /
#: 128-PTE structure scaled by 8x alongside the workload footprints; see
#: DESIGN.md "Scaling").
DEFAULT_BLOCKS = 16
DEFAULT_WAYS = 4
BLOCK_SIZE = 64


class PageWalkCache(SetAssocCache):
    """Conventional PWC: caches L4–L2 entry blocks only."""

    #: Lowest page-table level whose entries this cache may hold.
    min_level = 2

    def __init__(self, num_blocks: int = DEFAULT_BLOCKS,
                 ways: int = DEFAULT_WAYS):
        super().__init__(num_blocks=num_blocks, ways=ways,
                         block_size=BLOCK_SIZE)

    def caches_level(self, level: int) -> bool:
        """Whether entries at ``level`` are eligible for this cache."""
        return level >= self.min_level


    def fill_blocks(self, blocks) -> None:
        """Block-fill for the batched engine's end-of-trace rebuild.

        ``blocks`` are walker-cacheable block ids (already filtered by
        :meth:`caches_level` when the walker built its walk info), in
        last-touch order.  Contents are installed without touching the
        hit/miss counters — those are accounted in bulk from the LRU
        replay — so a scalar run and a segmented batched run leave the
        cache bit-identical.
        """
        self.install_blocks(blocks)


class AccessValidationCache(PageWalkCache):
    """The paper's AVC: caches every level, L1 PTEs and PEs included."""

    min_level = 1
