"""Generic set-associative LRU cache model.

All SRAM lookup structures in the reproduction — page-walk caches, the
Access Validation Cache, the DVM-BM bitmap cache — are instances of this
model over physical block addresses.  TLBs have their own model (tagged by
virtual page number) in :mod:`repro.hw.tlb`.

The implementation leans on Python dict insertion order for LRU: a hit
re-inserts the key at the MRU end; eviction pops the LRU (first) key.  This
is the hot path of the trace-driven simulator, so it avoids per-access
object allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.util import is_power_of_two


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0


class SetAssocCache:
    """A set-associative LRU cache of fixed-size blocks.

    Parameters
    ----------
    num_blocks:
        Total block capacity (e.g. 16 blocks of 64 B = a 1 KB cache).
    ways:
        Associativity; ``num_blocks`` must be a multiple of it.  Pass
        ``ways == num_blocks`` for a fully-associative structure.
    block_size:
        Bytes per block; addresses are truncated to block granularity.
    """

    def __init__(self, num_blocks: int, ways: int, block_size: int = 64):
        if num_blocks <= 0 or ways <= 0 or num_blocks % ways:
            raise ValueError(
                f"invalid geometry: {num_blocks} blocks / {ways} ways"
            )
        if not is_power_of_two(block_size):
            raise ValueError(f"block size must be a power of two, got {block_size}")
        self.num_blocks = num_blocks
        self.ways = ways
        self.block_size = block_size
        self.num_sets = num_blocks // ways
        self.stats = CacheStats()
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        self._block_shift = block_size.bit_length() - 1

    def access(self, addr: int) -> bool:
        """Look up the block containing ``addr``; fill on miss.

        Returns True on hit.
        """
        block = addr >> self._block_shift
        cache_set = self._sets[block % self.num_sets]
        if block in cache_set:
            # LRU touch: move to the MRU (most recently inserted) position.
            del cache_set[block]
            cache_set[block] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.ways:
            cache_set.pop(next(iter(cache_set)))
        cache_set[block] = True
        return False

    def probe(self, addr: int) -> bool:
        """Non-allocating lookup (no fill, no LRU update, no stats)."""
        block = addr >> self._block_shift
        return block in self._sets[block % self.num_sets]

    def invalidate_all(self) -> None:
        """Flush the cache contents (stats are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(len(s) for s in self._sets)
