"""Generic set-associative LRU cache model.

All SRAM lookup structures in the reproduction — page-walk caches, the
Access Validation Cache, the DVM-BM bitmap cache — are instances of this
model over physical block addresses.  TLBs have their own model (tagged by
virtual page number) in :mod:`repro.hw.tlb`.

The implementation leans on Python dict insertion order for LRU: a hit
re-inserts the key at the MRU end; eviction pops the LRU (first) key.  This
is the hot path of the trace-driven simulator, so it avoids per-access
object allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.util import is_power_of_two


def lru_get(lru_set: dict, key):
    """Probe one LRU set for ``key``: touch to MRU, return its value.

    Returns ``None`` on absence.  The shared probe primitive of every
    insertion-ordered-dict LRU structure (TLB sets, cache sets): a hit
    re-inserts the key so dict order stays recency order.
    """
    entry = lru_set.get(key)
    if entry is not None:
        del lru_set[key]
        lru_set[key] = entry
    return entry


def lru_put(lru_set: dict, key, value, ways: int) -> None:
    """Install ``key`` at the MRU end of one LRU set.

    Re-inserts if already resident; otherwise evicts the LRU (first) key
    when the set is at capacity.  The shared fill primitive matching
    :func:`lru_get`.
    """
    if key in lru_set:
        del lru_set[key]
    elif len(lru_set) >= ways:
        lru_set.pop(next(iter(lru_set)))
    lru_set[key] = value


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0


class SetAssocCache:
    """A set-associative LRU cache of fixed-size blocks.

    Parameters
    ----------
    num_blocks:
        Total block capacity (e.g. 16 blocks of 64 B = a 1 KB cache).
    ways:
        Associativity; ``num_blocks`` must be a multiple of it.  Pass
        ``ways == num_blocks`` for a fully-associative structure.
    block_size:
        Bytes per block; addresses are truncated to block granularity.
    """

    def __init__(self, num_blocks: int, ways: int, block_size: int = 64):
        if num_blocks <= 0 or ways <= 0 or num_blocks % ways:
            raise ValueError(
                f"invalid geometry: {num_blocks} blocks / {ways} ways"
            )
        if not is_power_of_two(block_size):
            raise ValueError(f"block size must be a power of two, got {block_size}")
        self.num_blocks = num_blocks
        self.ways = ways
        self.block_size = block_size
        self.num_sets = num_blocks // ways
        self.stats = CacheStats()
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        self._block_shift = block_size.bit_length() - 1

    def access(self, addr: int) -> bool:
        """Look up the block containing ``addr``; fill on miss.

        Returns True on hit.
        """
        block = addr >> self._block_shift
        cache_set = self._sets[block % self.num_sets]
        if lru_get(cache_set, block) is not None:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        lru_put(cache_set, block, True, self.ways)
        return False

    def probe(self, addr: int) -> bool:
        """Non-allocating lookup (no fill, no LRU update, no stats)."""
        block = addr >> self._block_shift
        return block in self._sets[block % self.num_sets]

    def install_block(self, block: int) -> None:
        """Fill ``block`` at the MRU position without touching stats.

        The batched timing engine uses this to rebuild end-of-trace
        contents from its analysis (blocks installed in last-touch
        order); counters are accounted separately in bulk.
        """
        lru_put(self._sets[block % self.num_sets], block, True, self.ways)

    def install_blocks(self, blocks) -> None:
        """Bulk :meth:`install_block` in last-touch order (MRU last).

        One call replaces the batched engine's per-block dispatch when it
        rebuilds end-of-trace contents; stats are untouched.
        """
        sets, num_sets, ways = self._sets, self.num_sets, self.ways
        for block in blocks:
            lru_put(sets[block % num_sets], block, True, ways)

    def resident_blocks(self) -> list[int]:
        """Resident block ids, LRU-to-MRU within each set.

        The batched engine primes its LRU replay with these so a warm
        cache needs no scalar fallback: sets are independent, so any
        global order whose per-set projection is recency order is exact.
        """
        return [block for cache_set in self._sets for block in cache_set]

    def invalidate_all(self) -> None:
        """Flush the cache contents (stats are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(len(s) for s in self._sets)
