"""repro: a reproduction of "Devirtualizing Memory in Heterogeneous Systems".

Haria, Hill & Swift, ASPLOS 2018 (DOI 10.1145/3173162.3173194).

The library implements Devirtualized Memory (DVM) end to end in a
trace-driven Python simulator: the OS half (identity mapping, Permission
Entries, flexible address spaces — :mod:`repro.kernel`), the hardware half
(TLBs, the Access Validation Cache, the IOMMU's seven configurations —
:mod:`repro.hw`, :mod:`repro.core`), the Graphicionado graph accelerator it
is evaluated on (:mod:`repro.accel`, :mod:`repro.graphs`), the cDVM CPU
extension (:mod:`repro.cpu`), and one experiment module per paper
table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import DVM
    dvm = DVM()                 # a DVM-PE+ machine with one host process
    va = dvm.malloc(4 << 20)    # identity-mapped allocation
    assert dvm.is_identity(va)
    assert dvm.validate(va, "r").direct
"""

from repro.core.config import HardwareScale, MMUConfig, standard_configs
from repro.core.dvm import DVM, DVMStats
from repro.sim.runner import ExperimentRunner

__version__ = "1.0.0"

__all__ = [
    "DVM",
    "DVMStats",
    "ExperimentRunner",
    "HardwareScale",
    "MMUConfig",
    "standard_configs",
    "__version__",
]
