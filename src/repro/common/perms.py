"""Two-bit permission encoding used throughout the reproduction.

The paper (Section 4.1) uses the encoding::

    00: No Permission    01: Read-Only
    10: Read-Write       11: Read-Execute

Permission Entries pack sixteen of these 2-bit fields into one 8-byte
page-table entry.  Access kinds are ``"r"`` (load), ``"w"`` (store) and
``"x"`` (instruction fetch).
"""

from __future__ import annotations

import enum


class Perm(enum.IntEnum):
    """Region permission, in the paper's 2-bit encoding."""

    NONE = 0b00
    READ_ONLY = 0b01
    READ_WRITE = 0b10
    READ_EXECUTE = 0b11


#: Access kinds accepted by :func:`allows`.
ACCESS_KINDS = ("r", "w", "x")

_ALLOWED = {
    Perm.NONE: frozenset(),
    Perm.READ_ONLY: frozenset("r"),
    Perm.READ_WRITE: frozenset("rw"),
    Perm.READ_EXECUTE: frozenset("rx"),
}


def allows(perm: Perm, access: str) -> bool:
    """Return whether ``perm`` authorises an access of kind ``access``."""
    if access not in ACCESS_KINDS:
        raise ValueError(f"unknown access kind: {access!r}")
    return access in _ALLOWED[Perm(perm)]


def pack_fields(fields: list[Perm]) -> int:
    """Pack sixteen 2-bit permission fields into a single integer.

    Field 0 occupies the least-significant two bits, matching Figure 6's
    P15..P0 layout read from the most-significant end.
    """
    if len(fields) != 16:
        raise ValueError(f"a Permission Entry has 16 fields, got {len(fields)}")
    packed = 0
    for i, perm in enumerate(fields):
        packed |= (int(perm) & 0b11) << (2 * i)
    return packed


def unpack_fields(packed: int) -> list[Perm]:
    """Inverse of :func:`pack_fields`."""
    return [Perm((packed >> (2 * i)) & 0b11) for i in range(16)]


def from_prot(read: bool, write: bool, execute: bool) -> Perm:
    """Map an mmap-style protection triple onto the 2-bit encoding.

    x86-64 leaves no encoding for write+execute here, matching the paper's
    four-state field; W^X is enforced by construction.
    """
    if write and execute:
        raise ValueError("write+execute mappings are not representable")
    if execute:
        return Perm.READ_EXECUTE if read else Perm.NONE
    if write:
        return Perm.READ_WRITE
    if read:
        return Perm.READ_ONLY
    return Perm.NONE
