"""Deterministic fault injection for chaos-testing the pipeline.

DVM itself is built on graceful degradation — identity mapping falls back
to demand paging when contiguous memory runs out (paper Section 4.3) — and
the experiment harness mirrors that philosophy: workers are retried, corrupt
cache entries are quarantined and recomputed, broken pools are rebuilt.
This module *proves* those paths work by firing faults at them on demand.

Faults are configured from the environment (or programmatically)::

    REPRO_FAULTS="worker_crash:0.2,cache_corrupt:0.1,alloc_oom:1.0:2"
    REPRO_FAULTS_SEED=7

Each spec is ``site:probability[:max_fires]``.  Decisions are a pure
function of ``(seed, site, per-site check index)`` — no global RNG state —
so a given seed produces the identical fault pattern on every run, in any
process, regardless of thread or pool scheduling.  :func:`rescope` derives
a child seed from a tag (the runner uses ``"workload/dataset#attempt"``),
which keeps worker-side patterns deterministic per *pair attempt* even
though the pool assigns pairs to processes nondeterministically.

Sites (the complete registry — unknown names are a :class:`ConfigError`):

``worker_crash``
    ``_sweep_worker_main`` raises :class:`WorkerCrashError` (retried).
``worker_exit``
    ``_sweep_worker_main`` hard-exits, killing the worker process
    (exercises dead-worker detection and domain rebuild).
``worker_hang``
    ``_sweep_worker_main`` sleeps for ``REPRO_HANG_SECONDS`` (default
    30) with its heartbeat suppressed (exercises liveness supervision:
    the supervisor must kill and requeue within ~2 heartbeat intervals,
    not the full pair timeout).
``cache_corrupt``
    artifact writes persist corrupted bytes (exercises checksum
    quarantine + recompute on the next read).
``compile_fail``
    ``repro.sim._native`` pretends the C compile failed (exercises the
    numpy-engine fallback).
``alloc_oom``
    the buddy allocator's contiguous path raises
    :class:`OutOfMemoryError` (exercises the paper's identity-mapping →
    demand-paging fallback).  This is a *perturbing* site: it changes
    what a simulation measures, so the runner discards and re-runs any
    computation during which it fired (see ``perturbation_mark``).
``sweep_abort``
    ``run_pairs`` raises :class:`InjectedFault` after checkpointing a
    pair (exercises kill-mid-sweep resume).
``page_fault``
    the IOMMU delivers a synthetic guest fault for one trace access
    through the recoverable-fault path (``hw/fault_queue.py`` +
    ``kernel/fault.py``); the kernel services it as spurious, so the
    trace completes with fault-service stall added.  A *perturbing*
    site — the stall changes the measured cycles, so the runner
    discards and re-runs (see ``perturbation_mark``).
``perm_fault``
    the IOMMU escalates a synthetic permission violation
    (:class:`~repro.common.errors.AccessViolation`) for one trace
    access (exercises sweep-level quarantine: the faulting pair lands
    in the ResilienceReport instead of poisoning the sweep).  Not
    perturbing: the pair produces no metrics at all.
``scheduler_stall``
    the sweep supervisor loop (``repro.sweep.scheduler``) freezes for
    one liveness grace period before continuing (exercises that worker
    heartbeats and deadlines survive a wedged scheduler without
    spurious kills or lost work).
``steal_race``
    a work-steal leaves a duplicate of the stolen task on the victim's
    deque, so two workers execute the same task (exercises
    content-key dedup: exactly one result is kept, counters never
    double-count).
``checkpoint_torn``
    a journal append writes only a prefix of the record and then dies
    (:class:`InjectedFault`), leaving a torn trailing record
    (exercises resume-time torn-write truncation in
    ``repro.sweep.journal``).
``heartbeat_loss``
    a sweep worker's heartbeat thread goes silent while the worker
    keeps computing (exercises supervisor kill + requeue racing a
    still-arriving result; dedup must keep exactly one).
``hedge_race``
    a straggler check hedges the task immediately, below the latency
    quantile, so an original and its hedge finish close together
    (exercises first-finisher-wins dedup on the hedging path).

When no faults are configured every hook is a single global-flag check,
so production paths pay nothing.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, InjectedFault

FAULTS_ENV_VAR = "REPRO_FAULTS"
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"

#: The complete site registry (documented above).
KNOWN_SITES = (
    "worker_crash",
    "worker_exit",
    "worker_hang",
    "cache_corrupt",
    "compile_fail",
    "alloc_oom",
    "sweep_abort",
    "page_fault",
    "perm_fault",
    "scheduler_stall",
    "steal_race",
    "checkpoint_torn",
    "heartbeat_loss",
    "hedge_race",
)

#: Sites whose firing changes simulation *results*, not just control flow.
#: Computations during which one fired are discarded and re-run so
#: persisted and returned metrics always come from fault-free executions.
PERTURBING_SITES = frozenset({"alloc_oom", "page_fault"})


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: where, how often, and an optional cap."""

    site: str
    probability: float
    max_fires: int | None = None


@dataclass
class SiteStats:
    """Per-site decision counters."""

    checks: int = 0
    fires: int = 0


def parse_spec(spec: str) -> dict[str, FaultSpec]:
    """Parse ``site:prob[,site:prob[:max_fires]...]`` into specs."""
    specs: dict[str, FaultSpec] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        fields = part.split(":")
        if len(fields) not in (2, 3):
            raise ConfigError(
                f"bad fault spec {part!r}: expected site:probability"
                f"[:max_fires]")
        site = fields[0]
        if site not in KNOWN_SITES:
            raise ConfigError(
                f"unknown fault site {site!r}; valid sites: "
                f"{', '.join(KNOWN_SITES)}")
        try:
            probability = float(fields[1])
        except ValueError:
            raise ConfigError(
                f"bad fault probability {fields[1]!r} for {site!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"fault probability for {site!r} must be in [0, 1], "
                f"got {probability}")
        max_fires = None
        if len(fields) == 3:
            try:
                max_fires = int(fields[2])
            except ValueError:
                raise ConfigError(
                    f"bad max_fires {fields[2]!r} for {site!r}") from None
        specs[site] = FaultSpec(site, probability, max_fires)
    return specs


@dataclass
class FaultInjector:
    """Seeded, counter-indexed fault decisions plus per-site statistics."""

    specs: dict[str, FaultSpec]
    seed: int = 0
    stats: dict[str, SiteStats] = field(default_factory=dict)
    perturbations: int = 0

    def should_fire(self, site: str) -> bool:
        """Decide (and record) whether ``site``'s fault fires this check.

        The decision hashes ``(seed, site, check index)`` so it is
        reproducible independent of call interleaving across sites.
        """
        spec = self.specs.get(site)
        if spec is None:
            return False
        stat = self.stats.setdefault(site, SiteStats())
        index = stat.checks
        stat.checks += 1
        if spec.max_fires is not None and stat.fires >= spec.max_fires:
            return False
        if spec.probability >= 1.0:
            fired = True
        elif spec.probability <= 0.0:
            fired = False
        else:
            digest = hashlib.sha256(
                f"{self.seed}|{site}|{index}".encode()).digest()
            fired = int.from_bytes(digest[:8], "big") / 2**64 \
                < spec.probability
        if fired:
            stat.fires += 1
            if site in PERTURBING_SITES:
                self.perturbations += 1
        return fired

    def fire_counts(self) -> dict[str, int]:
        """Fires per site (sites that were never checked are omitted)."""
        return {site: s.fires for site, s in self.stats.items() if s.fires}

    def to_dict(self) -> dict:
        """JSON-friendly summary for resilience reports."""
        return {
            site: {"checks": s.checks, "fires": s.fires}
            for site, s in sorted(self.stats.items())
        }


# -- module-level injector (the hooks production code calls) -----------------

_injector: FaultInjector | None = None
_loaded = False       # whether the environment has been consulted
_active = False       # fast path: skip all work when nothing is configured


def _load_from_env() -> None:
    global _injector, _loaded, _active
    _loaded = True
    spec = os.environ.get(FAULTS_ENV_VAR, "")
    if not spec:
        _injector, _active = None, False
        return
    seed = int(os.environ.get(FAULTS_SEED_ENV_VAR, "0") or "0")
    _injector = FaultInjector(parse_spec(spec), seed=seed)
    _active = True


def configure(spec: str | None, seed: int = 0) -> FaultInjector | None:
    """Install an injector programmatically (``None`` disables faults)."""
    global _injector, _loaded, _active
    _loaded = True
    if not spec:
        _injector, _active = None, False
        return None
    _injector = FaultInjector(parse_spec(spec), seed=seed)
    _active = True
    return _injector


def reset() -> None:
    """Forget any injector; the environment is re-read on the next hook."""
    global _injector, _loaded, _active
    _injector, _loaded, _active = None, False, False


def injector() -> FaultInjector | None:
    """The active injector, if any (loads from the environment once)."""
    if not _loaded:
        _load_from_env()
    return _injector


def active() -> bool:
    """Whether any fault is configured."""
    if not _loaded:
        _load_from_env()
    return _active


def derive_seed(seed: int, tag: str) -> int:
    """A child seed that is a pure function of ``(seed, tag)``."""
    digest = hashlib.sha256(f"{seed}|{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rescope(tag: str) -> None:
    """Re-key the injector for a new deterministic scope.

    Workers call this with a per-pair-attempt tag so their fault pattern
    depends only on ``(base seed, tag)``, never on which pool process
    happened to pick the task up.  Counters restart with the scope.
    """
    inj = injector()
    if inj is None:
        return
    global _injector
    _injector = FaultInjector(inj.specs, seed=derive_seed(inj.seed, tag))


def should_fire(site: str) -> bool:
    """Hook: whether the configured fault at ``site`` fires now."""
    if not _loaded:
        _load_from_env()
    if not _active:
        return False
    return _injector.should_fire(site)


def maybe_raise(site: str, exc_factory=None) -> None:
    """Hook: raise the site's fault if it fires.

    ``exc_factory`` builds the exception; the default is
    :class:`InjectedFault`.
    """
    if should_fire(site):
        if exc_factory is None:
            raise InjectedFault(f"injected fault at {site!r}")
        raise exc_factory()


def perturbation_mark() -> int:
    """Current count of perturbing fires (see :data:`PERTURBING_SITES`)."""
    inj = injector()
    return inj.perturbations if inj is not None else 0


def perturbed_since(mark: int) -> bool:
    """Whether a perturbing fault fired after ``mark`` was taken."""
    inj = injector()
    return inj is not None and inj.perturbations > mark
