"""Artifact integrity: checksummed envelopes, quarantine, tmp reaping.

Every artifact the pipeline persists (metrics JSON, sweep checkpoints,
and — via a sidecar — binary trace ``.npz`` files) carries a schema
version and a SHA-256 digest of its payload.  Readers validate both;
anything corrupt, truncated, or written under a different schema raises
:class:`CacheIntegrityError`, and callers respond by *quarantining* the
file (renaming it ``.corrupt``) and recomputing — a bad cache entry
costs one recomputation, never a crash or a silently wrong figure.

Writers go through ``tmp-file + os.replace`` so readers only ever see
whole files; ``.{pid}.tmp`` droppings left by writers that died mid-write
are reaped on startup (pid liveness first, file age as the fallback).
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import os
import re
import time
from pathlib import Path

from repro.common import faults
from repro.common.errors import CacheIntegrityError

#: Version of the JSON envelope / sidecar format itself.
SCHEMA_VERSION = 1

#: Matches the writer-pid tmp naming used across the pipeline
#: (``metrics-<key>.<pid>.<seq>.tmp``, ``trace-<key>.<pid>.<seq>.tmp.npz``,
#: ``_lru_<tag>.<pid>.tmp``); the sequence number keeps concurrent
#: writers *within* one process from colliding and is optional.
_TMP_RE = re.compile(r"\.(\d+)(?:\.\d+)?\.tmp(\.[A-Za-z0-9]+)?$")

#: Per-process uniquifier for tmp names (thread-safe by the GIL).
_TMP_SEQ = itertools.count(1)

#: Age (seconds) past which a tmp file is reaped even when its writer pid
#: cannot be shown dead (pid recycled, unparsable name, foreign writer).
STALE_TMP_AGE = 3600.0


def tmp_path(path: Path, suffix: str = "") -> Path:
    """A unique, reapable tmp name for publishing ``path`` atomically.

    ``{name}.{pid}.{seq}.tmp{suffix}``: pid for cross-process liveness
    checks in :func:`reap_stale_tmp`, sequence number so concurrent
    writers in one process (threads, re-entrant sweeps) never collide.
    """
    return path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp{suffix}")


def payload_digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def dumps_envelope(payload: dict, kind: str) -> str:
    """Serialize ``payload`` inside a checksummed, versioned envelope."""
    return json.dumps(
        {"schema": SCHEMA_VERSION, "kind": kind,
         "sha256": payload_digest(payload), "payload": payload},
        indent=1)


def loads_envelope(text: str, kind: str) -> dict:
    """Parse and validate an envelope; returns the payload.

    Raises :class:`CacheIntegrityError` on malformed JSON, a missing or
    foreign envelope (including pre-envelope legacy artifacts), a schema
    or kind mismatch, or a digest mismatch.
    """
    try:
        doc = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CacheIntegrityError(f"malformed artifact JSON: {exc}") from exc
    if not isinstance(doc, dict) or "payload" not in doc:
        raise CacheIntegrityError(
            "artifact has no integrity envelope (legacy or foreign format)")
    if doc.get("schema") != SCHEMA_VERSION:
        raise CacheIntegrityError(
            f"artifact schema {doc.get('schema')!r} != {SCHEMA_VERSION}")
    if doc.get("kind") != kind:
        raise CacheIntegrityError(
            f"artifact kind {doc.get('kind')!r} != {kind!r}")
    payload = doc["payload"]
    if doc.get("sha256") != payload_digest(payload):
        raise CacheIntegrityError("artifact checksum mismatch")
    return payload


def write_json_atomic(path: Path, payload: dict, kind: str) -> None:
    """Atomically persist ``payload`` under an integrity envelope.

    The ``cache_corrupt`` fault hook truncates the written bytes, which
    a later :func:`read_json_verified` must catch and quarantine.
    """
    text = dumps_envelope(payload, kind)
    if faults.should_fire("cache_corrupt"):
        text = text[: max(1, len(text) // 2)]
    tmp = tmp_path(path)
    tmp.write_text(text)
    os.replace(tmp, path)


def read_json_verified(path: Path, kind: str) -> dict:
    """Read an envelope written by :func:`write_json_atomic`."""
    try:
        text = path.read_text()
    except OSError as exc:
        raise CacheIntegrityError(f"unreadable artifact {path}: {exc}") \
            from exc
    return loads_envelope(text, kind)


# -- binary artifacts: sidecar checksums -------------------------------------

def sidecar_path(path: Path) -> Path:
    """The checksum sidecar for a binary artifact."""
    return path.with_name(path.name + ".sha256")


def file_sha256(path: Path) -> str:
    """SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_sidecar(path: Path, content_of: Path | None = None) -> None:
    """Write ``path``'s sidecar, hashing ``content_of`` (default: itself).

    Passing the not-yet-renamed tmp file as ``content_of`` lets writers
    publish the sidecar *before* the ``os.replace`` that publishes the
    artifact, so readers never observe an artifact without its sidecar.
    The ``cache_corrupt`` fault hook records a wrong digest.
    """
    digest = file_sha256(content_of or path)
    if faults.should_fire("cache_corrupt"):
        digest = digest[::-1]
    sidecar = sidecar_path(path)
    tmp = tmp_path(sidecar)
    tmp.write_text(f"repro-cache-v{SCHEMA_VERSION} sha256:{digest}\n")
    os.replace(tmp, sidecar)


def verify_sidecar(path: Path) -> None:
    """Validate a binary artifact against its sidecar.

    Raises :class:`CacheIntegrityError` when the sidecar is missing
    (legacy artifact), malformed, version-mismatched, or the digest does
    not match the file's bytes.
    """
    sidecar = sidecar_path(path)
    try:
        text = sidecar.read_text()
    except OSError as exc:
        raise CacheIntegrityError(
            f"missing checksum sidecar for {path}") from exc
    match = re.fullmatch(r"repro-cache-v(\d+) sha256:([0-9a-f]{64})\s*",
                         text)
    if match is None:
        raise CacheIntegrityError(f"malformed sidecar {sidecar}")
    if int(match.group(1)) != SCHEMA_VERSION:
        raise CacheIntegrityError(
            f"sidecar schema v{match.group(1)} != v{SCHEMA_VERSION}")
    if match.group(2) != file_sha256(path):
        raise CacheIntegrityError(f"checksum mismatch for {path}")


# -- quarantine and tmp reaping ----------------------------------------------

def quarantine(path: Path) -> Path | None:
    """Move a failed artifact aside as ``<name>.corrupt`` for post-mortems.

    Returns the quarantine path, or ``None`` when the file vanished (a
    concurrent reader already quarantined it — benign).  A numeric
    suffix keeps repeat offenders from overwriting each other.
    """
    target = path.with_name(path.name + ".corrupt")
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_name(f"{path.name}.corrupt.{serial}")
    try:
        os.replace(path, target)
    except FileNotFoundError:
        return None
    return target


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError as exc:
        if exc.errno == errno.ESRCH:
            return False
        return True          # EPERM etc.: exists, owned by someone else
    return True


def reap_stale_tmp(root: Path, *, stale_age: float = STALE_TMP_AGE
                   ) -> list[Path]:
    """Delete tmp files abandoned by dead writers under ``root``.

    A ``.{pid}.tmp`` file is reaped when its writer pid is provably dead,
    or — for unparsable names and possibly-recycled pids — when the file
    is older than ``stale_age`` seconds.  Live writers' files are left
    alone so concurrent runs sharing a cache directory never clobber an
    in-flight write.  The walk recurses so shard subdirectories of the
    sweep cache (``<root>/<xx>/``) are covered too.  Returns the reaped
    paths.
    """
    reaped: list[Path] = []
    if not root.is_dir():
        return reaped
    now = time.time()
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        match = _TMP_RE.search(path.name)
        if match is None:
            continue
        pid = int(match.group(1))
        try:
            old = now - path.stat().st_mtime > stale_age
        except OSError:
            continue                      # vanished under us
        if pid != os.getpid() and (not _pid_alive(pid) or old):
            try:
                path.unlink()
            except OSError:
                continue
            reaped.append(path)
    return reaped
