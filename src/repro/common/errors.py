"""Exception hierarchy for the reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class OutOfMemoryError(ReproError):
    """The physical allocator could not satisfy a request."""


class AddressSpaceError(ReproError):
    """A virtual-address-space operation failed (overlap, exhaustion...)."""


class MappingError(ReproError):
    """A page-table mapping operation was invalid (misalignment, remap...)."""


class ProtectionFault(ReproError):
    """An access was attempted without sufficient permissions.

    Mirrors the exception the IOMMU raises on the host CPU when DAV finds
    insufficient permissions (paper Section 4.1.1).
    """

    def __init__(self, va: int, access: str, message: str | None = None):
        self.va = va
        self.access = access
        super().__init__(
            message or f"protection fault: {access!r} access to {va:#x} denied"
        )


class PageFault(ReproError):
    """An access touched an unmapped virtual address."""

    def __init__(self, va: int, message: str | None = None):
        self.va = va
        super().__init__(message or f"page fault at {va:#x}")


class ConfigError(ReproError):
    """An experiment or hardware configuration was inconsistent."""
