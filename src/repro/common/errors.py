"""Exception hierarchy for the reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class OutOfMemoryError(ReproError):
    """The physical allocator could not satisfy a request."""


class AddressSpaceError(ReproError):
    """A virtual-address-space operation failed (overlap, exhaustion...)."""


class MappingError(ReproError):
    """A page-table mapping operation was invalid (misalignment, remap...)."""


class ProtectionFault(ReproError):
    """An access was attempted without sufficient permissions.

    Mirrors the exception the IOMMU raises on the host CPU when DAV finds
    insufficient permissions (paper Section 4.1.1).
    """

    def __init__(self, va: int, access: str, message: str | None = None):
        self.va = va
        self.access = access
        super().__init__(
            message or f"protection fault: {access!r} access to {va:#x} denied"
        )

    def __reduce__(self):
        # Exceptions with non-message __init__ args need an explicit recipe
        # so they survive the process-pool pickle round trip.
        return (type(self), (self.va, self.access, str(self)))


class PageFault(ReproError):
    """An access touched an unmapped virtual address."""

    def __init__(self, va: int, message: str | None = None):
        self.va = va
        super().__init__(message or f"page fault at {va:#x}")

    def __reduce__(self):
        return (type(self), (self.va, str(self)))


class AccessViolation(ProtectionFault):
    """A guest access the kernel fault handler refused to service.

    The recoverable-fault path (``repro.hw.fault_queue`` +
    ``repro.kernel.fault``) raises this instead of a naked
    :class:`PageFault`/:class:`ProtectionFault`: it carries the full
    structured :class:`~repro.hw.fault_queue.FaultRecord` (va, access,
    fault kind, configuration, trace index, coalesce count) so sweep-level
    containment can quarantine the faulting pair with a useful report.
    Subclasses :class:`ProtectionFault` so pre-fault-path handlers keep
    working.
    """

    def __init__(self, record, message: str | None = None):
        self.record = record
        super().__init__(
            record.va, record.access,
            message or (f"access violation: {record.access!r} access to "
                        f"{record.va:#x} ({record.kind}) under "
                        f"{record.config or 'unknown config'!s} refused"))

    def __reduce__(self):
        return (AccessViolation, (self.record, str(self)))


class ConfigError(ReproError):
    """An experiment or hardware configuration was inconsistent."""


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    The resilience layer (``repro.sim.resilience``) retries these with
    exponential backoff; anything else propagates immediately so
    programming errors and genuinely fatal conditions are never masked
    by a retry loop.
    """


class WorkerCrashError(TransientError):
    """A process-pool worker died or raised while running a pair."""


class PairTimeoutError(TransientError):
    """A (workload, dataset) pair exceeded its wall-clock budget."""


class CacheIntegrityError(ReproError):
    """A persisted artifact failed validation (corrupt, truncated, or
    written under a different schema version).

    Not transient in the retry sense: the remedy is quarantining the
    artifact and recomputing it, not re-reading the same bytes.
    """


class InjectedFault(TransientError):
    """A failure raised by the deterministic fault injector.

    Only ``repro.common.faults`` raises this; production code paths
    treat it like any other transient failure.
    """


class InjectedOutOfMemoryError(OutOfMemoryError, TransientError):
    """An injected allocator OOM (chaos testing).

    Subclasses :class:`OutOfMemoryError` so the identity-mapping code
    falls back to demand paging exactly as it would on real memory
    pressure (paper Section 4.3), and :class:`TransientError` so that if
    it escapes those fallbacks (e.g. fired during demand paging itself)
    the experiment harness retries the computation instead of dying.
    """
