"""Architectural constants for the simulated x86-64 memory system.

The paper models a standard x86-64 4-level page table (Figure 5) with 4 KB
base pages, 2 MB (L2 leaf) and 1 GB (L3 leaf) huge pages, and the new
Permission Entry (PE) format usable at any level.  This module centralises
the address arithmetic so every component (buddy allocator, page tables,
TLBs, walkers) agrees on geometry.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Base page geometry
# ---------------------------------------------------------------------------

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT          # 4 KB
PAGE_MASK = PAGE_SIZE - 1

# Bits of VA translated per page-table level.
LEVEL_BITS = 9
ENTRIES_PER_NODE = 1 << LEVEL_BITS   # 512 entries per page-table node
PTE_SIZE = 8                         # bytes per page-table entry
NODE_SIZE = ENTRIES_PER_NODE * PTE_SIZE  # 4 KB: one frame per node

# Page-table levels, numbered as in the paper: L1 is the leaf level for
# 4 KB pages, L4 is the root (PML4 in x86 terms).
NUM_LEVELS = 4
LEVELS = (4, 3, 2, 1)

# Size of the VA region mapped by a single entry at each level.
#   L1 entry -> 4 KB page
#   L2 entry -> 2 MB
#   L3 entry -> 1 GB
#   L4 entry -> 512 GB
LEVEL_SPAN = {
    1: PAGE_SIZE,
    2: PAGE_SIZE << LEVEL_BITS,            # 2 MB
    3: PAGE_SIZE << (2 * LEVEL_BITS),      # 1 GB
    4: PAGE_SIZE << (3 * LEVEL_BITS),      # 512 GB
}

# Huge-page sizes supported by the baseline configurations.
SIZE_4K = LEVEL_SPAN[1]
SIZE_2M = LEVEL_SPAN[2]
SIZE_1G = LEVEL_SPAN[3]

# 48-bit canonical virtual address space (we model the user half).
VA_BITS = 48
VA_LIMIT = 1 << VA_BITS

# ---------------------------------------------------------------------------
# Permission Entries (paper Section 4.1.1, Figure 6)
# ---------------------------------------------------------------------------

# Each PE stores separate permissions for sixteen aligned sub-regions of the
# VA range mapped by the entry it replaces.
PE_FIELDS = 16

# Sub-region size per PE level: 1/16th of the level span.
#   L2 PE -> 128 KB sub-regions; L3 PE -> 64 MB; L4 PE -> 32 GB.
PE_REGION_SIZE = {level: LEVEL_SPAN[level] // PE_FIELDS for level in (2, 3, 4)}


def level_index(va: int, level: int) -> int:
    """Index of ``va`` within the page-table node at ``level``.

    Mirrors the x86-64 split: bits [47:39] select the L4 entry, [38:30] the
    L3 entry, [29:21] the L2 entry and [20:12] the L1 entry.
    """
    shift = PAGE_SHIFT + (level - 1) * LEVEL_BITS
    return (va >> shift) & (ENTRIES_PER_NODE - 1)


def level_base(va: int, level: int) -> int:
    """Base VA of the region mapped by the entry covering ``va`` at ``level``."""
    return va & ~(LEVEL_SPAN[level] - 1)


def pe_field_index(va: int, level: int) -> int:
    """Which of the sixteen PE permission fields covers ``va`` at ``level``."""
    offset = va - level_base(va, level)
    return offset // PE_REGION_SIZE[level]


def vpn(va: int, page_size: int = PAGE_SIZE) -> int:
    """Virtual page number of ``va`` for the given page size."""
    return va // page_size


def page_offset(va: int, page_size: int = PAGE_SIZE) -> int:
    """Offset of ``va`` within its page for the given page size."""
    return va % page_size
