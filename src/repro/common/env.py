"""Central environment access for every ``REPRO_*`` runtime knob.

All environment reads in the library go through this module (enforced
by dvmlint rule ENV001): one choke point means the knob inventory stays
enumerable and cross-checkable against ``docs/configuration.md`` (rules
ENV002/ENV003), truthiness parses one way everywhere, and pool workers
re-reading their configuration at entry hit the same code path the
parent used.

The helpers deliberately return raw strings by default — call sites own
their parse-and-validate behaviour (several exit with a usage message on
bad values, e.g. ``REPRO_WORKERS``) — with small typed conveniences for
the common truthy/float cases.
"""

from __future__ import annotations

import contextlib
import os
from collections.abc import Iterator, Mapping

__all__ = ["raw", "truthy", "truthy_str", "floating", "integer",
           "override"]


def raw(name: str, default: str | None = None) -> str | None:
    """The variable's raw string value, or ``default`` when unset."""
    return os.environ.get(name, default)


def truthy_str(value: str | None) -> bool:
    """Shared truthiness parse: unset/empty/0/false/no/off are false."""
    return (value or "").strip().lower() not in ("", "0", "false", "no",
                                                 "off")


def truthy(name: str) -> bool:
    """Whether the variable is set to a truthy value."""
    return truthy_str(raw(name))


def floating(name: str, default: float) -> float:
    """The variable as a float; unset, empty or unparseable gives
    ``default``."""
    value = raw(name)
    if value is None or not value.strip():
        return default
    try:
        return float(value)
    except ValueError:
        return default


@contextlib.contextmanager
def override(values: Mapping[str, str | None]) -> Iterator[None]:
    """Temporarily set (or, with ``None``, unset) environment knobs.

    The previous values are restored on exit even when the body raises.
    Chaos harnesses use this to pin scheduler knobs for one sweep
    without leaking state into the surrounding process.
    """
    saved = {name: os.environ.get(name) for name in values}
    try:
        for name, value in values.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, prior in saved.items():
            if prior is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = prior


def integer(name: str, default: int) -> int:
    """The variable as an int; unset, empty or unparseable gives
    ``default``."""
    value = raw(name)
    if value is None or not value.strip():
        return default
    try:
        return int(value)
    except ValueError:
        return default
