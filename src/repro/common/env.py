"""Central environment access for every ``REPRO_*`` runtime knob.

All environment reads in the library go through this module (enforced
by dvmlint rule ENV001): one choke point means the knob inventory stays
enumerable and cross-checkable against ``docs/configuration.md`` (rules
ENV002/ENV003), truthiness parses one way everywhere, and pool workers
re-reading their configuration at entry hit the same code path the
parent used.

The helpers deliberately return raw strings by default — call sites own
their parse-and-validate behaviour (several exit with a usage message on
bad values, e.g. ``REPRO_WORKERS``) — with small typed conveniences for
the common truthy/float cases.
"""

from __future__ import annotations

import os

__all__ = ["raw", "truthy", "truthy_str", "floating"]


def raw(name: str, default: str | None = None) -> str | None:
    """The variable's raw string value, or ``default`` when unset."""
    return os.environ.get(name, default)


def truthy_str(value: str | None) -> bool:
    """Shared truthiness parse: unset/empty/0/false/no/off are false."""
    return (value or "").strip().lower() not in ("", "0", "false", "no",
                                                 "off")


def truthy(name: str) -> bool:
    """Whether the variable is set to a truthy value."""
    return truthy_str(raw(name))


def floating(name: str, default: float) -> float:
    """The variable as a float; unset, empty or unparseable gives
    ``default``."""
    value = raw(name)
    if value is None or not value.strip():
        return default
    try:
        return float(value)
    except ValueError:
        return default
