"""Small alignment and power-of-two helpers shared across the library."""

from __future__ import annotations


def is_power_of_two(n: int) -> bool:
    """Return whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def round_up_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (``n`` must be positive)."""
    if n <= 0:
        raise ValueError(f"expected a positive size, got {n}")
    return 1 << (n - 1).bit_length()


def align_down(value: int, alignment: int) -> int:
    """Largest multiple of ``alignment`` <= ``value``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` >= ``value``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """Return whether ``value`` is a multiple of ``alignment``."""
    return align_down(value, alignment) == value


def size_to_order(size: int, unit: int) -> int:
    """Buddy order for an allocation of ``size`` bytes in ``unit``-byte blocks.

    The order is the log2 of the number of units after rounding ``size`` up
    to a whole power-of-two multiple of ``unit`` — the eager-paging rounding
    the paper adopts from Karakostas et al. (Section 4.3.1).
    """
    if size <= 0:
        raise ValueError(f"expected a positive size, got {size}")
    units = (size + unit - 1) // unit
    return max(0, (units - 1).bit_length())


def human_bytes(n: int) -> str:
    """Render a byte count in the most natural binary unit (for reports)."""
    value = float(n)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or suffix == "TB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")
