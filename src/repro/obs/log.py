"""Structured diagnostic logging for degradation paths.

Subsystems that degrade gracefully (the compiled-kernel loader in
:mod:`repro.sim._native`, cache quarantine, …) used to print ad-hoc
``REPRO_DEBUG`` lines to stderr.  :func:`debug` keeps that behaviour as
the fallback but, when observability is enabled, lands each diagnostic
as one JSON object per line in ``log.ndjson`` inside the observability
directory instead — so a sweep's degradation history ships with its
trace and metrics artifacts rather than scrolling away.

Records carry a monotonically increasing per-process sequence number (so
merged logs from several processes stay ordered per producer), the
producing pid, the subsystem tag and free-form structured fields.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time

from repro.common import env
from repro.obs import core

#: Legacy switch: log degradation diagnostics to stderr when obs is off.
DEBUG_ENV_VAR = "REPRO_DEBUG"

#: Log file name inside the observability directory.
LOG_FILENAME = "log.ndjson"

_seq = itertools.count(1)


def debug_enabled() -> bool:
    """Whether stderr debug diagnostics are requested (``REPRO_DEBUG``).

    Uses the shared truthiness parse, so ``REPRO_DEBUG=0`` now disables
    diagnostics (it used to count as set).
    """
    return env.truthy(DEBUG_ENV_VAR)


def debug(subsystem: str, message: str, **fields) -> dict | None:
    """Emit one structured diagnostic record.

    With observability enabled the record is appended to ``log.ndjson``
    in the observability directory (created on first use).  Otherwise,
    with ``REPRO_DEBUG`` set, a human-readable line goes to stderr —
    exactly the legacy behaviour.  Returns the record when anything was
    emitted, else ``None``.
    """
    if not core.ENABLED and not debug_enabled():
        return None
    record = {
        "seq": next(_seq),
        "pid": os.getpid(),
        "unix_time": round(time.time(), 3),
        "subsystem": subsystem,
        "message": message,
    }
    if fields:
        record.update(fields)
    if core.ENABLED:
        try:
            path = core.ensure_out_dir() / LOG_FILENAME
            with open(path, "a") as fh:
                fh.write(json.dumps(record, sort_keys=True, default=str)
                         + "\n")
            return record
        except OSError:
            pass        # fall through to stderr: never lose a diagnostic
    detail = "".join(f" {key}={value}" for key, value in fields.items())
    print(f"[repro.{subsystem}] {message}{detail}", file=sys.stderr)
    return record
