"""Reporting CLI: render flushed observability artifacts as text.

``python -m repro obs <dir>`` reads everything a sweep flushed into its
observability directory — ``metrics-*.json`` registry snapshots,
``trace-*.ndjson`` event streams, ``heartbeat.log`` and ``log.ndjson`` —
and renders:

* translation-behaviour histograms (AVC hit rate / miss-rate
  distribution, walk-depth distribution, fault-service latency) per
  configuration, through the same table/bar helpers the figures use
  (:mod:`repro.experiments.reporting`);
* a span "flamegraph summary": wall time and call counts aggregated per
  span name, from the merged Chrome-trace events;
* the raw counter table, for everything else.

Multiple flushes merge: counters add, histograms add bin-wise, event
streams concatenate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.reporting import (render_histogram, render_table)
from repro.obs import trace as trace_mod
from repro.obs.core import Histogram, Registry


def load_registry(directory: Path) -> Registry:
    """Merge every ``metrics-*.json`` snapshot in ``directory``."""
    registry = Registry()
    for path in sorted(directory.glob("metrics-*.json")):
        payload = json.loads(path.read_text())
        registry.merge(payload)
    return registry


def load_events(directory: Path) -> list[dict]:
    """Concatenate every ``trace-*.ndjson`` stream in ``directory``."""
    events: list[dict] = []
    for path in sorted(directory.glob("trace-*.ndjson")):
        events.extend(trace_mod.read_ndjson(path))
    return events


def _by_config(instruments: dict, prefix: str) -> dict[str, object]:
    """``{config: instrument}`` for keys ``prefix|config=<name>``."""
    out = {}
    want = prefix + "|config="
    for key, value in instruments.items():
        if key.startswith(want):
            out[key[len(want):]] = value
    return out


def hit_rate_table(registry: Registry) -> str:
    """AVC / TLB hit rates per configuration, from exact counters."""
    rows = []
    avc_hits = _by_config(registry.counters, "avc.hits")
    avc_misses = _by_config(registry.counters, "avc.misses")
    for config in sorted(avc_hits):
        hits = avc_hits[config].value
        misses = avc_misses.get(config, None)
        misses = misses.value if misses is not None else 0
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        rows.append([config, "AVC", f"{hits:,}", f"{misses:,}",
                     f"{rate:.2f}%"])
    tlb_lookups = _by_config(registry.counters, "tlb.lookups")
    tlb_misses = _by_config(registry.counters, "tlb.misses")
    for config in sorted(tlb_lookups):
        lookups = tlb_lookups[config].value
        misses = tlb_misses.get(config)
        misses = misses.value if misses is not None else 0
        rate = 100.0 * (lookups - misses) / lookups if lookups else 0.0
        rows.append([config, "TLB", f"{lookups - misses:,}", f"{misses:,}",
                     f"{rate:.2f}%"])
    if not rows:
        return "(no AVC/TLB activity recorded)"
    return render_table(["Config", "Structure", "Hits", "Misses",
                         "Hit rate"], rows,
                        title="Translation hit rates (exact counters)")


def histogram_sections(registry: Registry) -> str:
    """Render every recorded histogram, grouped by base name."""
    titles = {
        "walk.depth": "Walk-depth distribution (memory refs per walked "
                      "page)",
        "avc.miss_permille": "AVC per-run miss rate (permille)",
        "fault.latency_cycles": "Fault-service latency (engine stall "
                                "cycles per fault)",
        "sweep.hang_detection_ms": "Hang-detection latency (ms from "
                                   "dispatch to supervisor kill)",
    }
    blocks = []
    for key in sorted(registry.histograms):
        base, _, labels = key.partition("|")
        title = titles.get(base, base)
        blocks.append(render_histogram(registry.histograms[key].to_dict(),
                                       title=f"{title} [{labels or 'all'}]"))
    return "\n\n".join(blocks) if blocks else "(no histograms recorded)"


def span_summary(events: list[dict]) -> str:
    """Flamegraph-style aggregation: wall time per span name."""
    agg: dict[str, list] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = event.get("name", "?")
        entry = agg.setdefault(name, [0, 0.0, 1 << 62])
        entry[0] += 1
        entry[1] += float(event.get("dur", 0.0))
        depth = event.get("args", {}).get("depth", 0)
        entry[2] = min(entry[2], depth)
    if not agg:
        return "(no spans recorded)"
    rows = []
    for name, (count, total_us, depth) in sorted(
            agg.items(), key=lambda item: -item[1][1]):
        rows.append(["  " * depth + name, str(count),
                     f"{total_us / 1e3:.1f}", f"{total_us / count / 1e3:.2f}"])
    return render_table(["Span", "Count", "Total ms", "Mean ms"], rows,
                        title="Span summary (per-process wall time)")


def hang_detection_summary(registry: Registry) -> str | None:
    """p50/p99 of supervisor hang-detection latency, when recorded.

    The scheduler observes ``sweep.hang_detection_ms`` per stale-beat /
    deadline kill (PR 8's ``detection_latencies``, surfaced as an obs
    histogram); the power-of-two bins give order-of-magnitude quantiles,
    clamped to the exact min/max.
    """
    hist = registry.histograms.get("sweep.hang_detection_ms")
    if hist is None or not hist.count:
        return None
    return (f"Hang detection: {hist.count} kills | "
            f"p50 {hist.quantile(0.5):.0f}ms | "
            f"p99 {hist.quantile(0.99):.0f}ms | "
            f"max {hist.max}ms")


def counters_table(registry: Registry) -> str:
    """All counters, sorted by name."""
    if not registry.counters:
        return "(no counters recorded)"
    rows = [[key, f"{counter.value:,}"]
            for key, counter in sorted(registry.counters.items())]
    return render_table(["Counter", "Value"], rows, title="Counters")


def render_report(directory: Path | str) -> str:
    """The full report for one observability directory."""
    directory = Path(directory)
    registry = load_registry(directory)
    events = load_events(directory)
    sections = [
        f"Observability report: {directory}",
        hit_rate_table(registry),
        histogram_sections(registry),
        span_summary(events),
        counters_table(registry),
    ]
    hang = hang_detection_summary(registry)
    if hang is not None:
        sections.append(hang)
    heartbeat = directory / "heartbeat.log"
    if heartbeat.exists():
        lines = heartbeat.read_text().splitlines()
        sections.append(f"Heartbeat ({len(lines)} lines; last): "
                        + (lines[-1] if lines else ""))
    log_path = directory / "log.ndjson"
    if log_path.exists():
        entries = [line for line in log_path.read_text().splitlines()
                   if line.strip()]
        sections.append(f"Diagnostics: {len(entries)} structured log "
                        f"entries in {log_path}")
    return "\n\n".join(sections)


def main(argv: list[str]) -> int:
    """Entry point for ``python -m repro obs <dir>``."""
    args = [a for a in argv if not a.startswith("-")]
    if not args:
        print("usage: python -m repro obs <obs-dir>")
        return 1
    directory = Path(args[0])
    if not directory.is_dir():
        print(f"not a directory: {directory}")
        return 1
    try:
        print(render_report(directory))
    except BrokenPipeError:      # e.g. `python -m repro obs dir | head`
        pass
    return 0
