"""``python -m repro top``: a live dashboard over the sweep event bus.

The scheduler narrates every lifecycle transition onto the bus
(:mod:`repro.obs.bus`); this module folds that stream into a terminal
dashboard — per-worker state, per-shard queue depth, steal / hedge /
fault counters, throughput and ETA — refreshed every
``REPRO_TOP_INTERVAL`` seconds, plus a Prometheus-text snapshot
(``metrics.prom``) rewritten atomically each refresh for scraping.

The fold is deliberately stateless across refreshes:
:meth:`TopModel.fold` replays the whole validated stream every tick.
Bus files are one small line per task *transition* (not per access), so
even a 10k-task sweep re-folds in milliseconds, and replay-from-zero
makes the dashboard trivially correct across writer crashes, torn-tail
truncations and mid-sweep attachment — the same reasons the journal
replays instead of trusting in-memory state.

Everything here is read-only over the bus; the dashboard can run in a
different terminal, container, or machine (shared filesystem) than the
sweep it watches.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

from repro.common import env
from repro.obs import bus as obs_bus
from repro.obs import core

#: Seconds between dashboard refreshes / metrics.prom snapshots.
TOP_INTERVAL_ENV_VAR = "REPRO_TOP_INTERVAL"

#: Default Prometheus snapshot file name inside the obs directory.
METRICS_FILENAME = "metrics.prom"

#: Event kinds counted verbatim into ``repro_sweep_events_total``.
COUNTED_KINDS = ("admitted", "started", "completed", "failed", "retried",
                 "stolen", "hedged", "killed", "quarantined", "duplicate",
                 "shelved", "beat-stale", "stalled", "serial",
                 "domain-rebuilt", "domain-fenced")


class TopModel:
    """The dashboard's state: one fold over a sweep's bus events."""

    def __init__(self):
        self.run_id = ""
        self.tasks = 0
        self.slots = 0
        self.done = 0
        self.backlog = 0
        self.started_at: float | None = None
        self.last_t: float | None = None
        self.finished = False
        self.counts = {kind: 0 for kind in COUNTED_KINDS}
        self.workers: dict[int, dict] = {}       # slot -> state snapshot
        self.queue_depth: dict[str, int] = {}    # shard -> queued tasks
        self._key_shard: dict[str, str] = {}

    @classmethod
    def fold(cls, events) -> "TopModel":
        model = cls()
        for event in events:
            model.apply(event)
        return model

    # -- folding --------------------------------------------------------------

    def _worker(self, slot) -> dict | None:
        if slot is None:
            return None
        state = self.workers.get(slot)
        if state is None:
            state = self.workers[slot] = {"state": "idle", "key": None,
                                          "since": None}
        return state

    def apply(self, event: dict) -> None:
        """Fold one validated bus record into the model."""
        kind = event.get("kind")
        t = event.get("t")
        if isinstance(t, (int, float)):
            self.last_t = t
        if kind in self.counts:
            self.counts[kind] += 1
        key = event.get("key")
        slot = event.get("slot")
        if kind == "sweep-begin":
            self.run_id = event.get("run_id", "")
            self.tasks = event.get("tasks", 0)
            self.slots = event.get("slots", 0)
            self.started_at = t
            for i in range(self.slots):
                self._worker(i)
        elif kind == "admitted":
            shard = event.get("shard") or key or "?"
            self._key_shard[key] = shard
            self.queue_depth[shard] = self.queue_depth.get(shard, 0) + 1
        elif kind in ("started", "hedged"):
            shard = self._key_shard.get(key)
            if kind == "started" and shard is not None:
                depth = self.queue_depth.get(shard, 0)
                self.queue_depth[shard] = max(depth - 1, 0)
            worker = self._worker(slot)
            if worker is not None:
                worker.update(state="busy", key=key, since=t)
        elif kind in ("completed", "quarantined", "failed", "duplicate"):
            if kind in ("completed", "quarantined"):
                self.done += 1
            worker = self._worker(slot)
            if worker is not None:
                worker.update(state="idle", key=None, since=t)
        elif kind == "killed":
            worker = self._worker(slot)
            if worker is not None:
                worker.update(state="dead", key=None, since=t)
        elif kind == "domain-rebuilt":
            for revived in event.get("slots") or ():
                worker = self._worker(revived)
                if worker is not None:
                    worker.update(state="idle", key=None, since=t)
        elif kind == "tick":
            self.backlog = event.get("backlog", self.backlog)
        elif kind == "sweep-end":
            self.finished = True
            self.done = max(self.done, event.get("done", 0))

    # -- derived --------------------------------------------------------------

    def throughput(self) -> float:
        """Completed tasks per second of observed sweep time."""
        if self.started_at is None or self.last_t is None:
            return 0.0
        elapsed = self.last_t - self.started_at
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> float | None:
        rate = self.throughput()
        remaining = max(self.tasks - self.done, 0)
        if self.finished or not remaining:
            return 0.0
        return remaining / rate if rate > 0 else None

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """The dashboard as plain text (one frame)."""
        eta = self.eta_seconds()
        eta_text = "?" if eta is None else ("done" if self.finished
                                            else f"{eta:.0f}s")
        lines = [
            f"repro top — run {self.run_id or '?'}"
            f" · {self.done}/{self.tasks} tasks"
            f" · {self.throughput():.2f} tasks/s · eta {eta_text}"
        ]
        if self.workers:
            cells = []
            for slot in sorted(self.workers):
                worker = self.workers[slot]
                state = worker["state"]
                label = f"{slot}:{state}"
                if state == "busy" and worker["key"]:
                    label += f" {worker['key']}"
                cells.append(label)
            lines.append("workers  " + " | ".join(cells))
        queued = {s: d for s, d in sorted(self.queue_depth.items()) if d}
        queue_cells = [f"{shard} {depth}" for shard, depth in queued.items()]
        queue_cells.append(f"backlog {self.backlog}")
        lines.append("queues   " + " | ".join(queue_cells))
        counts = self.counts
        lines.append(
            "events   "
            f"steals {counts['stolen']} | hedges {counts['hedged']}"
            f" | retries {counts['retried']} | kills {counts['killed']}"
            f" | stale {counts['beat-stale']}"
            f" | quarantined {counts['quarantined']}"
            f" | dup {counts['duplicate']} | shelved {counts['shelved']}"
            f" | serial {counts['serial']}"
            f" | fenced {counts['domain-fenced']}")
        if self.finished:
            lines.append("sweep complete")
        return "\n".join(lines)

    def prometheus_text(self) -> str:
        """The model as Prometheus exposition-format text."""
        lines = [
            "# HELP repro_sweep_tasks_total Tasks in the sweep.",
            "# TYPE repro_sweep_tasks_total gauge",
            f"repro_sweep_tasks_total {self.tasks}",
            "# HELP repro_sweep_done_total Tasks completed or quarantined.",
            "# TYPE repro_sweep_done_total gauge",
            f"repro_sweep_done_total {self.done}",
            "# HELP repro_sweep_backlog Tasks waiting for admission.",
            "# TYPE repro_sweep_backlog gauge",
            f"repro_sweep_backlog {self.backlog}",
            "# HELP repro_sweep_throughput_tasks_per_second "
            "Completed tasks per observed second.",
            "# TYPE repro_sweep_throughput_tasks_per_second gauge",
            f"repro_sweep_throughput_tasks_per_second "
            f"{self.throughput():.6f}",
            "# HELP repro_sweep_events_total Bus events seen, by kind.",
            "# TYPE repro_sweep_events_total counter",
        ]
        for kind in COUNTED_KINDS:
            lines.append(f'repro_sweep_events_total{{kind="{kind}"}} '
                         f"{self.counts[kind]}")
        lines.append("# HELP repro_sweep_workers Worker slots by state.")
        lines.append("# TYPE repro_sweep_workers gauge")
        for state in ("idle", "busy", "dead"):
            n = sum(1 for w in self.workers.values()
                    if w["state"] == state)
            lines.append(f'repro_sweep_workers{{state="{state}"}} {n}')
        lines.append("# HELP repro_sweep_queue_depth Queued tasks per "
                     "shard.")
        lines.append("# TYPE repro_sweep_queue_depth gauge")
        for shard, depth in sorted(self.queue_depth.items()):
            lines.append(f'repro_sweep_queue_depth{{shard="{shard}"}} '
                         f"{depth}")
        return "\n".join(lines) + "\n"


def write_snapshot(model: TopModel, path: str | os.PathLike) -> Path:
    """Atomically (tmp + rename) write ``metrics.prom`` so a scraper
    never reads a half-written exposition."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(model.prometheus_text())
    os.replace(tmp, path)
    return path


def top_interval() -> float:
    """Seconds between refreshes (``REPRO_TOP_INTERVAL``, default 1)."""
    return max(env.floating(TOP_INTERVAL_ENV_VAR, 1.0), 0.05)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro top [--bus PATH] [--run-id ID] [--once] ...``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro top",
        description="live dashboard over a sweep's event bus")
    parser.add_argument("--bus", default=None,
                        help="bus stream to watch (default: the "
                             "configured REPRO_OBS_BUS / obs-dir bus)")
    parser.add_argument("--run-id", default=None,
                        help="only fold events from this sweep run")
    parser.add_argument("--metrics", default=None,
                        help="metrics.prom snapshot path (default: "
                             "<obs-dir>/metrics.prom)")
    parser.add_argument("--interval", type=float, default=None,
                        help="refresh seconds (default: "
                             "REPRO_TOP_INTERVAL or 1)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    parser.add_argument("--timeout", type=float, default=None,
                        help="stop after this many seconds")
    args = parser.parse_args(argv)

    bus_path = Path(args.bus) if args.bus \
        else (obs_bus.bus_path() or core.out_dir() / obs_bus.BUS_FILENAME)
    metrics_path = Path(args.metrics) if args.metrics \
        else core.out_dir() / METRICS_FILENAME
    interval = args.interval if args.interval is not None else top_interval()
    deadline = (time.monotonic() + args.timeout
                if args.timeout is not None else None)

    while True:
        model = TopModel.fold(
            obs_bus.read_events(bus_path, run_id=args.run_id))
        write_snapshot(model, metrics_path)
        frame = model.render()
        if args.once:
            print(frame)
            return 0
        # Clear + home, then the frame: a flicker-free enough refresh
        # without a curses dependency.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        if model.finished:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        try:
            time.sleep(max(interval, 0.05))
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
