"""Observability for the DVM simulator: metrics, tracing, telemetry.

Layers (bottom up):

* :mod:`repro.obs.core` — lock-free counters / power-of-two histograms /
  the process-wide :data:`~repro.obs.core.REGISTRY`, zero-overhead when
  disabled (``REPRO_OBS`` unset);
* :mod:`repro.obs.trace` — hierarchical spans (sweep → pair → attempt →
  phase) exported as Chrome-trace/Perfetto JSON and NDJSON;
* :mod:`repro.obs.record` — derived per-run instrumentation (walk
  depth, AVC hit rate, fault latency) computed *after* each trace run so
  the timing loops stay untouched;
* :mod:`repro.obs.progress` — live heartbeat lines during sweeps;
* :mod:`repro.obs.log` — structured degradation diagnostics
  (``log.ndjson``), superseding ad-hoc ``REPRO_DEBUG`` prints;
* :mod:`repro.obs.report` — the ``python -m repro obs <dir>`` CLI that
  renders histograms and span summaries from flushed artifacts.

See ``docs/observability.md`` for the user-facing story.
"""

from __future__ import annotations

import json

from repro.obs import core, log, progress, record, trace  # noqa: F401
from repro.obs.core import (REGISTRY, configure, counter, enabled,  # noqa: F401
                            histogram, out_dir, refresh_from_env)
from repro.obs.log import debug  # noqa: F401
from repro.obs.trace import COLLECTOR, instant, span  # noqa: F401


def reset() -> None:
    """Clear all collected observations (worker entry, test isolation)."""
    core.REGISTRY.reset()
    trace.COLLECTOR.reset()


def snapshot() -> dict:
    """Non-destructive view of the registry plus pending trace events."""
    return {"registry": core.REGISTRY.to_dict(),
            "events": list(trace.COLLECTOR.events)}


def flush(tag: str = "run", run_id: str = "") -> dict | None:
    """Write (and drain) all collected observations to the obs directory.

    Produces three artifacts per flush under ``REPRO_OBS_DIR``:
    ``metrics-<tag>-<seq>.json`` (the registry snapshot),
    ``trace-<tag>-<seq>.json`` (Perfetto-loadable Chrome trace) and
    ``trace-<tag>-<seq>.ndjson`` (the same events line-delimited).
    Returns ``{"metrics": path, "trace": path, "ndjson": path}`` or
    ``None`` when observability is disabled.  The registry and collector
    are drained, so consecutive flushes (e.g. ``python -m repro all``)
    partition their observations instead of double counting.
    """
    if not core.ENABLED:
        return None
    directory = core.ensure_out_dir()
    stem = f"{tag}-{core.next_flush_seq():03d}"
    registry_payload = core.REGISTRY.to_dict()
    core.REGISTRY.reset()
    events = trace.COLLECTOR.drain()
    metrics_path = directory / f"metrics-{stem}.json"
    metrics_path.write_text(
        json.dumps({"tag": tag, "run_id": run_id, **registry_payload},
                   indent=1, sort_keys=True) + "\n")
    trace_path = directory / f"trace-{stem}.json"
    trace.write_chrome(trace_path, events, run_id=run_id)
    ndjson_path = directory / f"trace-{stem}.ndjson"
    trace.write_ndjson(ndjson_path, events)
    return {"metrics": metrics_path, "trace": trace_path,
            "ndjson": ndjson_path}
