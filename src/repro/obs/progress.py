"""Live sweep telemetry: heartbeat lines and worker liveness pulses.

A multi-minute Figure 8 sweep is silent between figures; with
``REPRO_OBS=1`` the runner emits one heartbeat line per completed pair
(rate-limited by ``REPRO_OBS_HEARTBEAT`` seconds)::

    [obs] sweep 7/15 pairs | cache 42h/7m | retries 1 | faults 0 | eta 93s

Lines go to stderr (never stdout: the figure tables are golden output)
and are appended to ``heartbeat.log`` in the observability directory, so
a sweep's liveness is inspectable after the fact.  The final update
(done == total) is always emitted regardless of the rate limit.

:class:`Pulse` is the *machine-facing* half of the same idea: a sweep
worker process beats a monotonic timestamp into a shared slot array from
a daemon thread, and the parent-side supervisor
(:mod:`repro.sweep.scheduler`) declares the worker hung when its slot
goes stale — detecting a wedged worker within a couple of heartbeat
intervals instead of waiting out the full per-pair wall-clock budget.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from repro.common import env
from repro.common.errors import ConfigError
from repro.obs import core

#: Minimum seconds between heartbeat lines (float; 0 = every update).
HEARTBEAT_ENV_VAR = "REPRO_OBS_HEARTBEAT"

#: Rotate ``heartbeat.log`` once it exceeds this many bytes.
HEARTBEAT_MAX_BYTES_ENV_VAR = "REPRO_OBS_HEARTBEAT_MAX_BYTES"

#: Default rotation cap: one long sweep's worth of lines, bounded.
DEFAULT_HEARTBEAT_MAX_BYTES = 1 << 20


def heartbeat_interval() -> float:
    """The configured minimum interval between heartbeat lines.

    Raises :class:`~repro.common.errors.ConfigError` on a malformed
    value — library code never exits the process; the CLI boundary
    (``repro.__main__``) turns it into a usage message and exit code.
    """
    raw = env.raw(HEARTBEAT_ENV_VAR, "") or ""
    try:
        return max(0.0, float(raw)) if raw else 0.0
    except ValueError:
        raise ConfigError(f"{HEARTBEAT_ENV_VAR} must be a number, "
                          f"got {raw!r}") from None


def heartbeat_max_bytes() -> int:
    """The ``heartbeat.log`` rotation threshold in bytes (min 4 KiB)."""
    return max(env.integer(HEARTBEAT_MAX_BYTES_ENV_VAR,
                           DEFAULT_HEARTBEAT_MAX_BYTES), 4096)


class Heartbeat:
    """Periodic progress reporter for one sweep."""

    def __init__(self, total: int, label: str = "sweep", *,
                 stream=None, clock=time.monotonic,
                 interval: float | None = None, log_dir=None):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.interval = (heartbeat_interval() if interval is None
                         else interval)
        self.log_dir = log_dir
        self.start = clock()
        self._last_emit: float | None = None

    def update(self, done: int, *, cache_hits: int = 0,
               cache_misses: int = 0, retries: int = 0,
               faults: int = 0, queue_depth: int | None = None,
               steals: int | None = None,
               hedges: int | None = None) -> str | None:
        """Emit one heartbeat line; returns it, or None when throttled.

        ``queue_depth`` / ``steals`` / ``hedges`` come from the sweep
        scheduler's live counters; serial runs (no scheduler) omit them
        and the line keeps its classic shape.
        """
        now = self.clock()
        final = done >= self.total
        if (not final and self._last_emit is not None
                and now - self._last_emit < self.interval):
            return None
        self._last_emit = now
        elapsed = now - self.start
        if 0 < done < self.total and elapsed > 0:
            eta = f"{elapsed / done * (self.total - done):.0f}s"
        else:
            eta = "done" if final else "?"
        sched = ""
        if queue_depth is not None or steals is not None \
                or hedges is not None:
            sched = (f" | q {queue_depth or 0} | steals {steals or 0}"
                     f" | hedges {hedges or 0}")
        line = (f"[obs] {self.label} {done}/{self.total} pairs"
                f" | cache {cache_hits}h/{cache_misses}m"
                f" | retries {retries} | faults {faults}{sched}"
                f" | elapsed {elapsed:.0f}s | eta {eta}")
        try:
            print(line, file=self.stream, flush=True)
        except (OSError, ValueError):
            # Broken pipe / closed stream mid-sweep: the heartbeat is
            # cosmetic; a dead stderr must not kill the worker.
            pass
        self._log(line)
        return line

    def _log(self, line: str) -> None:
        directory = self.log_dir
        if directory is None:
            if not core.ENABLED:
                return
        try:
            if directory is None:
                directory = core.ensure_out_dir()     # mkdir may fail
            path = os.path.join(str(directory), "heartbeat.log")
            self._rotate(path)
            with open(path, "a") as fh:
                fh.write(line + "\n")
        except (OSError, ValueError):
            pass        # telemetry must never take a sweep down

    @staticmethod
    def _rotate(path: str) -> None:
        """Size-capped rotation: keep one previous generation.

        ``heartbeat.log`` used to grow unbounded across long sweeps; now
        a log past ``REPRO_OBS_HEARTBEAT_MAX_BYTES`` is renamed to
        ``heartbeat.log.1`` (clobbering the one before it) so the pair
        is bounded at twice the cap.
        """
        try:
            if os.path.getsize(path) < heartbeat_max_bytes():
                return
        except OSError:
            return      # missing file: nothing to rotate
        os.replace(path, path + ".1")


class Pulse:
    """A worker-side liveness beacon beating into a shared slot.

    ``slots`` is any indexable of doubles shared with the supervisor
    (``multiprocessing.Array('d', n)``); the pulse writes
    ``clock()`` into ``slots[index]`` from a daemon thread every
    ``interval / 2`` seconds, so a healthy worker's slot is never more
    than one full interval stale.  On Linux ``time.monotonic`` is
    system-wide (CLOCK_MONOTONIC), so the supervisor can compare the
    slot against its own clock directly.

    :meth:`suppress` silences the beacon without stopping the thread —
    chaos injections use it to model a frozen worker (``worker_hang``)
    or a worker whose telemetry died while its work continues
    (``heartbeat_loss``).  Writing a plain float into a shared slot is
    atomic enough for liveness (a torn read is still a recent
    timestamp), so no lock is taken on the hot path.
    """

    def __init__(self, slots, index: int, interval: float, *,
                 clock=time.monotonic):
        self.slots = slots
        self.index = index
        self.interval = max(interval, 1e-3)
        self.clock = clock
        self._suppressed = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self) -> None:
        """Record one liveness beat (a no-op while suppressed)."""
        if not self._suppressed:
            self.slots[self.index] = self.clock()

    def suppress(self) -> None:
        """Go silent — the supervisor will see this worker as hung."""
        self._suppressed = True

    def resume(self) -> None:
        """Beat again after :meth:`suppress`."""
        self._suppressed = False
        self.beat()

    def start(self) -> "Pulse":
        """Start the daemon beat thread (idempotent)."""
        if self._thread is None:
            self.beat()
            self._thread = threading.Thread(
                target=self._run, name="sweep-pulse", daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval / 2.0):
            self.beat()

    def stop(self) -> None:
        """Stop the beat thread (the final beat stays in the slot)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval)
            self._thread = None
