"""Live sweep telemetry: heartbeat lines from the experiment runner.

A multi-minute Figure 8 sweep is silent between figures; with
``REPRO_OBS=1`` the runner emits one heartbeat line per completed pair
(rate-limited by ``REPRO_OBS_HEARTBEAT`` seconds)::

    [obs] sweep 7/15 pairs | cache 42h/7m | retries 1 | faults 0 | eta 93s

Lines go to stderr (never stdout: the figure tables are golden output)
and are appended to ``heartbeat.log`` in the observability directory, so
a sweep's liveness is inspectable after the fact.  The final update
(done == total) is always emitted regardless of the rate limit.
"""

from __future__ import annotations

import os
import sys
import time

from repro.common import env
from repro.obs import core

#: Minimum seconds between heartbeat lines (float; 0 = every update).
HEARTBEAT_ENV_VAR = "REPRO_OBS_HEARTBEAT"


def heartbeat_interval() -> float:
    """The configured minimum interval between heartbeat lines."""
    raw = env.raw(HEARTBEAT_ENV_VAR, "") or ""
    try:
        return max(0.0, float(raw)) if raw else 0.0
    except ValueError:
        raise SystemExit(f"{HEARTBEAT_ENV_VAR} must be a number, "
                         f"got {raw!r}") from None


class Heartbeat:
    """Periodic progress reporter for one sweep."""

    def __init__(self, total: int, label: str = "sweep", *,
                 stream=None, clock=time.monotonic,
                 interval: float | None = None, log_dir=None):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.interval = (heartbeat_interval() if interval is None
                         else interval)
        self.log_dir = log_dir
        self.start = clock()
        self._last_emit: float | None = None

    def update(self, done: int, *, cache_hits: int = 0,
               cache_misses: int = 0, retries: int = 0,
               faults: int = 0) -> str | None:
        """Emit one heartbeat line; returns it, or None when throttled."""
        now = self.clock()
        final = done >= self.total
        if (not final and self._last_emit is not None
                and now - self._last_emit < self.interval):
            return None
        self._last_emit = now
        elapsed = now - self.start
        if 0 < done < self.total and elapsed > 0:
            eta = f"{elapsed / done * (self.total - done):.0f}s"
        else:
            eta = "done" if final else "?"
        line = (f"[obs] {self.label} {done}/{self.total} pairs"
                f" | cache {cache_hits}h/{cache_misses}m"
                f" | retries {retries} | faults {faults}"
                f" | elapsed {elapsed:.0f}s | eta {eta}")
        print(line, file=self.stream, flush=True)
        self._log(line)
        return line

    def _log(self, line: str) -> None:
        directory = self.log_dir
        if directory is None:
            if not core.ENABLED:
                return
            directory = core.ensure_out_dir()
        try:
            with open(os.path.join(str(directory), "heartbeat.log"),
                      "a") as fh:
                fh.write(line + "\n")
        except OSError:
            pass        # telemetry must never take a sweep down
