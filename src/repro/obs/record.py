"""Derived per-run instrumentation: the bridge from simulator state to obs.

The hard constraint on the observability subsystem is that the timing
engines stay untouched: no per-access hook may run inside the IOMMU
loops or the vectorized fast path.  Everything the paper's Section 6
distributions need is instead *derived here, once per trace run*, from
state the engines already maintain:

* **walk-depth distribution** — the walker memo maps each walked page to
  its :class:`~repro.hw.walker.WalkInfo`, whose block list length (plus
  the fixed L1 fetches) is exactly the pointer-chase depth the timing
  loops charged.  One pass over the memo after the run yields the
  distribution over distinct walked pages.
* **AVC / PWC behaviour** — ``TimingStats`` carries the exact SRAM
  lookup and memory-fetch totals per trace; the AVC hit rate for DAV
  configurations is ``1 - walk_mem / walk_sram`` (op-for-op what the
  scalar loop's cache accounting computes).
* **fault-service latency** — each recoverable fault's PRI stall cycles
  are observed at the delivery site (:mod:`repro.hw.fault_queue`), a
  path that is cold by design.

Because recording is read-only over already-final state, enabling
observability cannot change a single simulated cycle — the equivalence
suite (``tests/obs/test_obs_equivalence.py``) pins metrics bit-identical
with the subsystem on and off.
"""

from __future__ import annotations

from repro.obs import core, trace

#: DAV mechanisms, whose walk cache is the paper's AVC.
_DAV_MECHS = ("dvm_pe", "dvm_pe_plus")


def record_trace_run(iommu, stats) -> None:
    """Fold one completed trace run's statistics into the registry.

    Called by :class:`~repro.hw.iommu.IOMMU` after either engine
    finishes a trace (no-op unless observability is enabled).  ``stats``
    is the run's final :class:`~repro.hw.iommu.TimingStats`.
    """
    if not core.ENABLED:
        return
    reg = core.REGISTRY
    config = iommu.config.name
    mech = iommu.config.mech
    reg.counter("iommu.accesses", config=config).inc(stats.accesses)
    reg.counter("iommu.walks", config=config).inc(stats.walks)
    reg.counter("iommu.mem_stall_cycles",
                config=config).inc(stats.mem_stall_cycles)
    reg.counter("iommu.sram_stall_cycles",
                config=config).inc(stats.sram_stall_cycles)
    if stats.tlb_lookups:
        reg.counter("tlb.lookups", config=config).inc(stats.tlb_lookups)
        reg.counter("tlb.misses", config=config).inc(stats.tlb_misses)
    if stats.bitmap_lookups:
        reg.counter("bitmap.lookups", config=config).inc(stats.bitmap_lookups)
        reg.counter("bitmap.mem_fetches",
                    config=config).inc(stats.bitmap_mem_accesses)
    if stats.squashed_preloads:
        reg.counter("dav.squashed_preloads",
                    config=config).inc(stats.squashed_preloads)
    if stats.faults:
        reg.counter("fault.serviced", config=config).inc(stats.faults)
        reg.counter("fault.stall_cycles",
                    config=config).inc(stats.fault_stall_cycles)
    # AVC (DAV configs): exact per-run hit accounting, plus a histogram
    # of per-run miss rates in permille (power-of-two bins give log-scale
    # resolution where miss rates actually live).
    if mech in _DAV_MECHS and stats.walk_sram_accesses:
        hits = stats.walk_sram_accesses - stats.walk_mem_accesses
        reg.counter("avc.hits", config=config).inc(hits)
        reg.counter("avc.misses", config=config).inc(stats.walk_mem_accesses)
        permille = round(1000 * stats.walk_mem_accesses
                         / stats.walk_sram_accesses)
        reg.histogram("avc.miss_permille", config=config).observe(permille)
    elif stats.walk_sram_accesses:
        reg.counter("pwc.sram_lookups",
                    config=config).inc(stats.walk_sram_accesses)
        reg.counter("pwc.mem_fetches",
                    config=config).inc(stats.walk_mem_accesses)
    # Walk-depth distribution over distinct walked pages, read from the
    # walker memo the run just populated.
    walker = getattr(iommu, "walker", None)
    if walker is not None and walker._memo:
        depth_hist = reg.histogram("walk.depth", config=config)
        for info in walker._memo.values():
            # PWC-eligible levels + fixed L1 fetches = pointer-chase depth.
            depth_hist.observe(len(info[4]) + info[5])


def record_system_run(system, metrics) -> None:
    """Fold one :meth:`HeterogeneousSystem.run`'s machine-level state in.

    Records DRAM traffic (as a delta since the last recording on this
    system, so reused systems never double count), the layout's identity
    fraction and the page-table footprint.
    """
    if not core.ENABLED:
        return
    reg = core.REGISTRY
    config = system.config.name
    snap = system.dram.stats.to_dict()
    mark = getattr(system, "_obs_dram_mark", {})
    for key, value in snap.items():
        reg.counter(f"dram.{key}", config=config).inc(
            value - mark.get(key, 0))
    system._obs_dram_mark = snap
    reg.histogram("layout.identity_permille", config=config).observe(
        round(1000 * metrics.identity_fraction))
    reg.histogram("kernel.page_table_bytes", config=config).observe(
        metrics.page_table_bytes)


def record_fault_service(config: str, kind: str, stall_cycles: int,
                         va: int, access: str) -> None:
    """Observe one serviced recoverable guest fault (cold path).

    Called from :meth:`repro.hw.fault_queue.FaultPath.deliver` — the
    fault-service latency histogram is the paper's "microseconds to
    milliseconds" cost, measured per fault.
    """
    if not core.ENABLED:
        return
    reg = core.REGISTRY
    reg.counter("fault.kind", kind=kind, config=config).inc()
    reg.histogram("fault.latency_cycles", config=config).observe(stall_cycles)
    trace.instant("fault-service", cat="fault",
                  config=config, kind=kind, access=access,
                  page=va >> 12, stall_cycles=stall_cycles)


def record_fastpath(mech: str, accepted: bool, reason: str | None = None,
                    segments: int = 0) -> None:
    """Count a fast-engine batch acceptance or scalar fallback.

    Accepted batches also count their replayed segments (1 for a
    fault-free trace, more when fault-bounded segment replay stitched
    the trace); refusals attribute the fallback to the engine's refusal
    ``reason`` so ``python -m repro obs`` shows *why* traces left the
    fast path.
    """
    if not core.ENABLED:
        return
    reg = core.REGISTRY
    name = "fastpath.accepted" if accepted else "fastpath.fallbacks"
    reg.counter(name, mech=mech).inc()
    if accepted:
        if segments:
            reg.counter("fastpath.segments", mech=mech).inc(segments)
    elif reason is not None:
        reg.counter(f"fastpath.refused.{reason}", mech=mech).inc()
