"""Instrumentation primitives: counters, histograms, span timers.

This is the bottom layer of the observability subsystem
(``docs/observability.md``).  Everything here is designed around one hard
constraint: **instrumentation must be counter-only on the simulation
path**.  Enabling observability may never change a simulated cycle — all
recording is read-only over state the simulator already computed — and
with observability disabled the hot loops execute *zero* additional
per-access work: call sites guard on the module-level :data:`ENABLED`
boolean (one attribute load), and the per-access loops in
:mod:`repro.hw.iommu` are not instrumented at all.  Distributions over
per-access behaviour (walk depth, AVC hit rate) are *derived* after each
trace run from aggregates and memo tables the engines already maintain
(:mod:`repro.obs.record`), never sampled per access.

The primitives are lock-free: counter increments and histogram bin
updates are single bytecode-level ``int`` operations, atomic under the
GIL, and every pool worker owns a private registry that the parent merges
after the worker's pair completes (:func:`Registry.merge`), so no
cross-process synchronization exists either.

Histograms use fixed power-of-two bins: bin ``i`` counts observations
``v`` with ``v.bit_length() == i``, i.e. bin 0 holds ``v <= 0``, bin 1
holds ``v == 1``, bin 2 holds ``2 <= v < 4``, bin ``i`` holds
``[2**(i-1), 2**i)``.  Binning is therefore a pure function of the value
— no quantile sketch state — which keeps observation O(1), merging a
vector add, and the exported form stable across runs.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

from repro.common import env

#: Master switch: set ``REPRO_OBS=1`` to enable the subsystem.
OBS_ENV_VAR = "REPRO_OBS"

#: Output directory for traces / metric snapshots / structured logs.
OBS_DIR_ENV_VAR = "REPRO_OBS_DIR"

#: Default output directory (cwd-relative) when enabled without a dir.
DEFAULT_OBS_DIR = "repro-obs"

#: Number of histogram bins: covers values up to ``2**63``.
NUM_BINS = 64


#: Truthiness parse for the obs switches (now the repo-wide one).
_env_truthy = env.truthy_str

#: The hot-path guard.  Call sites read this attribute directly
#: (``if core.ENABLED:``) so the disabled cost is one load + branch.
ENABLED: bool = env.truthy(OBS_ENV_VAR)

_out_dir_override: str | None = None
_flush_seq = itertools.count(1)


def enabled() -> bool:
    """Whether observability is currently on."""
    return ENABLED


def configure(enabled: bool | None = None,
              out_dir: str | os.PathLike | None = None) -> None:
    """Programmatic override of the environment wiring (tests, embedders).

    ``configure(enabled=True)`` flips the subsystem on for this process
    only; pool workers read the environment at entry, so sweeps that
    should observe their workers must set ``REPRO_OBS`` instead.
    """
    global ENABLED, _out_dir_override
    if enabled is not None:
        ENABLED = bool(enabled)
    if out_dir is not None:
        _out_dir_override = str(out_dir)


def refresh_from_env() -> None:
    """Re-read ``REPRO_OBS``/``REPRO_OBS_DIR`` (worker entry, tests)."""
    global ENABLED, _out_dir_override
    ENABLED = env.truthy(OBS_ENV_VAR)
    _out_dir_override = None


def out_dir() -> Path:
    """The observability output directory (not created here)."""
    if _out_dir_override is not None:
        return Path(_out_dir_override)
    return Path(env.raw(OBS_DIR_ENV_VAR) or DEFAULT_OBS_DIR)


def ensure_out_dir() -> Path:
    """The output directory, created on first use."""
    directory = out_dir()
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def next_flush_seq() -> int:
    """Monotonic sequence number for flushed artifact file names."""
    return next(_flush_seq)


def label(name: str, **labels) -> str:
    """A registry key ``name|k=v|...`` with sorted label order."""
    if not labels:
        return name
    suffix = "|".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}|{suffix}"


class Counter:
    """A monotonically increasing integer (GIL-atomic increments)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Fixed power-of-two-binned histogram of non-negative integers.

    Bin ``i`` counts values whose ``bit_length()`` is ``i``: bin 0 is
    ``v <= 0``, bin ``i >= 1`` is ``[2**(i-1), 2**i)``.  Also tracks
    count/total/min/max exactly, so means survive the binning.
    """

    __slots__ = ("bins", "count", "total", "min", "max")

    def __init__(self):
        self.bins = [0] * NUM_BINS
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int, n: int = 1) -> None:
        value = int(value)
        self.bins[value.bit_length() if value > 0 else 0] += n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the power-of-two bins.

        Returns the upper bound of the bin containing the ``q``-th
        ranked observation, clamped to the exact ``min``/``max`` — so
        p0/p100 are exact and interior quantiles are right to within a
        factor of two, which is what a latency *order of magnitude*
        report needs.
        """
        if not self.count:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * self.count
        cumulative = 0
        value = float(self.max or 0)
        for i, n in enumerate(self.bins):
            cumulative += n
            if n and cumulative >= rank:
                value = float(1 if i == 0 else (1 << i) - 1)
                break
        if self.max is not None:
            value = min(value, float(self.max))
        if self.min is not None:
            value = max(value, float(self.min))
        return value

    def nonzero_bins(self) -> list[tuple[int, int, int]]:
        """``(lo, hi, count)`` for each populated bin (hi exclusive)."""
        out = []
        for i, n in enumerate(self.bins):
            if n:
                lo = 0 if i == 0 else 1 << (i - 1)
                hi = 1 if i == 0 else 1 << i
                out.append((lo, hi, n))
        return out

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.bins):
            self.bins[i] += n
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    def to_dict(self) -> dict:
        """JSON form; bins are sparse ``{bin_index: count}``."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bins": {str(i): n for i, n in enumerate(self.bins) if n},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls()
        hist.count = int(payload.get("count", 0))
        hist.total = int(payload.get("total", 0))
        hist.min = payload.get("min")
        hist.max = payload.get("max")
        for i, n in (payload.get("bins") or {}).items():
            hist.bins[int(i)] = int(n)
        return hist


class _NullCounter:
    """Observation sink when the subsystem is disabled."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: int, n: int = 1) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_HISTOGRAM = _NullHistogram()


class Registry:
    """Named counters and histograms for one process.

    Lookup creates on first use.  ``to_dict``/``merge`` round-trip the
    whole registry, which is how pool workers ship their observations
    back to the parent (``sim/runner.py``).
    """

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = label(name, **labels)
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = Counter()
        return counter

    def histogram(self, name: str, **labels) -> Histogram:
        key = label(name, **labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        return hist

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()

    def to_dict(self) -> dict:
        """Deterministic (sorted-key) JSON form of every instrument."""
        return {
            "counters": {k: self.counters[k].value
                         for k in sorted(self.counters)},
            "histograms": {k: self.histograms[k].to_dict()
                           for k in sorted(self.histograms)},
        }

    def merge(self, payload: dict) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. a worker's) into this."""
        for key, value in (payload.get("counters") or {}).items():
            self.counter(key).inc(int(value))
        for key, hist in (payload.get("histograms") or {}).items():
            self.histogram(key).merge(Histogram.from_dict(hist))


#: The process-wide registry every subsystem reports into.
REGISTRY = Registry()


def counter(name: str, **labels) -> Counter | _NullCounter:
    """The named counter, or a no-op sink when disabled."""
    if not ENABLED:
        return NULL_COUNTER
    return REGISTRY.counter(name, **labels)


def histogram(name: str, **labels) -> Histogram | _NullHistogram:
    """The named histogram, or a no-op sink when disabled."""
    if not ENABLED:
        return NULL_HISTOGRAM
    return REGISTRY.histogram(name, **labels)
