"""The sweep event bus: a crash-consistent append-only NDJSON stream.

The scheduler (:mod:`repro.sweep.scheduler`) narrates every task/worker
lifecycle transition — admitted, started, stolen, hedged, retried,
completed, quarantined, beat-stale, killed, domain-fenced — into one
append-only file so consumers (``python -m repro top``, the
:class:`~repro.sweep.stream.SweepWatch` partial-results API, post-mortem
tooling) can observe a sweep *while it runs* instead of waiting for the
final :class:`~repro.sim.resilience.ResilienceReport`.

The discipline is the journal's (:mod:`repro.sweep.journal`), minus
fsync-per-record — the bus is telemetry, never the source of truth:

* **Self-validating records.**  One JSON object per line carrying a
  monotonic ``seq``, the sweep's ``run_id``, an event ``kind``, a wall
  timestamp ``t``, and a ``sha`` over the record's canonical form, so a
  reader can reject any torn or corrupt line without trusting context::

      {"kind":"started","key":"bfs/FR","run_id":"ab12","seq":7,
       "slot":2,"t":1754700000.1,"sha":"..."}

* **Torn-tail tolerance, both sides.**  A writer that crashes mid-append
  leaves a partial trailing line; the next writer *truncates* back to
  the last newline-terminated record before appending (so the file never
  accumulates garbage), and readers judge only newline-terminated lines
  — an unterminated tail is "still being written", never yielded.

* **Zero overhead when disabled.**  :func:`sweep_bus` returns the
  module-level :data:`NULL_BUS` unless observability is enabled
  (``REPRO_OBS=1``) and the bus is not vetoed (``REPRO_OBS_BUS=0``);
  emitting into the null bus is one no-op method call, and the
  per-access simulation hot path never touches the bus at all —
  transitions happen per *task*, not per memory access.

The writer buffers through normal file I/O and flushes per record (one
``write`` syscall per event); it deliberately does **not** fsync — a
lost tail after a power cut costs telemetry, not results, and the
journal still holds every completed task durably.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.common import env
from repro.obs import core

#: Bus record format version carried by every record.
BUS_SCHEMA = 1

#: ``0``/``false`` disables the bus even with observability on; any
#: other non-empty value overrides the stream's path.
BUS_ENV_VAR = "REPRO_OBS_BUS"

#: Default stream file name inside the observability directory.
BUS_FILENAME = "bus.ndjson"


def _digest(record: dict) -> str:
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def seal(record: dict) -> bytes:
    """One canonical, self-validating bus line (newline-terminated)."""
    record = dict(record)
    record["sha"] = _digest(record)
    return (json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def open_record(line: bytes) -> dict | None:
    """Parse and validate one bus line; ``None`` when torn or corrupt."""
    try:
        record = json.loads(line.decode())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    sha = record.pop("sha", None)
    if sha != _digest(record):
        return None
    return record


def good_prefix_size(raw: bytes) -> int:
    """Byte length of the newline-terminated valid prefix of ``raw``.

    Everything past the first torn or corrupt line is untrustworthy —
    the same first-bad-byte rule the journal applies.
    """
    good = 0
    for line in raw.split(b"\n")[:-1]:       # only terminated lines
        if line and open_record(line) is None:
            break
        good += len(line) + 1
    return good


class EventBus:
    """Append-only writer for one sweep's event stream.

    ``seq`` is monotonic per writer; ``run_id`` ties records to their
    sweep so several runs may share one stream file.  Opening the bus
    truncates a torn tail left by a crashed predecessor.  Emission never
    raises on I/O trouble — telemetry must not take a sweep down — but
    flips the bus into a dead no-op state after the first failure.
    """

    def __init__(self, path: str | os.PathLike, run_id: str = "",
                 *, clock=time.time):
        self.path = Path(path)
        self.run_id = run_id
        self.seq = 0
        self.clock = clock
        self._handle = None
        self._dead = False

    def _open(self):
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            raw = self.path.read_bytes()
            good = good_prefix_size(raw)
            if good < len(raw):
                with open(self.path, "r+b") as handle:
                    handle.truncate(good)
        self._handle = open(self.path, "ab")
        return self._handle

    def emit(self, kind: str, **fields) -> dict | None:
        """Append one event; returns the sealed record (sans sha) or
        ``None`` once the bus is dead."""
        if self._dead:
            return None
        record = dict(fields)
        record.update(v=BUS_SCHEMA, kind=kind, run_id=self.run_id,
                      seq=self.seq, t=round(self.clock(), 3))
        try:
            handle = self._handle or self._open()
            handle.write(seal(record))
            handle.flush()
        except (OSError, TypeError, ValueError):
            # ValueError: closed handle; TypeError: a caller passed an
            # unserializable field and json.dumps refused it — drop the
            # event, never the sweep.
            self._dead = True
            self.close()
            return None
        self.seq += 1
        return record

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullBus:
    """Emission sink when the bus is disabled: every call is a no-op."""

    __slots__ = ()
    path = None
    run_id = ""

    def emit(self, kind: str, **fields) -> None:
        return None

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullBus":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_BUS = _NullBus()


def bus_path() -> Path | None:
    """The configured stream path, or ``None`` when the bus is off.

    ``REPRO_OBS_BUS`` falsy (``0``/``false``/...) disables the bus; a
    path-like value overrides the default ``<obs-dir>/bus.ndjson``.
    """
    raw = env.raw(BUS_ENV_VAR)
    if raw is not None and raw.strip() and not env.truthy_str(raw):
        return None
    if raw and raw.strip() not in ("1", "true", "yes", "on"):
        return Path(raw)
    return core.out_dir() / BUS_FILENAME


def sweep_bus(run_id: str = "") -> EventBus | _NullBus:
    """The bus a sweep should emit into: real when observability is on
    and the bus is not vetoed, :data:`NULL_BUS` otherwise."""
    if not core.ENABLED:
        return NULL_BUS
    path = bus_path()
    if path is None:
        return NULL_BUS
    return EventBus(path, run_id)


# -- read side ----------------------------------------------------------------


def read_events(path: str | os.PathLike, *, run_id: str | None = None
                ) -> list[dict]:
    """Every valid record currently in the stream (corrupt lines and an
    unterminated tail are skipped, exactly like the tailer)."""
    return list(tail_events(path, run_id=run_id, follow=False))


def tail_events(path: str | os.PathLike, *, run_id: str | None = None,
                follow: bool = True, poll: float = 0.05,
                stop=None, timeout: float | None = None,
                sleep=time.sleep, clock=time.monotonic):
    """Yield bus records as they are appended; never yields a torn line.

    Only newline-terminated lines are ever parsed — a partial trailing
    record (a writer mid-append, or a crash) is treated as "not written
    yet", so a consumer can never observe half an event.  Terminated
    lines that fail validation are skipped, not fatal.  With ``follow``
    the generator polls until ``stop()`` returns true (checked after
    each drain) or ``timeout`` seconds elapse; ``follow=False`` drains
    the current contents and returns.
    """
    path = Path(path)
    offset = 0
    buffer = b""
    deadline = clock() + timeout if timeout is not None else None
    while True:
        chunk = b""
        if path.exists():
            try:
                with open(path, "rb") as handle:
                    handle.seek(0, os.SEEK_END)
                    size = handle.tell()
                    if size < offset:
                        # Truncated (torn-tail repair by a new writer):
                        # start over rather than yielding spliced bytes.
                        offset = 0
                        buffer = b""
                    handle.seek(offset)
                    chunk = handle.read()
                    offset += len(chunk)
            except OSError:
                chunk = b""
        if chunk:
            buffer += chunk
            *lines, buffer = buffer.split(b"\n")
            for line in lines:
                if not line:
                    continue
                record = open_record(line)
                if record is None:
                    continue
                if run_id is not None and record.get("run_id") != run_id:
                    continue
                yield record
        if not follow or (stop is not None and stop()):
            return
        if deadline is not None and clock() >= deadline:
            return
        sleep(poll)
