"""Structured run/sweep tracing: hierarchical spans, Chrome-trace export.

The runner opens spans around the sweep (``sweep``), each (workload,
dataset) pair (``pair``), each execution attempt (``attempt``) and the
phases inside one — functional trace generation (``trace-gen``) and the
per-configuration timing simulation (``timing``); the recoverable-fault
machinery emits instant events per serviced fault (``fault-service``).
Spans carry the sweep's run-id so a merged multi-process trace stays
attributable.

Collection is per-process: every pool worker owns its process-global
:data:`COLLECTOR`, resets it at worker entry, and ships its drained
events back with the pair result; the parent absorbs them
(:meth:`TraceCollector.absorb`) so the flushed trace covers the whole
sweep.  Timestamps are per-process ``perf_counter`` microseconds since
the collector's epoch — comparable *within* a process, approximate
across processes — and event identity (name, category, args, nesting
depth) is deterministic for a deterministic sweep, which is what the
export-determinism tests pin (timestamps excluded).

Two export formats, both written by :func:`repro.obs.flush`:

* ``trace-*.json`` — Chrome trace / Perfetto ``traceEvents`` JSON
  (complete ``"X"`` events plus process-name metadata), loadable in
  ``ui.perfetto.dev`` or ``chrome://tracing``;
* ``trace-*.ndjson`` — the same events, one JSON object per line, for
  ``jq``-style ad-hoc analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import nullcontext
from pathlib import Path

from repro.obs import core

#: Chrome trace event keys required for a Perfetto-loadable stream.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")

#: Flow-event phases (``s`` start, ``t`` step, ``f`` finish) linking
#: spans across processes; matched by (cat, name, id) in Perfetto.
FLOW_PHASES = ("s", "t", "f")


def flow_id(token: str) -> int:
    """A deterministic flow-event id derived from a content token.

    The scheduler and the worker compute the same id from the same
    dispatch token (``key#a<attempt>``) without any coordination, so the
    parent-side flow start and the worker-side flow finish pair up in
    the merged trace.  Never builtin ``hash()``, which is salted per
    process.
    """
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class _Span:
    """One in-flight span; appends a complete event when it exits."""

    __slots__ = ("collector", "name", "cat", "args", "start")

    def __init__(self, collector: "TraceCollector", name: str, cat: str,
                 args: dict):
        self.collector = collector
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.collector._stack.append(self)
        self.start = self.collector._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        collector = self.collector
        end = collector._clock()
        collector._stack.pop()
        args = dict(self.args)
        args["depth"] = len(collector._stack)
        if exc_type is not None:
            args["error"] = exc_type.__name__
        collector.events.append({
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": round((self.start - collector.epoch) * 1e6, 1),
            "dur": round((end - self.start) * 1e6, 1),
            "pid": collector.pid,
            "tid": 1,
            "args": args,
        })


class TraceCollector:
    """Per-process span collector; see the module docstring."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.reset()

    def reset(self) -> None:
        """Fresh state (worker entry; after a fork)."""
        self.pid = os.getpid()
        self.epoch = self._clock()
        self.events: list[dict] = []
        self._stack: list[_Span] = []

    def span(self, name: str, cat: str = "run", **args) -> _Span:
        """A context manager recording one hierarchical span."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "run", **args) -> None:
        """Record one instant event (e.g. a serviced fault)."""
        args = dict(args)
        args["depth"] = len(self._stack)
        self.events.append({
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": round((self._clock() - self.epoch) * 1e6, 1),
            "pid": self.pid,
            "tid": 1,
            "args": args,
        })

    def complete(self, name: str, cat: str, start: float, end: float,
                 **args) -> None:
        """Record one complete span from explicitly captured timestamps.

        For spans whose endpoints are not lexically nested — the
        scheduler's queue-wait and task-run spans start at one loop
        iteration and end many iterations later — ``start``/``end`` are
        :func:`now` values captured at the transition points.
        """
        args = dict(args)
        args["depth"] = len(self._stack)
        self.events.append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round((start - self.epoch) * 1e6, 1),
            "dur": round(max(end - start, 0.0) * 1e6, 1),
            "pid": self.pid,
            "tid": 1,
            "args": args,
        })

    def flow(self, phase: str, name: str, cat: str, fid: int,
             ts: float | None = None) -> None:
        """Record one flow event (``s``/``t``/``f``) with id ``fid``.

        Perfetto draws an arrow between the slices enclosing a flow
        start and its finish when (cat, name, id) match — this is how
        the scheduler's dispatch span links to the worker's task span
        in the stitched cross-process trace.
        """
        event = {
            "name": name,
            "cat": cat,
            "ph": phase,
            "id": fid,
            "ts": round(((self._clock() if ts is None else ts)
                         - self.epoch) * 1e6, 1),
            "pid": self.pid,
            "tid": 1,
        }
        if phase == "f":
            event["bp"] = "e"       # bind to the enclosing slice
        self.events.append(event)

    def drain(self) -> list[dict]:
        """Take (and clear) the collected events."""
        events, self.events = self.events, []
        return events

    def absorb(self, events: list[dict]) -> None:
        """Fold another process's drained events into this collector."""
        self.events.extend(events)


#: The process-wide collector every span reports into.
COLLECTOR = TraceCollector()

_NULL_SPAN = nullcontext()


def span(name: str, cat: str = "run", **args):
    """A span on the global collector, or a no-op when disabled."""
    if not core.ENABLED:
        return _NULL_SPAN
    return COLLECTOR.span(name, cat, **args)


def instant(name: str, cat: str = "run", **args) -> None:
    """An instant event on the global collector (no-op when disabled)."""
    if core.ENABLED:
        COLLECTOR.instant(name, cat, **args)


def now() -> float:
    """The collector's clock, for :func:`complete` endpoints
    (``0.0`` when disabled, so disabled callers store a constant)."""
    if not core.ENABLED:
        return 0.0
    return COLLECTOR._clock()


def complete(name: str, cat: str, start: float, end: float, **args) -> None:
    """A complete span on the global collector (no-op when disabled)."""
    if core.ENABLED:
        COLLECTOR.complete(name, cat, start, end, **args)


def flow(phase: str, name: str, cat: str, fid: int,
         ts: float | None = None) -> None:
    """A flow event on the global collector (no-op when disabled)."""
    if core.ENABLED:
        COLLECTOR.flow(phase, name, cat, fid, ts)


# -- export -----------------------------------------------------------------


def chrome_trace(events: list[dict], *, run_id: str = "") -> dict:
    """Wrap drained events as a Chrome-trace / Perfetto JSON object."""
    pids = sorted({e["pid"] for e in events})
    main_pid = os.getpid()
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 1, "ts": 0,
         "args": {"name": "main" if pid == main_pid else f"worker-{pid}"}}
        for pid in pids
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "run_id": run_id,
                      "thread": threading.current_thread().name},
    }


def write_chrome(path: Path, events: list[dict], *, run_id: str = "") -> None:
    """Write a Perfetto-loadable trace JSON file."""
    payload = chrome_trace(events, run_id=run_id)
    Path(path).write_text(json.dumps(payload, sort_keys=True) + "\n")


def write_ndjson(path: Path, events: list[dict]) -> None:
    """Write the event stream as newline-delimited JSON."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")


def read_ndjson(path: Path) -> list[dict]:
    """Load an event stream written by :func:`write_ndjson`."""
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def validate_chrome(payload: dict) -> list[str]:
    """Schema-check a Chrome-trace object; returns a list of problems.

    Covers the constraints the Chrome trace-event format documents for
    the JSON ``traceEvents`` form: the container key, per-event required
    keys, known phase codes, and ``dur`` presence on complete events.
    An empty list means the payload is Perfetto-loadable.
    """
    problems = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {i}: missing key {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C") \
                and ph not in FLOW_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph == "X" and "dur" not in event:
            problems.append(f"event {i}: complete event without 'dur'")
        if ph in FLOW_PHASES and "id" not in event:
            problems.append(f"event {i}: flow event without 'id'")
        if not isinstance(event.get("ts", 0), (int, float)):
            problems.append(f"event {i}: non-numeric 'ts'")
    return problems


def comparable(events: list[dict]) -> list[dict]:
    """Events stripped of timing/process identity, for determinism tests.

    Two runs of the same seeded sweep must produce identical streams
    under this projection (same spans, same order, same args, same
    nesting) even though wall-clock timestamps differ.
    """
    stripped = []
    for event in events:
        clean = {k: v for k, v in event.items()
                 if k not in ("ts", "dur", "pid")}
        stripped.append(clean)
    return stripped
