"""The DVM public API: a devirtualized process memory manager.

This facade is the library's front door (see ``examples/quickstart.py``):
it boots a kernel under a chosen MMU configuration, spawns the host
process, and exposes allocation, access validation and the paper's key
statistics without requiring callers to assemble kernel/process/IOMMU
plumbing by hand.

    >>> from repro.core.dvm import DVM
    >>> dvm = DVM()                      # DVM-PE+ by default
    >>> va = dvm.malloc(4 << 20)
    >>> dvm.is_identity(va)
    True
    >>> dvm.validate(va).direct
    True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.perms import Perm
from repro.core.config import HardwareScale, MMUConfig, standard_configs
from repro.core.dav import AccessValidator, DAVResult
from repro.hw.bitmap import PermissionBitmap
from repro.hw.dram import DRAMModel
from repro.hw.iommu import IOMMU, TimingStats
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process


@dataclass
class DVMStats:
    """Headline statistics of a DVM instance."""

    identity_bytes: int
    demand_bytes: int
    identity_allocations: int
    demand_allocations: int
    page_table_bytes: int
    identity_failures: int

    @property
    def identity_fraction(self) -> float:
        """Fraction of mapped bytes that are identity mapped."""
        total = self.identity_bytes + self.demand_bytes
        return self.identity_bytes / total if total else 0.0


class DVM:
    """A devirtualized-memory machine with one host process.

    Parameters
    ----------
    config:
        One of :func:`standard_configs`'s configurations, or the name of
        one (default ``"dvm_pe_plus"``).
    phys_bytes:
        Physical memory size.
    seed:
        Determinism seed (ASLR etc.).
    """

    def __init__(self, config: MMUConfig | str = "dvm_pe_plus", *,
                 phys_bytes: int = 2 << 30, seed: int = 0,
                 scale: HardwareScale | None = None):
        if isinstance(config, str):
            config = standard_configs(scale)[config]
        self.config = config
        self.perm_bitmap = (
            PermissionBitmap(cache_blocks=config.bitmap_cache_blocks)
            if config.mech == "dvm_bm" else None
        )
        factory = None
        if self.perm_bitmap is not None:
            bitmap = self.perm_bitmap
            factory = lambda kernel, process: bitmap  # noqa: E731
        self.kernel = Kernel(phys_bytes=phys_bytes, policy=config.policy,
                             seed=seed, perm_bitmap_factory=factory)
        self.process: Process = self.kernel.spawn(name="dvm-host")
        self.process.setup_segments()
        self.dram = DRAMModel()
        self.iommu = IOMMU(config, self.process.page_table, self.dram,
                           perm_bitmap=self.perm_bitmap)
        self.validator = AccessValidator(self.process.page_table)

    # -- allocation -----------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes on the heap; returns the virtual address."""
        return self.process.malloc.malloc(size)

    def free(self, va: int) -> None:
        """Free a pointer returned by :meth:`malloc`."""
        self.process.malloc.free(va)

    def mmap(self, size: int, perm: Perm = Perm.READ_WRITE):
        """Map an anonymous region (identity mapped when the policy allows)."""
        return self.process.vmm.mmap(size, perm)

    # -- validation ---------------------------------------------------------------

    def is_identity(self, va: int) -> bool:
        """Whether ``va`` is identity mapped (PA == VA)."""
        return self.process.is_identity(va)

    def validate(self, va: int, access: str = "r") -> DAVResult:
        """Functional Devirtualized Access Validation of one access."""
        return self.validator.validate(va, access)

    def run_accelerator_trace(self, addrs, writes) -> TimingStats:
        """Timing-simulate an accelerator access trace through the IOMMU."""
        if self.iommu.walker is not None:
            self.iommu.walker.invalidate()
        return self.iommu.run_trace(addrs, writes)

    # -- statistics --------------------------------------------------------------

    def stats(self) -> DVMStats:
        """Headline allocation/page-table statistics."""
        vmm = self.process.vmm
        return DVMStats(
            identity_bytes=vmm.stats.identity_bytes,
            demand_bytes=vmm.stats.demand_bytes,
            identity_allocations=vmm.stats.identity_allocs,
            demand_allocations=vmm.stats.demand_allocs,
            page_table_bytes=self.process.page_table.table_bytes(),
            identity_failures=vmm.identity_mapper.stats.failures,
        )
