"""The seven MMU configurations evaluated in the paper (Section 6.3).

====================  =========================================================
``4K,TLB+PWC``        conventional VM, 4 KB pages, FA TLB + page-walk cache
``2M,TLB+PWC``        conventional VM, 2 MB pages
``1G,TLB+PWC``        conventional VM, 1 GB pages
``DVM-BM``            DAV via flat permission bitmap + bitmap cache
``DVM-PE``            DAV via PE-compacted page tables + AVC
``DVM-PE+``           DVM-PE with preload-on-read overlap
``ideal``             direct physical access, no translation or protection
====================  =========================================================

Scaling
-------
The paper runs multi-GB heaps against a 128-entry TLB and 1 KB (128-entry)
PWC/AVC/bitmap caches.  The reproduction scales hardware and workloads
together so the footprint-to-reach ratios stay in the paper's regime at
tractable trace sizes (see DESIGN.md):

* structures: 16-entry TLB, 16-block (1 KB -> 128 B... i.e. 8x smaller)
  walk/bitmap caches;
* page-size *analogs*: 64 KB stands in for 2 MB, 4 MB for 1 GB.  A demand
  mapping under an analog size is physically contiguous at that
  granularity, and a TLB entry covers one analog page — exactly the
  property that gives huge pages their reach.

``HardwareScale.paper()`` restores the full-size structures for runs with
paper-scale footprints.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.common.consts import PAGE_SIZE, SIZE_1G, SIZE_2M
from repro.kernel.vm_syscalls import MemPolicy

#: Scaled analog page sizes (see module docstring).  The 2M analog is kept
#: small enough that its TLB reach stays below the random-access vertex
#: footprints — the regime Table 3's graphs put the paper's 128-entry TLB
#: in, where huge pages barely help (Figure 2).
ANALOG_2M = 16 * 1024
ANALOG_1G = 4 * 1024 * 1024


@dataclass(frozen=True)
class HardwareScale:
    """Sizing of the MMU structures and the page-size analogs."""

    # 32 TLB entries: large enough to hold the eight engines' streaming
    # working set (as the paper's 128-entry TLB trivially does), small
    # enough that irregular vertex accesses overflow it.
    tlb_entries: int = 32
    walk_cache_blocks: int = 16
    walk_cache_ways: int = 4
    # 32 bitmap words: holds the engines' streaming set (like the paper's
    # 128-entry cache) while irregular vertex accesses overflow it.
    bitmap_cache_blocks: int = 32
    page_2m: int = ANALOG_2M
    page_1g: int = ANALOG_1G

    @classmethod
    def paper(cls) -> "HardwareScale":
        """Full-size structures and native page sizes (Table 2)."""
        return cls(tlb_entries=128, walk_cache_blocks=16, walk_cache_ways=4,
                   bitmap_cache_blocks=128, page_2m=SIZE_2M, page_1g=SIZE_1G)

    @classmethod
    def bench(cls) -> "HardwareScale":
        """Tiny structures for the ``bench`` dataset profile.

        Keeps the footprint-to-reach ratios in the paper's regime when the
        graphs are benchmark-sized, so the benchmark suite reproduces the
        figures' *shapes* in seconds.
        """
        return cls(tlb_entries=4, walk_cache_blocks=8, walk_cache_ways=4,
                   bitmap_cache_blocks=8, page_2m=16 * 1024,
                   page_1g=1024 * 1024)

    @classmethod
    def fuzz(cls) -> "HardwareScale":
        """Small structures for generated scenarios (``repro/gen``).

        Fuzz streams are short (hundreds of accesses), so capacity
        evictions, set conflicts and L1/walk-cache interplay only show
        up if the structures are small enough to overflow within one
        stream.  Analog page sizes stay at the bench scale so a single
        generated region can span several analog huge pages.
        """
        return cls(tlb_entries=8, walk_cache_blocks=8, walk_cache_ways=4,
                   bitmap_cache_blocks=8, page_2m=16 * 1024,
                   page_1g=1024 * 1024)


@dataclass(frozen=True)
class MMUConfig:
    """One memory-management configuration of the heterogeneous system."""

    name: str                  # short key, e.g. "dvm_pe"
    label: str                 # the paper's label, e.g. "DVM-PE"
    mech: str                  # "conventional"|"dvm_bm"|"dvm_pe"|"dvm_pe_plus"|"ideal"
    policy: MemPolicy          # OS allocation policy for this configuration
    tlb_entries: int = 16
    tlb_page_size: int = PAGE_SIZE   # coverage of one TLB entry (reach)
    tlb_ways: int | None = None      # None = fully associative
    # Optional second-level TLB (the Cong et al. IOMMU baseline the paper's
    # related work discusses); 0 disables it.
    tlb_l2_entries: int = 0
    tlb_l2_ways: int = 8
    walk_cache_blocks: int = 16
    walk_cache_ways: int = 4
    bitmap_cache_blocks: int = 16

    def __post_init__(self):
        valid = ("conventional", "dvm_bm", "dvm_pe", "dvm_pe_plus", "ideal")
        if self.mech not in valid:
            raise ValueError(f"unknown mechanism {self.mech!r}")

    def fingerprint(self) -> str:
        """Content hash over every parameter (including the OS policy).

        Cache keys must use this, not ``name``: two differently
        parameterized configurations may share a name (ablations built
        with :func:`config_with`), and keying on the name alone would
        silently alias their results.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=str)
        return hashlib.sha1(payload.encode()).hexdigest()

    @property
    def uses_identity(self) -> bool:
        """Whether the OS policy identity-maps the heap."""
        return self.policy.wants_identity

    @property
    def preloads(self) -> bool:
        """Whether reads overlap DAV with a speculative data fetch."""
        return self.mech == "dvm_pe_plus"


def standard_configs(scale: HardwareScale | None = None) -> dict[str, MMUConfig]:
    """The paper's seven configurations under a hardware scale."""
    s = scale or HardwareScale()
    common = dict(tlb_entries=s.tlb_entries,
                  walk_cache_blocks=s.walk_cache_blocks,
                  walk_cache_ways=s.walk_cache_ways,
                  bitmap_cache_blocks=s.bitmap_cache_blocks)
    configs = [
        MMUConfig(name="conv_4k", label="4K,TLB+PWC", mech="conventional",
                  policy=MemPolicy(mode="conventional", page_size=PAGE_SIZE),
                  tlb_page_size=PAGE_SIZE, **common),
        MMUConfig(name="conv_2m", label="2M,TLB+PWC", mech="conventional",
                  policy=MemPolicy(mode="conventional", page_size=s.page_2m),
                  tlb_page_size=s.page_2m, **common),
        MMUConfig(name="conv_1g", label="1G,TLB+PWC", mech="conventional",
                  policy=MemPolicy(mode="conventional", page_size=s.page_1g),
                  tlb_page_size=s.page_1g, **common),
        MMUConfig(name="dvm_bm", label="DVM-BM", mech="dvm_bm",
                  policy=MemPolicy(mode="dvm_bitmap", use_pes=False),
                  tlb_page_size=PAGE_SIZE, **common),
        MMUConfig(name="dvm_pe", label="DVM-PE", mech="dvm_pe",
                  policy=MemPolicy(mode="dvm", use_pes=True), **common),
        MMUConfig(name="dvm_pe_plus", label="DVM-PE+", mech="dvm_pe_plus",
                  policy=MemPolicy(mode="dvm", use_pes=True), **common),
        MMUConfig(name="ideal", label="ideal", mech="ideal",
                  policy=MemPolicy(mode="dvm", use_pes=True), **common),
    ]
    return {c.name: c for c in configs}


def config_with(base: MMUConfig, **overrides) -> MMUConfig:
    """A copy of ``base`` with fields overridden (for ablations)."""
    return replace(base, **overrides)


def demand_faulting_config(base: MMUConfig) -> MMUConfig:
    """``base`` with eager pre-faulting replaced by true demand faulting.

    The OS backs demand mappings one chunk at a time as the accelerator's
    major faults arrive through the recoverable fault path
    (``hw/fault_queue.py`` + ``kernel/fault.py``) — the execution mode
    whose per-fault cost the paper's Section 4.3 argues accelerators
    cannot afford, and which the eager policies exist to avoid.  Used by
    ``experiments/fault_model.py``.
    """
    return replace(base, name=f"{base.name}_demand",
                   label=f"{base.label},demand",
                   policy=replace(base.policy, demand_faulting=True))


#: Hardware-scale profiles addressable by name (scenario plans and CLI
#: flags carry the name, not the object, so they stay JSON-serializable).
SCALE_PROFILES = ("default", "paper", "bench", "fuzz")


def scale_by_name(profile: str) -> HardwareScale:
    """Resolve a :data:`SCALE_PROFILES` name to a :class:`HardwareScale`."""
    if profile == "default":
        return HardwareScale()
    try:
        return getattr(HardwareScale, profile)()
    except AttributeError:
        raise ValueError(f"unknown hardware scale {profile!r}; expected one "
                         f"of {SCALE_PROFILES}") from None


def scenario_configs(scale: str = "default", *, demand: bool = False,
                     names: tuple[str, ...] | None = None,
                     ) -> dict[str, MMUConfig]:
    """Configurations for one generated scenario (``repro/gen``).

    Scenario plans describe configurations by constraint — a hardware
    scale profile and whether backing is lazy — rather than by concrete
    objects, and this builds the matching config set.  Keys stay the
    *base* names (``conv_4k``...) even when demand faulting renames the
    configs themselves, so oracle verdicts are comparable across
    scenarios.
    """
    configs = standard_configs(scale_by_name(scale))
    if names is not None:
        unknown = set(names) - set(configs)
        if unknown:
            raise ValueError(f"unknown config names {sorted(unknown)}")
        configs = {n: c for n, c in configs.items() if n in names}
    if demand:
        configs = {n: demand_faulting_config(c) for n, c in configs.items()}
    return configs


def two_level_tlb_config(scale: HardwareScale | None = None) -> MMUConfig:
    """The related-work IOMMU baseline (Cong et al., HPCA'17).

    A two-level TLB hierarchy in the IOMMU with page walks on the host:
    the paper's Section 8 notes this design reaches within 6.4% of ideal
    on *regular* workloads but, like all TLB approaches, suffers on
    irregular access patterns.  The L2 has 8x the L1's entries, mirroring
    the 128-entry L1 / 1024-entry L2 of the original proposal.
    """
    s = scale or HardwareScale()
    base = standard_configs(s)["conv_4k"]
    return replace(base, name="conv_4k_2lvl", label="4K,2-level TLB",
                   tlb_l2_entries=8 * s.tlb_entries)
