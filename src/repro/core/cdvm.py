"""cDVM: extending DVM to CPU cores (paper Section 7).

CPUs keep their TLB hierarchies under cDVM; what changes is *behind* the
TLB: the OS identity-maps all segments (code, data, stack, heap), the page
tables are PE-compacted, and the page-table walker consults an AVC that
caches every level — so the walks triggered by TLB misses complete in a few
SRAM cycles with almost no memory references ("the performance benefits
come from shorter page walks with fewer memory accesses", Section 7.3).

Following the paper's methodology, the CPU evaluation is *analytical*: TLB
miss behaviour is measured by instrumentation (our BadgerTrap stand-in,
:mod:`repro.cpu.badgertrap`), walks are simulated against real page tables,
and the overhead estimate is::

    overhead = walk_cycles / base_cycles
    base_cycles = accesses * BASE_CPI_PER_ACCESS          (the ideal time)
    walk_cycles = walk_sram_accesses * 1 + walk_mem_accesses * walk_latency

This module holds the three CPU configurations of Figure 10 (4K, THP,
cDVM) and the overhead arithmetic; the drivers live in :mod:`repro.cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.consts import PAGE_SIZE
from repro.kernel.vm_syscalls import MemPolicy

#: Average execution cycles per memory reference in the ideal (no-VM-
#: overhead) machine: covers the non-memory instructions between references
#: and the cache hierarchy.  Conservative, like the paper's model.
BASE_CPI_PER_ACCESS = 7.0

#: Memory latency of a page-walk fetch, in CPU cycles.
CPU_WALK_LATENCY = 62

#: Latency of the data/cacheline fetch that Section 7.1's speculative
#: accesses overlap DAV with.
CPU_FETCH_LATENCY = 80

#: Scaled analog of a 2 MB transparent huge page for the CPU study
#: (DESIGN.md "Scaling": reach ratios are preserved, not absolute sizes).
CPU_ANALOG_2M = 64 * 1024


@dataclass(frozen=True)
class CPUMMUConfig:
    """One CPU memory-management configuration (Figure 10)."""

    name: str
    label: str
    policy: MemPolicy
    tlb_page_size: int
    use_avc: bool              # AVC-backed walker (cDVM) vs conventional PWC
    identity_segments: bool    # identity map code/stack too (Section 7.2)
    l1_entries: int = 64
    l2_entries: int = 512
    # Section 7.1's speculative overlap: loads preload at PA == VA, stores
    # overlap DAV with the write-allocate cacheline fetch.  The paper's
    # Figure 10 estimate explicitly excludes this ("we do not implement
    # preloads"); the ``cpu_cdvm_overlap`` variant models its potential.
    overlap: bool = False


def cpu_configs() -> dict[str, CPUMMUConfig]:
    """The paper's three CPU configurations."""
    configs = [
        CPUMMUConfig(
            name="cpu_4k", label="4K",
            policy=MemPolicy(mode="conventional", page_size=PAGE_SIZE),
            tlb_page_size=PAGE_SIZE, use_avc=False, identity_segments=False,
        ),
        CPUMMUConfig(
            name="cpu_thp", label="THP",
            policy=MemPolicy(mode="conventional", page_size=CPU_ANALOG_2M),
            tlb_page_size=CPU_ANALOG_2M, use_avc=False,
            identity_segments=False,
        ),
        CPUMMUConfig(
            name="cpu_cdvm", label="cDVM",
            policy=MemPolicy(mode="dvm", use_pes=True),
            tlb_page_size=PAGE_SIZE, use_avc=True, identity_segments=True,
        ),
    ]
    return {c.name: c for c in configs}


def cdvm_overlap_config() -> CPUMMUConfig:
    """cDVM with Section 7.1's load-preload + store write-allocate overlap.

    An extension beyond Figure 10's conservative estimate: identity-mapped
    accesses overlap DAV with the data/cacheline fetch, so only walk work
    exceeding the fetch latency is exposed.
    """
    base = cpu_configs()["cpu_cdvm"]
    from dataclasses import replace
    return replace(base, name="cpu_cdvm_overlap", label="cDVM+overlap",
                   overlap=True)


@dataclass
class CPUOverheadResult:
    """The analytical model's output for one (workload, config) pair."""

    workload: str
    config: str
    accesses: int
    tlb_misses: int
    walk_sram_accesses: int
    walk_mem_accesses: int
    base_cycles: float
    walk_cycles: float

    @property
    def miss_rate(self) -> float:
        """L2-TLB miss rate (walks per access)."""
        return self.tlb_misses / self.accesses if self.accesses else 0.0

    @property
    def overhead(self) -> float:
        """VM overhead: walk cycles as a fraction of ideal execution."""
        return self.walk_cycles / self.base_cycles if self.base_cycles else 0.0


def estimate_overhead(*, workload: str, config: str, accesses: int,
                      tlb_misses: int, walk_sram_accesses: int,
                      walk_mem_accesses: int,
                      base_cpi: float = BASE_CPI_PER_ACCESS,
                      walk_latency: int = CPU_WALK_LATENCY,
                      walk_cycles_override: float | None = None
                      ) -> CPUOverheadResult:
    """Apply the Section 7.3 analytical model to measured walk statistics.

    ``walk_cycles_override`` carries the *exposed* walk cycles when the
    caller modelled Section 7.1's speculative overlap itself.
    """
    base_cycles = accesses * base_cpi
    if walk_cycles_override is not None:
        walk_cycles = walk_cycles_override
    else:
        walk_cycles = walk_sram_accesses + walk_mem_accesses * walk_latency
    return CPUOverheadResult(
        workload=workload, config=config, accesses=accesses,
        tlb_misses=tlb_misses, walk_sram_accesses=walk_sram_accesses,
        walk_mem_accesses=walk_mem_accesses, base_cycles=base_cycles,
        walk_cycles=walk_cycles,
    )
