"""DVM core: configurations, DAV, preload, the public facade, cDVM."""

from repro.core.cdvm import (
    BASE_CPI_PER_ACCESS,
    CPU_ANALOG_2M,
    CPU_WALK_LATENCY,
    CPUMMUConfig,
    CPUOverheadResult,
    cpu_configs,
    estimate_overhead,
)
from repro.core.config import (
    ANALOG_1G,
    ANALOG_2M,
    HardwareScale,
    MMUConfig,
    config_with,
    standard_configs,
    two_level_tlb_config,
)
from repro.core.dav import AccessValidator, DAVOutcome, DAVResult
from repro.core.dvm import DVM, DVMStats
from repro.core.preload import PreloadDecision, preload_decision

__all__ = [
    "BASE_CPI_PER_ACCESS",
    "CPU_ANALOG_2M",
    "CPU_WALK_LATENCY",
    "CPUMMUConfig",
    "CPUOverheadResult",
    "cpu_configs",
    "estimate_overhead",
    "ANALOG_1G",
    "ANALOG_2M",
    "HardwareScale",
    "MMUConfig",
    "config_with",
    "standard_configs",
    "two_level_tlb_config",
    "AccessValidator",
    "DAVOutcome",
    "DAVResult",
    "DVM",
    "DVMStats",
    "PreloadDecision",
    "preload_decision",
]
