"""Devirtualized Access Validation: the semantic core of DVM (Figure 4).

This module implements the paper's access-flow *functionally* — what an
access means, independent of timing (the timed version lives in the
IOMMU's trace loops and is cross-checked against this one by the test
suite).  For a virtual address and access kind, DAV walks the page table
and classifies the outcome:

``VALIDATED``
    The walk ended at a Permission Entry with sufficient permission (or at
    an identity leaf PTE): the access may proceed directly at PA == VA.
``TRANSLATED``
    The walk ended at a non-identity leaf PTE with sufficient permission:
    DVM falls back to conventional translation, *reusing the same walk* —
    the fallback costs no more than a conventional VM walk (Section 4.1.1).
``FAULT``
    Unmapped address or insufficient permission: the IOMMU raises an
    exception on the host CPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.perms import Perm, allows
from repro.kernel.page_table import PageTable


class DAVOutcome(enum.Enum):
    """Classification of one devirtualized access validation."""

    VALIDATED = "validated"    # identity mapped, permission ok: direct access
    TRANSLATED = "translated"  # fell back to translation from the same walk
    FAULT = "fault"            # no mapping or insufficient permission


@dataclass
class DAVResult:
    """Everything DAV learns about one access."""

    va: int
    access: str
    outcome: DAVOutcome
    pa: int | None            # None on fault
    perm: Perm
    walk_depth: int           # page-table accesses the walk performed
    ended_at_pe: bool

    @property
    def direct(self) -> bool:
        """True when the access proceeds at PA == VA without translation."""
        return self.outcome == DAVOutcome.VALIDATED


class AccessValidator:
    """Performs DAV against one process's page table."""

    def __init__(self, page_table: PageTable):
        self.page_table = page_table

    def validate(self, va: int, access: str = "r") -> DAVResult:
        """Classify an access of kind ``access`` ('r', 'w' or 'x') at ``va``."""
        result = self.page_table.walk(va)
        if not result.ok or not allows(result.perm, access):
            return DAVResult(va=va, access=access, outcome=DAVOutcome.FAULT,
                             pa=None, perm=result.perm,
                             walk_depth=result.depth,
                             ended_at_pe=result.is_pe)
        outcome = (DAVOutcome.VALIDATED if result.identity
                   else DAVOutcome.TRANSLATED)
        return DAVResult(va=va, access=access, outcome=outcome, pa=result.pa,
                         perm=result.perm, walk_depth=result.depth,
                         ended_at_pe=result.is_pe)
