"""Preload-on-read: overlapping DAV with the data fetch (Section 4.2).

If the accelerator can squash and retry an in-flight load, DVM predicts
that every read targets an identity-mapped page and launches the load at
PA == VA *in parallel* with DAV.  The timing consequences, modelled here
and inlined (identically) in the IOMMU's DVM-PE+ loop:

* validated read — the preload *is* the access; only DAV time beyond the
  data latency is exposed (with an AVC-resident walk, nothing is);
* mispredicted read (non-identity page) — the preload is squashed, costing
  a wasted memory access (energy + bandwidth), and the load retries at the
  translated PA, exposing one serialized data latency;
* write — never preloaded: the PA must be validated before memory is
  updated, so writes pay the full DAV latency (DVM-PE behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PreloadDecision:
    """Timing outcome of one access under preload-on-read."""

    exposed_sram_cycles: int   # validation SRAM cycles on the critical path
    exposed_mem_cycles: int    # serialized memory cycles on the critical path
    squashed: bool             # a wasted preload memory access occurred


def preload_decision(*, is_write: bool, identity: bool, dav_sram_cycles: int,
                     dav_mem_accesses: int, walk_latency: int,
                     data_latency: int) -> PreloadDecision:
    """Resolve one access's exposed stall under the DVM-PE+ policy."""
    if is_write:
        return PreloadDecision(
            exposed_sram_cycles=dav_sram_cycles,
            exposed_mem_cycles=dav_mem_accesses * walk_latency,
            squashed=False,
        )
    exposed_mem = 0
    if dav_mem_accesses:
        overlap_excess = dav_mem_accesses * walk_latency - data_latency
        if overlap_excess > 0:
            exposed_mem = overlap_excess
    squashed = not identity
    if squashed:
        # Retry at the translated PA: one serialized data access.
        exposed_mem += data_latency
    return PreloadDecision(exposed_sram_cycles=0, exposed_mem_cycles=exposed_mem,
                           squashed=squashed)
