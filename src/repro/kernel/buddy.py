"""Binary buddy allocator for physical memory.

This models Linux's buddy page allocator closely enough to reproduce the
behaviour DVM depends on (paper Section 4.3.1):

* *Eager contiguous allocation*: requests are rounded up to a power-of-two
  number of pages, allocated as one contiguous block, and the pages beyond
  the requested size are **returned immediately** (the eager-paging policy
  the paper adopts from Karakostas et al.).
* Deterministic lowest-address-first placement, so identity-mapping
  experiments are reproducible.
* Standard buddy splitting and coalescing, which governs the long-run
  fragmentation measured by the shbench study (Table 4).

Addresses handed out are physical byte addresses; block sizes are always a
power-of-two multiple of the 4 KB frame size.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.common import faults
from repro.common.consts import PAGE_SHIFT, PAGE_SIZE
from repro.common.errors import InjectedOutOfMemoryError, OutOfMemoryError
from repro.common.util import align_up, is_aligned, size_to_order
from repro.obs import core as obs_core


@dataclass
class BuddyStats:
    """Counters exposed for the fragmentation experiments."""

    allocations: int = 0
    frees: int = 0
    splits: int = 0
    merges: int = 0
    failed_allocations: int = 0


class BuddyAllocator:
    """A binary buddy allocator over ``[base, base + total_bytes)``.

    Parameters
    ----------
    total_bytes:
        Size of the managed physical region; must be a multiple of 4 KB.
    base:
        Physical byte address of the start of the region; must be 4 KB
        aligned.  Buddy alignment is computed relative to ``base`` so a
        region need not start at address zero.
    """

    def __init__(self, total_bytes: int, base: int = 0):
        if total_bytes <= 0 or not is_aligned(total_bytes, PAGE_SIZE):
            raise ValueError(f"total_bytes must be a positive multiple of "
                             f"{PAGE_SIZE}, got {total_bytes}")
        if not is_aligned(base, PAGE_SIZE):
            raise ValueError(f"base must be {PAGE_SIZE}-aligned, got {base:#x}")
        self.base = base
        self.total_bytes = total_bytes
        self.max_order = size_to_order(total_bytes, PAGE_SIZE)
        self.stats = BuddyStats()
        # Per-order free lists.  ``_free_sets`` is authoritative; the heaps
        # give lowest-address-first retrieval with lazy invalidation.
        self._free_sets: list[set[int]] = [set() for _ in range(self.max_order + 1)]
        self._free_heaps: list[list[int]] = [[] for _ in range(self.max_order + 1)]
        self._free_bytes = 0
        # Seed the free lists by decomposing the region into maximal
        # naturally-aligned power-of-two blocks.
        self._insert_range(base, total_bytes)

    # -- public interface ---------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return self._free_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self.total_bytes - self._free_bytes

    def alloc_block(self, order: int) -> int:
        """Allocate one naturally-aligned block of ``2**order`` pages.

        Returns the block's physical byte address.  Raises
        :class:`OutOfMemoryError` when no block of sufficient order exists.
        """
        if order < 0 or order > self.max_order:
            self.stats.failed_allocations += 1
            raise OutOfMemoryError(f"order {order} exceeds max {self.max_order}")
        for source in range(order, self.max_order + 1):
            addr = self._pop_lowest(source)
            if addr is None:
                continue
            # Split down to the requested order, returning upper halves.
            while source > order:
                source -= 1
                upper = addr + (PAGE_SIZE << source)
                self._push(source, upper)
                self.stats.splits += 1
            self._free_bytes -= PAGE_SIZE << order
            self.stats.allocations += 1
            return addr
        self.stats.failed_allocations += 1
        raise OutOfMemoryError(
            f"no free block of order {order} ({(PAGE_SIZE << order)} bytes)"
        )

    def free_block(self, addr: int, order: int) -> None:
        """Free a block previously returned by :func:`alloc_block`.

        Coalesces with free buddies as far as possible.
        """
        block_size = PAGE_SIZE << order
        if not is_aligned(addr - self.base, block_size):
            raise ValueError(
                f"block {addr:#x} is not aligned to its order-{order} size"
            )
        if addr in self._free_sets[order]:
            raise ValueError(f"double free of block {addr:#x} (order {order})")
        self.stats.frees += 1
        self._free_bytes += block_size
        while order < self.max_order:
            buddy = self._buddy_of(addr, order)
            if buddy not in self._free_sets[order]:
                break
            self._remove(order, buddy)
            addr = min(addr, buddy)
            order += 1
            self.stats.merges += 1
        self._push(order, addr)

    def alloc_range(self, size: int) -> int:
        """Eagerly allocate ``size`` bytes of physically contiguous memory.

        This is the eager-contiguous-allocation entry point identity
        mapping needs (paper Section 4.3.1).  Power-of-two sizes take the
        classic buddy path: one naturally-aligned block.  Other sizes are
        carved *exactly* from the best-fitting contiguous free run — the
        ``alloc_contig_range`` behaviour a Linux prototype needs anyway for
        requests above ``MAX_ORDER`` (4 MB), and the policy that keeps
        rounding slack from accumulating as permanent fragmentation.
        Returns the physical address of the range.
        """
        if faults.should_fire("alloc_oom"):
            # Chaos hook: simulated memory pressure on the contiguous
            # path, exercising the identity-mapping -> demand-paging
            # fallback (paper Section 4.3 / kernel/identity.py).
            self.stats.failed_allocations += 1
            raise InjectedOutOfMemoryError(
                f"injected alloc_oom fault ({size} bytes)")
        usable = align_up(size, PAGE_SIZE)
        order = size_to_order(size, PAGE_SIZE)
        if obs_core.ENABLED:
            obs_core.REGISTRY.histogram("kernel.buddy.alloc_order").observe(order)
        if (PAGE_SIZE << order) == usable:
            return self.alloc_block(order)
        try:
            return self._alloc_run(usable)
        except OutOfMemoryError:
            # No exact run: fall back to carving a rounded buddy block and
            # returning the slack immediately (the paper's description).
            if obs_core.ENABLED:
                obs_core.REGISTRY.counter("kernel.buddy.slack_fallbacks").inc()
            addr = self.alloc_block(order)
            self.free_range(addr + usable, (PAGE_SIZE << order) - usable)
            return addr

    def _alloc_run(self, usable: int) -> int:
        """Claim ``usable`` contiguous bytes from the best-fitting free run.

        Free runs are maximal address-contiguous sequences of free blocks
        (which may span buddy boundaries, so a run can exceed the largest
        single block).  Best fit — the smallest sufficient run — keeps big
        runs intact for big allocations.
        """
        blocks = sorted(
            (addr, order)
            for order, free in enumerate(self._free_sets)
            for addr in free
        )
        runs: list[tuple[int, int, list[tuple[int, int]]]] = []
        run_start = None
        run_end = None
        run_blocks: list[tuple[int, int]] = []
        for addr, order in blocks:
            if run_end != addr:
                if run_start is not None and run_end - run_start >= usable:
                    runs.append((run_end - run_start, run_start,
                                 list(run_blocks)))
                run_start = addr
                run_end = addr
                run_blocks = []
            run_blocks.append((addr, order))
            run_end += PAGE_SIZE << order
        if run_start is not None and run_end - run_start >= usable:
            runs.append((run_end - run_start, run_start, list(run_blocks)))
        if not runs:
            self.stats.failed_allocations += 1
            raise OutOfMemoryError(
                f"no contiguous run of {usable} bytes (largest free order "
                f"{self.largest_free_order()})"
            )
        _size, start, chosen = min(runs)
        claimed = 0
        for block_addr, block_order in chosen:
            if claimed >= usable:
                break
            self._remove(block_order, block_addr)
            self._free_bytes -= PAGE_SIZE << block_order
            claimed = block_addr + (PAGE_SIZE << block_order) - start
        if claimed > usable:
            self.free_range(start + usable, claimed - usable)
        self.stats.allocations += 1
        return start

    def free_range(self, addr: int, size: int) -> None:
        """Free an arbitrary page-aligned range.

        The range is decomposed into maximal naturally-aligned power-of-two
        blocks, each of which is freed (and coalesced) independently.  This
        is how the eager allocator returns rounding slack, and how
        ``munmap`` returns partial mappings.
        """
        if size == 0:
            return
        if not is_aligned(addr, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise ValueError(
                f"range [{addr:#x}, +{size:#x}) is not page aligned"
            )
        for block_addr, block_order in self._decompose(addr, size):
            self.free_block(block_addr, block_order)

    def reserve_range(self, addr: int, size: int) -> bool:
        """Claim the specific range ``[addr, addr+size)`` if it is free.

        Identity re-establishment (Section 4.3.2's "reorganize memory")
        needs the *exact* frames matching a VA range, not just any block.
        Returns False — leaving the allocator untouched — when any part of
        the range is allocated; True after claiming it (splitting covering
        free blocks as needed).
        """
        if size <= 0 or not is_aligned(addr, PAGE_SIZE) \
                or not is_aligned(size, PAGE_SIZE):
            raise ValueError(f"bad range ({addr:#x}, {size:#x})")
        if addr < self.base or addr + size > self.base + self.total_bytes:
            return False
        pieces = list(self._decompose(addr, size))
        if any(self._free_ancestor(a, o) is None for a, o in pieces):
            return False
        for piece_addr, piece_order in pieces:
            self._claim_block(piece_addr, piece_order)
        self.stats.allocations += 1
        return True

    def _free_ancestor(self, addr: int, order: int) -> tuple[int, int] | None:
        """The free block equal to or containing ``(addr, order)``, if any."""
        current_order = order
        while current_order <= self.max_order:
            block_size = PAGE_SIZE << current_order
            rel = addr - self.base
            block_addr = self.base + (rel & ~(block_size - 1))
            if block_addr in self._free_sets[current_order]:
                return block_addr, current_order
            current_order += 1
        return None

    def _claim_block(self, addr: int, order: int) -> None:
        """Carve the exact block ``(addr, order)`` out of a free ancestor."""
        ancestor = self._free_ancestor(addr, order)
        if ancestor is None:
            raise OutOfMemoryError(f"block {addr:#x} (order {order}) not free")
        anc_addr, anc_order = ancestor
        self._remove(anc_order, anc_addr)
        while anc_order > order:
            anc_order -= 1
            half = PAGE_SIZE << anc_order
            if addr < anc_addr + half:
                self._push(anc_order, anc_addr + half)
            else:
                self._push(anc_order, anc_addr)
                anc_addr += half
            self.stats.splits += 1
        self._free_bytes -= PAGE_SIZE << order

    def largest_free_order(self) -> int:
        """Order of the largest currently-free block, or -1 if none.

        The gap between this and ``max_order`` is the external-fragmentation
        signal used by the Table 4 study.
        """
        for order in range(self.max_order, -1, -1):
            if self._free_sets[order]:
                return order
        return -1

    def free_block_counts(self) -> dict[int, int]:
        """Histogram of free blocks by order (for fragmentation reports)."""
        return {
            order: len(blocks)
            for order, blocks in enumerate(self._free_sets)
            if blocks
        }

    def check_consistency(self) -> None:
        """Verify internal invariants; used by the property-based tests."""
        seen: list[tuple[int, int]] = []
        total = 0
        for order, blocks in enumerate(self._free_sets):
            block_size = PAGE_SIZE << order
            for addr in blocks:
                assert is_aligned(addr - self.base, block_size), (
                    f"misaligned free block {addr:#x} at order {order}"
                )
                assert self.base <= addr < self.base + self.total_bytes
                seen.append((addr, addr + block_size))
                total += block_size
        assert total == self._free_bytes, "free byte accounting mismatch"
        seen.sort()
        for (_, prev_end), (start, _) in zip(seen, seen[1:]):
            assert prev_end <= start, "overlapping free blocks"

    # -- internals ----------------------------------------------------------

    def _buddy_of(self, addr: int, order: int) -> int:
        rel = addr - self.base
        return self.base + (rel ^ (PAGE_SIZE << order))

    def _push(self, order: int, addr: int) -> None:
        self._free_sets[order].add(addr)
        heapq.heappush(self._free_heaps[order], addr)

    def _remove(self, order: int, addr: int) -> None:
        # Heap entry is invalidated lazily; the set is authoritative.
        self._free_sets[order].remove(addr)

    def _pop_lowest(self, order: int) -> int | None:
        blocks = self._free_sets[order]
        heap = self._free_heaps[order]
        while heap:
            addr = heapq.heappop(heap)
            if addr in blocks:
                blocks.remove(addr)
                return addr
        return None

    def _decompose(self, addr: int, size: int):
        """Yield (addr, order) blocks tiling ``[addr, addr+size)``.

        Blocks are naturally aligned relative to ``base`` and maximal, the
        standard greedy decomposition.
        """
        end = addr + size
        while addr < end:
            rel = addr - self.base
            if rel == 0:
                align_order = self.max_order
            else:
                lowest_set_bit = (rel & -rel).bit_length() - 1
                align_order = min(self.max_order, lowest_set_bit - PAGE_SHIFT)
            # Largest order that fits in the remaining size.
            remaining = end - addr
            fit_order = (remaining // PAGE_SIZE).bit_length() - 1
            order = min(align_order, fit_order)
            yield addr, order
            addr += PAGE_SIZE << order

    def _insert_range(self, addr: int, size: int) -> None:
        for block_addr, block_order in self._decompose(addr, size):
            self._push(block_order, block_addr)
            self._free_bytes += PAGE_SIZE << block_order
