"""mmap/munmap emulation: the per-process virtual memory manager.

This is where the memory-management *policy* lives.  A process's VMM is
configured with one of three policies:

* ``conventional`` — demand paging with a chosen page size (4 KB, 2 MB or
  1 GB), THP-style: huge pages where alignment allows, 4 KB elsewhere.
  This backs the paper's ``4K/2M/1G TLB+PWC`` baselines.
* ``dvm`` — identity mapping first (Figure 7), Permission Entries in the
  page table, demand-paged 4 KB fallback.  Backs ``DVM-PE``/``DVM-PE+``.
* ``dvm_bitmap`` — identity mapping first, permissions additionally
  recorded in a flat physical-memory bitmap (Border-Control style); the
  page table keeps plain identity PTEs for the translation fallback.
  Backs ``DVM-BM``.

For demand-paged mappings the simulator pre-faults eagerly (physical frames
are allocated and mapped at mmap time) because the trace-driven timing model
measures steady-state MMU behaviour, as the paper's gem5 runs do.  Frames
for a demand mapping are allocated per page-size chunk, so PA != VA and
physical contiguity matches the page size — exactly what a first-touch
allocator converges to.

With ``MemPolicy(demand_faulting=True)`` the eager pre-fault is disabled:
mmap only reserves the VMA, and frames are allocated one policy-size chunk
at a time by :meth:`VMM.populate_for_fault` when the kernel fault handler
(:mod:`repro.kernel.fault`) services a major fault.  This makes the cost
DVM's eager identity mapping avoids (paper Section 4.3) measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.consts import PAGE_SIZE, SIZE_1G, SIZE_2M
from repro.common.errors import AddressSpaceError, OutOfMemoryError
from repro.common.perms import Perm
from repro.common.util import align_up, is_aligned
from repro.kernel.address_space import AddressSpace, VMA
from repro.kernel.identity import IdentityMapper
from repro.kernel.page_table import PageTable
from repro.kernel.phys import PhysicalMemory

def _valid_page_size(size: int) -> bool:
    """Demand-paging granularities: power-of-two multiples of 4 KB up to 1 GB.

    Besides the native x86-64 sizes, scaled analog sizes (e.g. 64 KB
    standing in for 2 MB; see DESIGN.md "Scaling") are allowed: a chunk of
    such a size is physically contiguous and mapped with the largest native
    pages that fit, and the TLB models reach at the analog granularity.
    """
    return (PAGE_SIZE <= size <= SIZE_1G and size % PAGE_SIZE == 0
            and size & (size - 1) == 0)


@dataclass(frozen=True)
class MemPolicy:
    """Memory-management policy for one process."""

    mode: str = "conventional"      # "conventional" | "dvm" | "dvm_bitmap"
    page_size: int = PAGE_SIZE      # demand-paging page size (THP-style)
    use_pes: bool = True            # install Permission Entries (dvm mode)
    pe_format: str = "pe16"         # "pe16" | "spare_bits" (Section 4.1.1)
    demand_faulting: bool = False   # lazy backing: populate on major fault

    def __post_init__(self):
        if self.mode not in ("conventional", "dvm", "dvm_bitmap"):
            raise ValueError(f"unknown policy mode {self.mode!r}")
        if not _valid_page_size(self.page_size):
            raise ValueError(f"unsupported page size {self.page_size}")
        if self.pe_format not in ("pe16", "spare_bits"):
            raise ValueError(f"unknown PE format {self.pe_format!r}")

    @property
    def wants_identity(self) -> bool:
        """Whether this policy attempts identity mapping."""
        return self.mode in ("dvm", "dvm_bitmap")


@dataclass
class Allocation:
    """One mmap'd region and its physical backing."""

    vma: VMA
    phys_chunks: list[tuple[int, int]]   # (pa, size); empty for identity
    identity: bool

    @property
    def va(self) -> int:
        """Base virtual address."""
        return self.vma.start

    @property
    def size(self) -> int:
        """Mapped size in bytes (page aligned)."""
        return self.vma.size


@dataclass
class VMMStats:
    """Aggregate allocation statistics for one process."""

    identity_allocs: int = 0
    demand_allocs: int = 0
    identity_bytes: int = 0
    demand_bytes: int = 0
    faulted_chunks: int = 0         # chunks populated by the fault handler

    @property
    def total_bytes(self) -> int:
        """All mapped bytes."""
        return self.identity_bytes + self.demand_bytes


class VMM:
    """Virtual memory manager for a single process."""

    def __init__(self, phys: PhysicalMemory, aspace: AddressSpace,
                 page_table: PageTable, policy: MemPolicy,
                 perm_bitmap=None):
        if policy.mode == "dvm_bitmap" and perm_bitmap is None:
            raise ValueError("dvm_bitmap policy requires a permission bitmap")
        self.phys = phys
        self.aspace = aspace
        self.page_table = page_table
        self.policy = policy
        self.perm_bitmap = perm_bitmap
        self.identity_mapper = IdentityMapper(phys, aspace, page_table)
        self.stats = VMMStats()
        self._allocations: dict[int, Allocation] = {}

    # -- public API -----------------------------------------------------------

    def mmap(self, size: int, perm: Perm = Perm.READ_WRITE, *,
             kind: str = "mmap", name: str = "",
             alignment: int | None = None) -> Allocation:
        """Allocate and map ``size`` bytes; returns the allocation record.

        ``alignment`` constrains the VA (and, for demand mappings, the
        placement) beyond the paging granularity — e.g. a hypervisor
        aligning guest RAM so guest-relative alignments hold absolutely.
        """
        if size <= 0:
            raise ValueError(f"mmap size must be positive, got {size}")
        if self.policy.wants_identity:
            vma = self.identity_mapper.try_map(size, perm, kind=kind, name=name)
            if vma is not None:
                if self.perm_bitmap is not None:
                    self.perm_bitmap.set_range(vma.start, vma.size, perm)
                alloc = Allocation(vma=vma, phys_chunks=[], identity=True)
                self._register(alloc)
                return alloc
        alloc = self._demand_map(size, perm, kind=kind, name=name,
                                 alignment=alignment)
        self._register(alloc)
        return alloc

    def munmap(self, alloc: Allocation) -> None:
        """Unmap and free an allocation returned by :func:`mmap`."""
        if alloc.va not in self._allocations:
            raise AddressSpaceError(f"no allocation at {alloc.va:#x}")
        del self._allocations[alloc.va]
        if alloc.identity:
            if self.perm_bitmap is not None:
                self.perm_bitmap.clear_range(alloc.va, alloc.size)
            self.identity_mapper.unmap(alloc.vma)
            self.stats.identity_bytes -= alloc.size
            self.stats.identity_allocs -= 1
            return
        self.page_table.unmap_range(alloc.va, alloc.size)
        self.aspace.remove(alloc.vma)
        for pa, chunk_size in alloc.phys_chunks:
            self.phys.free_contiguous(pa, chunk_size)
        self.stats.demand_bytes -= alloc.size
        self.stats.demand_allocs -= 1

    def allocations(self) -> list[Allocation]:
        """Live allocations, ordered by VA."""
        return [self._allocations[va] for va in sorted(self._allocations)]

    def allocation_at(self, va: int) -> Allocation | None:
        """The live allocation containing ``va``, if any."""
        for alloc in self._allocations.values():
            if alloc.va <= va < alloc.va + alloc.size:
                return alloc
        return None

    def populate_for_fault(self, va: int) -> bool:
        """Back the policy-size chunk containing ``va`` (major fault).

        Returns True when a chunk was allocated and mapped, False when
        ``va`` has no demand allocation to back (a true violation — the
        fault handler escalates).  Chunk boundaries match the eager
        :meth:`_populate` walk: demand VMAs are reserved aligned to the
        policy page size, so every chunk is a whole, naturally aligned
        (analog) huge page and a fault maps all of it at once.
        """
        alloc = self.allocation_at(va)
        if alloc is None or alloc.identity:
            return False
        page_size = self.policy.page_size
        chunk_start = max(va & ~(page_size - 1), alloc.va)
        chunk = min(page_size, alloc.va + alloc.size - chunk_start)
        if not is_aligned(chunk_start, page_size) or chunk < page_size:
            chunk = PAGE_SIZE
            chunk_start = va & ~(PAGE_SIZE - 1)
        pa = self.phys.alloc_contiguous(chunk)
        perm = alloc.vma.perm
        if chunk >= SIZE_2M:
            self.page_table.map_range_best_effort(
                chunk_start, pa, chunk, perm, preferred_page_size=SIZE_2M)
        else:
            self.page_table.map_range(chunk_start, pa, chunk, perm,
                                      page_size=PAGE_SIZE)
        alloc.phys_chunks.append((pa, chunk))
        self.stats.faulted_chunks += 1
        return True

    # -- internals ---------------------------------------------------------------

    def _register(self, alloc: Allocation) -> None:
        self._allocations[alloc.va] = alloc
        if alloc.identity:
            self.stats.identity_allocs += 1
            self.stats.identity_bytes += alloc.size
        else:
            self.stats.demand_allocs += 1
            self.stats.demand_bytes += alloc.size

    def _demand_map(self, size: int, perm: Perm, *, kind: str,
                    name: str, alignment: int | None = None) -> Allocation:
        # Round up to the paging granularity so every chunk is a whole,
        # naturally aligned (analog) huge page — the property that makes a
        # huge-page TLB entry's reach valid.
        usable = align_up(size, self.policy.page_size)
        vma = self.aspace.reserve_anywhere(
            usable, perm, kind=kind, name=name,
            alignment=max(self.policy.page_size, alignment or 0))
        if self.policy.demand_faulting:
            # Lazy backing: frames arrive chunk-by-chunk when the fault
            # handler calls populate_for_fault on first touch.
            return Allocation(vma=vma, phys_chunks=[], identity=False)
        try:
            chunks = self._populate(vma, perm)
        except OutOfMemoryError:
            self.aspace.remove(vma)
            raise
        return Allocation(vma=vma, phys_chunks=chunks, identity=False)

    def _populate(self, vma: VMA, perm: Perm) -> list[tuple[int, int]]:
        """Back a demand VMA with frames, chunked at the policy page size."""
        page_size = self.policy.page_size
        chunks: list[tuple[int, int]] = []
        cursor = vma.start
        end = vma.end
        try:
            while cursor < end:
                # Head/tail not aligned to the huge page size get 4 KB pages.
                chunk = page_size
                if not is_aligned(cursor, page_size) or cursor + page_size > end:
                    chunk = PAGE_SIZE
                pa = self.phys.alloc_contiguous(chunk)
                chunks.append((pa, chunk))
                if chunk >= SIZE_2M:
                    self.page_table.map_range_best_effort(
                        cursor, pa, chunk, perm, preferred_page_size=SIZE_2M
                    )
                else:
                    self.page_table.map_range(cursor, pa, chunk, perm,
                                              page_size=PAGE_SIZE)
                cursor += chunk
        except OutOfMemoryError:
            for pa, chunk in chunks:
                self.phys.free_contiguous(pa, chunk)
            if cursor > vma.start:
                self.page_table.unmap_range(vma.start, cursor - vma.start)
            raise
        return chunks
