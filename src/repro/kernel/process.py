"""Processes: segments, fork/COW, vfork and posix_spawn semantics.

Models the process-lifecycle behaviour the paper discusses in Section 5:

* **fork + copy-on-write** works correctly with DVM but breaks identity
  mapping for the first-written page: the private copy gets a fresh frame,
  whose PA cannot equal the (already visible) VA.  The covering Permission
  Entry is demoted so the single page can be repointed while its neighbours
  stay identity mapped.
* **vfork** shares the parent's address space without copying, preserving
  all identity mappings (the paper's recommended alternative).
* **posix_spawn** creates a fresh process with no inherited mappings.

Segment layout follows Section 7.2 for cDVM: with ``identity_segments=True``
the code+data blob and the eagerly-allocated 8 MB stack are identity mapped
(the stack is "moved" to VA == PA before control reaches the application).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.consts import PAGE_SIZE
from repro.common.errors import PageFault, ProtectionFault
from repro.common.perms import Perm, allows
from repro.common.util import align_down, align_up
from repro.kernel.address_space import (
    DEFAULT_CODE_BASE,
    DEFAULT_STACK_TOP,
    AddressSpace,
)
from repro.kernel.malloc import Malloc
from repro.kernel.page_table import PageTable
from repro.kernel.vm_syscalls import VMM, MemPolicy

#: Eager stack size (paper Section 7.2: "we eagerly allocate an 8MB stack").
DEFAULT_STACK_SIZE = 8 << 20


@dataclass
class Segment:
    """A classic process segment (code/data/stack) and its placement."""

    name: str
    va: int
    size: int
    perm: Perm
    identity: bool


class Process:
    """One simulated process. Create via :meth:`repro.kernel.kernel.Kernel.spawn`."""

    def __init__(self, kernel, pid: int, policy: MemPolicy,
                 aspace: AddressSpace | None = None, name: str = ""):
        self.kernel = kernel
        self.pid = pid
        self.policy = policy
        self.name = name or f"proc-{pid}"
        self.alive = True
        self.aspace = aspace if aspace is not None else AddressSpace(
            rng=kernel.new_rng(f"aslr-{pid}")
        )
        self.page_table = PageTable(kernel.phys, use_pes=policy.use_pes,
                                    pe_format=policy.pe_format)
        self.vmm = VMM(kernel.phys, self.aspace, self.page_table, policy,
                       perm_bitmap=kernel.bitmap_for(self))
        self.malloc = Malloc(self.vmm)
        self.segments: list[Segment] = []
        # COW state: frames shared with relatives, and our private copies.
        self._cow_chunks: list[tuple[int, int]] = []   # (pa, size) refcounted
        self._cow_ranges: list[tuple[int, int]] = []   # (va, size) still COW
        self._private_pages: dict[int, int] = {}       # va -> private frame

    # -- segments ----------------------------------------------------------------

    def setup_segments(self, *, code_size: int = 1 << 20,
                       data_size: int = 1 << 20,
                       stack_size: int = DEFAULT_STACK_SIZE,
                       identity_segments: bool = False) -> None:
        """Lay out code+globals and the main-thread stack.

        With ``identity_segments`` (cDVM, Section 7.2) the PIE code/data
        blob and the stack are identity mapped; otherwise they sit at the
        conventional anchors.
        """
        if self.segments:
            raise RuntimeError("segments are already set up")
        code_size = align_up(code_size, PAGE_SIZE)
        data_size = align_up(data_size, PAGE_SIZE)
        stack_size = align_up(stack_size, PAGE_SIZE)
        if identity_segments:
            # PIE: code, data and bss are one logical blob (Section 7.2);
            # code gets RX, the data tail RW, both inside one identity VMA
            # modelled as two adjacent identity mappings.
            self._identity_segment("code", code_size, Perm.READ_EXECUTE)
            self._identity_segment("data", data_size, Perm.READ_WRITE)
            self._identity_segment("stack", stack_size, Perm.READ_WRITE)
            return
        self._fixed_segment("code", DEFAULT_CODE_BASE, code_size,
                            Perm.READ_EXECUTE)
        self._fixed_segment("data", DEFAULT_CODE_BASE + code_size, data_size,
                            Perm.READ_WRITE)
        stack_base = align_down(DEFAULT_STACK_TOP - stack_size, PAGE_SIZE)
        self._fixed_segment("stack", stack_base, stack_size, Perm.READ_WRITE)

    def _identity_segment(self, name: str, size: int, perm: Perm) -> None:
        vma = self.vmm.identity_mapper.try_map(size, perm, kind=name, name=name)
        if vma is None:
            raise PageFault(0, f"could not identity map segment {name!r}")
        self.segments.append(Segment(name=name, va=vma.start, size=size,
                                     perm=perm, identity=True))

    def _fixed_segment(self, name: str, va: int, size: int, perm: Perm) -> None:
        vma = self.aspace.reserve_exact(va, size, perm, kind=name, name=name)
        pa = self.kernel.phys.alloc_contiguous(size)
        self.page_table.map_range(va, pa, size, perm, page_size=PAGE_SIZE)
        self.segments.append(Segment(name=name, va=vma.start, size=size,
                                     perm=perm, identity=(pa == va)))

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    # -- memory access (functional: permission checks + COW) ----------------------

    def access(self, va: int, kind: str) -> int:
        """Perform an access of ``kind`` at ``va``; returns the PA.

        Raises :class:`PageFault` for unmapped addresses.  Write accesses to
        copy-on-write pages trigger the COW break-in; other permission
        violations raise :class:`ProtectionFault` (the exception the IOMMU
        would raise on the host CPU).
        """
        result = self.page_table.walk(va)
        if not result.ok:
            if result.swapped and self.kernel.reclaimer is not None:
                # Demand swap-in (Section 4.3.2's low-memory path).
                self.kernel.reclaimer.swap_in(self, va)
                result = self.page_table.walk(va)
            else:
                raise PageFault(va)
        if not result.ok:
            raise PageFault(va)
        if allows(result.perm, kind):
            return result.pa
        if kind == "w" and self._in_cow_range(va):
            return self._cow_break(va)
        raise ProtectionFault(va, kind)

    def read(self, va: int) -> int:
        """Convenience read access."""
        return self.access(va, "r")

    def write(self, va: int) -> int:
        """Convenience write access."""
        return self.access(va, "w")

    def is_identity(self, va: int) -> bool:
        """Whether ``va`` is currently identity mapped (PA == VA)."""
        result = self.page_table.walk(va)
        return result.ok and result.identity

    # -- process lifecycle ------------------------------------------------------

    def fork(self) -> "Process":
        """Create a child whose address space is a copy-on-write duplicate.

        Every private writable mapping in the parent is dropped to
        read-only in *both* page tables; frames become shared (refcounted
        by the kernel).  Identity mappings stay identity mapped — until a
        write, when the writer's page is privatised (Section 5).
        """
        child = self.kernel.spawn(policy=self.policy,
                                  name=f"{self.name}-child")
        for vma in self.aspace.vmas():
            child.aspace.reserve_exact(
                vma.start, vma.size, vma.perm, kind=vma.kind,
                identity=vma.identity, name=vma.name,
            )
            self._duplicate_mapping(child, vma)
            writable = vma.perm == Perm.READ_WRITE
            if writable:
                self.page_table.protect_range(vma.start, vma.size,
                                              Perm.READ_ONLY)
                child.page_table.protect_range(vma.start, vma.size,
                                               Perm.READ_ONLY)
                self._cow_ranges.append((vma.start, vma.size))
                child._cow_ranges.append((vma.start, vma.size))
            for chunk in self._backing_chunks(vma):
                self.kernel.share_frames(chunk)
                child._cow_chunks.append(chunk)
        return child

    def vfork(self) -> "Process":
        """Create a child sharing this address space (no copying).

        The child borrows the parent's page table and address space, so all
        identity mappings remain intact — the paper's recommended way to
        create processes after allocating shared structures.
        """
        child = self.kernel.spawn(policy=self.policy, aspace=self.aspace,
                                  name=f"{self.name}-vfork")
        child.page_table = self.page_table
        child.vmm = self.vmm
        child.malloc = self.malloc
        child.segments = self.segments
        return child

    def exit(self) -> None:
        """Terminate the process, releasing private frames and COW shares."""
        if not self.alive:
            return
        self.alive = False
        for frame in self._private_pages.values():
            self.kernel.phys.free_frame(frame)
        self._private_pages.clear()
        for chunk in self._cow_chunks:
            self.kernel.release_frames(chunk)
        self._cow_chunks.clear()

    # -- internals -----------------------------------------------------------------

    def _in_cow_range(self, va: int) -> bool:
        return any(start <= va < start + size
                   for start, size in self._cow_ranges)

    def _cow_break(self, va: int) -> int:
        """Privatise the page containing ``va``; returns the new PA."""
        page_va = align_down(va, PAGE_SIZE)
        frame = self.kernel.phys.alloc_frame()
        # (Data copy would happen here; contents are not modelled.)
        self.page_table.set_l1(page_va, frame, Perm.READ_WRITE)
        self._private_pages[page_va] = frame
        return frame + (va - page_va)

    def _duplicate_mapping(self, child: "Process", vma) -> None:
        """Install ``vma``'s translations into the child's page table."""
        if vma.identity:
            child.page_table.map_identity_range(vma.start, vma.size, vma.perm)
            return
        # Copy translations page by page, coalescing runs of contiguous PAs.
        run_va = run_pa = None
        run_len = 0
        for offset in range(0, vma.size, PAGE_SIZE):
            result = self.page_table.walk(vma.start + offset)
            if not result.ok:
                continue
            if run_va is not None and result.pa == run_pa + run_len:
                run_len += PAGE_SIZE
                continue
            if run_va is not None:
                child.page_table.map_range(run_va, run_pa, run_len, vma.perm)
            run_va = vma.start + offset
            run_pa = result.pa
            run_len = PAGE_SIZE
        if run_va is not None:
            child.page_table.map_range(run_va, run_pa, run_len, vma.perm)

    def _backing_chunks(self, vma) -> list[tuple[int, int]]:
        """Physical chunks backing a VMA (for COW refcounting)."""
        if vma.identity:
            return [(vma.start, vma.size)]
        chunks: list[tuple[int, int]] = []
        for alloc in self.vmm.allocations():
            if alloc.va == vma.start:
                return list(alloc.phys_chunks)
        # Segments mapped outside the VMM (code/data/stack).
        result = self.page_table.walk(vma.start)
        if result.ok:
            chunks.append((result.pa, vma.size))
        return chunks
