"""Kernel-side guest fault handler (the OS half of the PRI round trip).

The IOMMU's :class:`~repro.hw.fault_queue.FaultPath` delivers recoverable
guest faults here.  The handler classifies each fault with a fresh
page-table walk (the hardware walker's memo deliberately drops the
``swapped`` flag, so only an authoritative walk can tell a swapped page
from an unmapped one) and services it:

* **major** — an unmapped page inside a demand allocation: back the
  containing policy-size chunk via
  :meth:`~repro.kernel.vm_syscalls.VMM.populate_for_fault` (only reached
  with ``MemPolicy(demand_faulting=True)``; eager policies never leave
  such holes).
* **swap** — a page the reclaimer swapped out: bring it back through
  :meth:`~repro.kernel.reclaim.Reclaimer.swap_in`, mirroring the CPU-side
  path in :meth:`repro.kernel.process.Process.access`.
* **spurious** — the page is mapped with sufficient permission by the
  time the walk runs (e.g. a chaos-injected fault, or a fault raced by a
  coalesced service): nothing to do, the access retries.
* **violation** — anything else (permission denied, no backing
  allocation, swapped page but no reclaimer): the handler returns
  ``None`` and the fault path escalates to a structured
  :class:`~repro.common.errors.AccessViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.perms import allows
from repro.obs import core as obs_core


@dataclass
class FaultHandlerStats:
    """Counters for one fault handler's lifetime."""

    major: int = 0        # demand page-ins
    swap: int = 0         # swap-ins via the reclaimer
    spurious: int = 0     # already serviceable on arrival
    violations: int = 0   # refused (escalated by the fault path)


@dataclass
class FaultHandler:
    """Services guest faults for one process; see the module docstring."""

    kernel: object
    process: object
    stats: FaultHandlerStats = field(default_factory=FaultHandlerStats)

    def service(self, va: int, access: str) -> str | None:
        """Service one fault; returns its kind, or None for a violation."""
        kind = self._classify_and_service(va, access)
        if obs_core.ENABLED:
            obs_core.REGISTRY.counter("kernel.fault.serviced",
                                      kind=kind or "violation").inc()
        return kind

    def _classify_and_service(self, va: int, access: str) -> str | None:
        result = self.process.page_table.walk(va)
        if result.ok:
            if allows(result.perm, access):
                self.stats.spurious += 1
                return "spurious"
            self.stats.violations += 1
            return None
        if result.swapped:
            reclaimer = getattr(self.kernel, "reclaimer", None)
            if reclaimer is not None:
                reclaimer.swap_in(self.process, va)
                if allows(result.perm, access):
                    self.stats.swap += 1
                    return "swap"
            self.stats.violations += 1
            return None
        if self.process.vmm.populate_for_fault(va):
            # Re-walk: the chunk is mapped now, but the access must still
            # be permitted by the VMA's protection.
            fresh = self.process.page_table.walk(va)
            if fresh.ok and allows(fresh.perm, access):
                self.stats.major += 1
                return "major"
        self.stats.violations += 1
        return None
