"""The kernel facade: physical memory, processes and COW frame sharing.

A :class:`Kernel` owns one :class:`PhysicalMemory` and spawns processes
under a memory-management policy.  It also hosts the machinery that spans
processes: deterministic per-purpose RNGs (ASLR entropy), COW frame
refcounts, and — for the DVM-BM configuration — the flat permission bitmap
shared with the IOMMU.
"""

from __future__ import annotations

import itertools
import zlib

import numpy as np

from repro.common.consts import PAGE_SIZE
from repro.kernel.phys import PhysicalMemory
from repro.kernel.process import Process
from repro.kernel.vm_syscalls import MemPolicy

#: Default machine size: the paper's accelerator system has 32 GB (Table 2).
DEFAULT_PHYS_BYTES = 32 << 30


class Kernel:
    """The simulated operating system instance.

    Parameters
    ----------
    phys_bytes:
        Physical memory capacity.
    policy:
        Default memory-management policy for spawned processes.
    seed:
        Master seed; all per-process ASLR entropy derives from it, so runs
        are bit-for-bit reproducible.
    perm_bitmap_factory:
        Optional callable ``(kernel, process) -> bitmap`` supplying the
        DVM-BM permission bitmap for each process (see
        :mod:`repro.hw.bitmap`).
    """

    def __init__(self, phys_bytes: int = DEFAULT_PHYS_BYTES,
                 policy: MemPolicy | None = None, seed: int = 0,
                 perm_bitmap_factory=None, phys_base: int = 0):
        self.phys = PhysicalMemory(size=phys_bytes, base=phys_base)
        self.policy = policy or MemPolicy()
        self.seed = seed
        self.perm_bitmap_factory = perm_bitmap_factory
        self.processes: list[Process] = []
        #: Optional swap-based reclaimer (see :mod:`repro.kernel.reclaim`);
        #: when set, processes transparently swap pages back in on access.
        self.reclaimer = None
        self._pids = itertools.count(1)
        # COW frame sharing: (pa, size) -> number of extra owners.
        self._shared_chunks: dict[tuple[int, int], int] = {}

    # -- process management ------------------------------------------------------

    def spawn(self, policy: MemPolicy | None = None, aspace=None,
              name: str = "") -> Process:
        """Create a fresh process (posix_spawn semantics: nothing inherited)."""
        pid = next(self._pids)
        proc = Process(self, pid, policy or self.policy, aspace=aspace,
                       name=name)
        self.processes.append(proc)
        return proc

    def new_rng(self, purpose: str) -> np.random.Generator:
        """Deterministic RNG derived from the master seed and a purpose tag."""
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, zlib.crc32(purpose.encode())])
        )

    def bitmap_for(self, process: Process):
        """Permission bitmap for a process, if the DVM-BM factory is set."""
        if self.perm_bitmap_factory is None:
            return None
        return self.perm_bitmap_factory(self, process)

    # -- COW frame sharing ---------------------------------------------------------

    def share_frames(self, chunk: tuple[int, int]) -> None:
        """Record one more owner of a physical chunk (fork)."""
        pa, size = chunk
        if size <= 0 or pa % PAGE_SIZE:
            raise ValueError(f"bad shared chunk ({pa:#x}, {size:#x})")
        self._shared_chunks[chunk] = self._shared_chunks.get(chunk, 0) + 1

    def release_frames(self, chunk: tuple[int, int]) -> None:
        """Drop one owner of a shared chunk (child exit).

        Frames are physically freed by the original owner's munmap path, so
        releasing here only decrements the share count.
        """
        count = self._shared_chunks.get(chunk, 0)
        if count <= 1:
            self._shared_chunks.pop(chunk, None)
        else:
            self._shared_chunks[chunk] = count - 1

    def shared_owner_count(self, chunk: tuple[int, int]) -> int:
        """Number of extra owners currently sharing a chunk."""
        return self._shared_chunks.get(chunk, 0)
