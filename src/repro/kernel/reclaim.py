"""Low-memory reclamation and identity re-establishment (Section 4.3.2).

The paper sketches — but does not implement — the low-memory path: "to
reclaim memory, the OS could convert permission entries to standard PTEs
and swap out memory ... once there is sufficient free memory, the OS can
reorganize memory to reestablish identity mappings."  This module
implements that sketch:

* :meth:`Reclaimer.reclaim_allocation` — convert a victim's PEs to standard
  PTEs, mark its pages swapped out and free the frames (the allocation is
  demoted to demand-paged bookkeeping);
* :meth:`Reclaimer.swap_in` — demand swap-in on access: the page returns at
  whatever frame is available, so identity is generally broken — exactly
  the degradation the paper accepts;
* :meth:`Reclaimer.reestablish_identity` — once memory frees up, migrate a
  fully-resident allocation's frames back to PA == VA and re-install its
  Permission Entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.consts import PAGE_SIZE
from repro.common.perms import Perm
from repro.common.errors import ReproError
from repro.kernel.process import Process
from repro.kernel.vm_syscalls import Allocation
from repro.obs import core as obs_core


class ReclaimError(ReproError):
    """Raised on invalid reclamation operations."""


@dataclass
class SwapSlot:
    """One swapped-out page (contents are not modelled, only residency)."""

    perm: Perm
    was_identity: bool


@dataclass
class ReclaimStats:
    """Counters for the reclamation machinery."""

    pages_swapped_out: int = 0
    pages_swapped_in: int = 0
    bytes_reclaimed: int = 0
    identity_reestablished: int = 0


@dataclass
class Reclaimer:
    """Swap-based reclamation for one kernel."""

    kernel: object
    stats: ReclaimStats = field(default_factory=ReclaimStats)
    _swap: dict[tuple[int, int], SwapSlot] = field(default_factory=dict)

    # -- reclaiming ---------------------------------------------------------------

    def reclaim_allocation(self, process: Process,
                           alloc: Allocation) -> int:
        """Swap out one identity allocation entirely; returns bytes freed."""
        if not alloc.identity:
            raise ReclaimError("victims must be identity-mapped allocations")
        pages = process.page_table.swap_out_range(alloc.va, alloc.size)
        freed = 0
        for page_va, old_pa, was_identity in pages:
            perm = process.page_table.walk(page_va).perm
            self._swap[(process.pid, page_va)] = SwapSlot(
                perm=perm, was_identity=was_identity)
            self.kernel.phys.free_frame(old_pa)
            freed += PAGE_SIZE
        if process.vmm.perm_bitmap is not None:
            # DVM-BM validates identity accesses against the flat bitmap
            # alone; a stale grant here would let the IOMMU sail past a
            # swapped-out page without faulting.
            process.vmm.perm_bitmap.clear_range(alloc.va, alloc.size)
        self._demote_bookkeeping(process, alloc)
        self.stats.pages_swapped_out += len(pages)
        self.stats.bytes_reclaimed += freed
        if obs_core.ENABLED:
            obs_core.REGISTRY.counter(
                "kernel.reclaim.pages_swapped_out").inc(len(pages))
            obs_core.REGISTRY.counter(
                "kernel.reclaim.bytes_reclaimed").inc(freed)
        return freed

    def reclaim(self, process: Process, target_bytes: int) -> int:
        """Reclaim at least ``target_bytes`` from a process if possible.

        Victims are identity-mapped heap allocations, largest first (they
        free the most contiguity per page-table surgery).
        """
        victims = sorted(
            (a for a in process.vmm.allocations() if a.identity),
            key=lambda a: a.size, reverse=True,
        )
        freed = 0
        for alloc in victims:
            if freed >= target_bytes:
                break
            freed += self.reclaim_allocation(process, alloc)
        return freed

    # -- swap-in ------------------------------------------------------------------

    def swap_in(self, process: Process, va: int) -> int:
        """Demand swap-in of the page containing ``va``; returns the new PA.

        The frame comes from wherever the allocator has space, so the page
        usually returns non-identity — DAV falls back to translation for
        it until :meth:`reestablish_identity` runs.
        """
        page_va = va & ~(PAGE_SIZE - 1)
        slot = self._swap.pop((process.pid, page_va), None)
        if slot is None:
            raise ReclaimError(f"page {page_va:#x} is not in swap")
        frame = self.kernel.phys.alloc_frame()
        process.page_table.swap_in_page(page_va, frame)
        alloc = self._owning_allocation(process, page_va)
        if alloc is not None:
            alloc.phys_chunks.append((frame, PAGE_SIZE))
        self.stats.pages_swapped_in += 1
        if obs_core.ENABLED:
            obs_core.REGISTRY.counter("kernel.reclaim.pages_swapped_in").inc()
        return frame + (va - page_va)

    def swap_in_allocation(self, process: Process,
                           alloc: Allocation) -> int:
        """Swap in every still-swapped page of an allocation."""
        count = 0
        for page_va in range(alloc.va, alloc.va + alloc.size, PAGE_SIZE):
            if (process.pid, page_va) in self._swap:
                self.swap_in(process, page_va)
                count += 1
        return count

    def is_swapped(self, process: Process, va: int) -> bool:
        """Whether the page containing ``va`` is currently swapped out."""
        return (process.pid, va & ~(PAGE_SIZE - 1)) in self._swap

    # -- re-establishing identity ----------------------------------------------------

    def reestablish_identity(self, process: Process,
                             alloc: Allocation) -> bool:
        """Migrate an allocation back to PA == VA and restore its PEs.

        Every page must be resident (use :meth:`swap_in_allocation` first).
        Returns False — with nothing changed — when some frame of the
        identity range is owned by someone else.
        """
        table = process.page_table
        resident: list[tuple[int, int]] = []
        perm = None
        for page_va in range(alloc.va, alloc.va + alloc.size, PAGE_SIZE):
            if (process.pid, page_va) in self._swap:
                raise ReclaimError(
                    f"page {page_va:#x} is swapped out; swap in first")
            result = table.walk(page_va)
            if not result.ok:
                raise ReclaimError(f"page {page_va:#x} is unmapped")
            perm = result.perm if perm is None else perm
            resident.append((page_va, result.pa))
        # The allocation's frames may permute within the target range (a
        # swap-in often reuses the just-freed identity frames), so work in
        # sets: frames we must claim are target-minus-owned; frames we must
        # release are owned-minus-target.  Check claimability first, then
        # commit — claims of distinct pages are independent.
        target = set(range(alloc.va, alloc.va + alloc.size, PAGE_SIZE))
        owned = {pa for _va, pa in resident}
        to_claim = sorted(target - owned)
        to_free = sorted(owned - target)
        phys = self.kernel.phys
        if any(phys.allocator._free_ancestor(frame, 0) is None
               for frame in to_claim):
            return False
        for frame in to_claim:
            claimed = phys.alloc_exact(frame, PAGE_SIZE)
            assert claimed, "checked free above"
        # Migrate (data copy not modelled): drop the old mapping, re-install
        # the identity range with PEs, release the scattered frames.
        table.unmap_range(alloc.va, alloc.size)
        restored = perm if perm is not None else Perm.READ_WRITE
        table.map_identity_range(alloc.va, alloc.size, restored)
        if process.vmm.perm_bitmap is not None:
            process.vmm.perm_bitmap.set_range(alloc.va, alloc.size, restored)
        for frame in to_free:
            phys.free_frame(frame)
        self._promote_bookkeeping(process, alloc)
        self.stats.identity_reestablished += 1
        if obs_core.ENABLED:
            obs_core.REGISTRY.counter(
                "kernel.reclaim.identity_reestablished").inc()
        return True

    # -- internals --------------------------------------------------------------------

    @staticmethod
    def _owning_allocation(process: Process, va: int) -> Allocation | None:
        for alloc in process.vmm.allocations():
            if alloc.va <= va < alloc.va + alloc.size:
                return alloc
        return None

    @staticmethod
    def _demote_bookkeeping(process: Process, alloc: Allocation) -> None:
        alloc.identity = False
        alloc.vma.identity = False
        stats = process.vmm.stats
        stats.identity_bytes -= alloc.size
        stats.identity_allocs -= 1
        stats.demand_bytes += alloc.size
        stats.demand_allocs += 1

    @staticmethod
    def _promote_bookkeeping(process: Process, alloc: Allocation) -> None:
        alloc.identity = True
        alloc.vma.identity = True
        alloc.phys_chunks.clear()
        stats = process.vmm.stats
        stats.identity_bytes += alloc.size
        stats.identity_allocs += 1
        stats.demand_bytes -= alloc.size
        stats.demand_allocs -= 1
