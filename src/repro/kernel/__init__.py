"""The OS substrate: buddy allocator, page tables, address spaces, processes.

This package is the reproduction's stand-in for the paper's modified Linux
4.10: eager contiguous allocation (Section 4.3.1), the flexible address
space (4.3.2), identity mapping (Figure 7), Permission Entries in the page
table (4.1.1), always-mmap malloc, and fork/COW semantics (Section 5).
"""

from repro.kernel.address_space import VMA, AddressSpace
from repro.kernel.buddy import BuddyAllocator, BuddyStats
from repro.kernel.identity import IdentityMapper, IdentityStats
from repro.kernel.kernel import DEFAULT_PHYS_BYTES, Kernel
from repro.kernel.malloc import Malloc, MallocError, size_class
from repro.kernel.page_table import (
    PE_FORMATS,
    LeafPTE,
    PageTable,
    PageTableNode,
    PermissionEntry,
    SwappedPTE,
    TablePointer,
    WalkResult,
)
from repro.kernel.phys import PhysicalMemory
from repro.kernel.process import DEFAULT_STACK_SIZE, Process, Segment
from repro.kernel.reclaim import Reclaimer, ReclaimError, ReclaimStats
from repro.kernel.vm_syscalls import VMM, Allocation, MemPolicy

__all__ = [
    "VMA",
    "AddressSpace",
    "BuddyAllocator",
    "BuddyStats",
    "IdentityMapper",
    "IdentityStats",
    "DEFAULT_PHYS_BYTES",
    "Kernel",
    "Malloc",
    "MallocError",
    "size_class",
    "PE_FORMATS",
    "LeafPTE",
    "PageTable",
    "PageTableNode",
    "PermissionEntry",
    "SwappedPTE",
    "TablePointer",
    "WalkResult",
    "PhysicalMemory",
    "Reclaimer",
    "ReclaimError",
    "ReclaimStats",
    "DEFAULT_STACK_SIZE",
    "Process",
    "Segment",
    "VMM",
    "Allocation",
    "MemPolicy",
]
