"""x86-64 4-level page tables with Permission Entries (paper Section 4.1.1).

Page-table nodes are real 4 KB frames allocated from :class:`PhysicalMemory`
(tagged ``page_table``), so the hardware walk caches — which are physically
indexed — see faithful entry addresses, and Table 1's page-table-size
accounting falls out of the frame counts.

Three entry kinds exist at any level:

* :class:`TablePointer` — points to the next-lower node (a PDE/PDPTE/PML4E).
* :class:`LeafPTE` — terminates translation; maps a 4 KB page at L1, a 2 MB
  huge page at L2, or a 1 GB huge page at L3.
* :class:`PermissionEntry` — the paper's new leaf format: sixteen 2-bit
  permission fields for sixteen aligned sub-regions of the entry's VA span,
  with the implicit guarantee that mapped memory in the span is
  identity-mapped (PA == VA).

Identity-mapped ranges are installed with PEs at the highest level whose
1/16-span granularity the range respects (128 KB at L2, 64 MB at L3, 32 GB
at L4); unaligned remainders fall back to regular identity PTEs whose
PFN == VPN, so a walk that reaches them still validates without a separate
translation walk (Section 4.1.1, "this avoids a separate walk").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.consts import (
    ENTRIES_PER_NODE,
    LEVEL_SPAN,
    NODE_SIZE,
    PAGE_SIZE,
    PE_FIELDS,
    PTE_SIZE,
    level_base,
    level_index,
)
from repro.common.errors import MappingError
from repro.common.perms import Perm
from repro.common.util import is_aligned
from repro.kernel.phys import PhysicalMemory

#: Leaf page sizes by page-table level (L1: 4 KB, L2: 2 MB, L3: 1 GB).
LEAF_LEVEL_FOR_SIZE = {LEVEL_SPAN[1]: 1, LEVEL_SPAN[2]: 2, LEVEL_SPAN[3]: 3}


@dataclass
class LeafPTE:
    """A terminal translation entry mapping one (possibly huge) page."""

    pa: int          # physical base address of the mapped page
    perm: Perm
    level: int       # 1, 2 or 3; determines the page size

    @property
    def page_size(self) -> int:
        """Size of the page this entry maps."""
        return LEVEL_SPAN[self.level]


@dataclass
class PermissionEntry:
    """A Permission Entry: per-sub-region permission fields.

    The paper's PE carries sixteen 2-bit fields (Figure 6).  The
    "Alternatives" of Section 4.1.1 — reusing spare PTE bits instead of a
    new format — carry fewer: four 512 KB regions at L2, eight 128 MB
    regions at L3.  ``num_fields`` selects the variant; sub-regions are
    always ``LEVEL_SPAN[level] / num_fields``.
    """

    fields: list[Perm]
    level: int                  # 2, 3 or 4
    num_fields: int = PE_FIELDS

    def __post_init__(self):
        if len(self.fields) != self.num_fields:
            raise ValueError(
                f"this Permission Entry has {self.num_fields} fields, got "
                f"{len(self.fields)}"
            )

    @property
    def region_size(self) -> int:
        """Bytes covered by one permission field."""
        return LEVEL_SPAN[self.level] // self.num_fields

    def field_index(self, va: int) -> int:
        """Which field covers ``va``."""
        return (va - level_base(va, self.level)) // self.region_size

    def perm_for(self, va: int) -> Perm:
        """Permission of the sub-region containing ``va``."""
        return self.fields[self.field_index(va)]

    def is_empty(self) -> bool:
        """True when every field is NONE (entry can be reclaimed)."""
        return all(p == Perm.NONE for p in self.fields)


@dataclass
class SwappedPTE:
    """A not-present L1 entry whose page was swapped out (reclamation).

    Keeps the permission so swap-in can restore it; accesses fault with
    ``swapped=True`` so the kernel's reclaimer can bring the page back
    (Section 4.3.2's low-memory path, which the paper describes but does
    not implement).
    """

    perm: Perm
    was_identity: bool


@dataclass
class TablePointer:
    """An internal entry pointing at the next-lower page-table node."""

    node: "PageTableNode"


@dataclass
class PageTableNode:
    """One 4 KB page-table node (512 entries) with physical backing."""

    level: int
    phys_addr: int
    entries: dict[int, object] = field(default_factory=dict)

    def entry_addr(self, index: int) -> int:
        """Physical address of the entry at ``index`` (for walk caches)."""
        return self.phys_addr + index * PTE_SIZE

    def live_entries(self) -> int:
        """Number of non-vacant entries."""
        return len(self.entries)


@dataclass
class WalkResult:
    """Outcome of a page-table walk for a single VA."""

    va: int
    ok: bool                 # a mapping (PE or leaf) was found
    perm: Perm               # permission found (NONE on fault)
    pa: int | None           # translated PA (== va when validated by a PE)
    level: int               # level at which the walk terminated
    is_pe: bool              # terminated at a Permission Entry
    identity: bool           # PA == VA for this mapping
    visited: list[int]       # physical addresses of the entries touched
    swapped: bool = False    # faulted on a swapped-out page

    @property
    def depth(self) -> int:
        """Number of page-table accesses the walk performed."""
        return len(self.visited)


#: Permission-field counts by level for each PE format (Section 4.1.1):
#: the paper's 16-field PE at L2-L4, and the spare-PTE-bits alternative
#: (four 512 KB regions at L2, eight 128 MB at L3, nothing at L4).
PE_FORMATS = {
    "pe16": {2: 16, 3: 16, 4: 16},
    "spare_bits": {2: 4, 3: 8},
}


class PageTable:
    """A 4-level page table bound to a physical memory for node frames."""

    def __init__(self, phys: PhysicalMemory, use_pes: bool = True,
                 pe_format: str = "pe16"):
        if pe_format not in PE_FORMATS:
            raise ValueError(f"unknown PE format {pe_format!r}; "
                             f"have {sorted(PE_FORMATS)}")
        self.phys = phys
        self.use_pes = use_pes
        self.pe_format = pe_format
        self._pe_fields = PE_FORMATS[pe_format]
        self.root = self._new_node(4)

    # -- mapping --------------------------------------------------------------

    def map_page(self, va: int, pa: int, perm: Perm,
                 page_size: int = PAGE_SIZE) -> None:
        """Install a leaf PTE mapping ``va`` -> ``pa`` with ``perm``."""
        level = LEAF_LEVEL_FOR_SIZE.get(page_size)
        if level is None:
            raise MappingError(f"unsupported page size {page_size}")
        if not is_aligned(va, page_size) or not is_aligned(pa, page_size):
            raise MappingError(
                f"va {va:#x} / pa {pa:#x} not aligned to page size {page_size:#x}"
            )
        node = self._descend_to(va, level, create=True)
        index = level_index(va, level)
        existing = node.entries.get(index)
        if existing is not None:
            raise MappingError(f"va {va:#x} is already mapped")
        node.entries[index] = LeafPTE(pa=pa, perm=perm, level=level)

    def map_range(self, va: int, pa: int, size: int, perm: Perm,
                  page_size: int = PAGE_SIZE) -> None:
        """Map ``size`` bytes with fixed-size leaf PTEs."""
        if not is_aligned(size, page_size):
            raise MappingError(f"size {size:#x} not a multiple of {page_size:#x}")
        for offset in range(0, size, page_size):
            self.map_page(va + offset, pa + offset, perm, page_size)

    def map_range_best_effort(self, va: int, pa: int, size: int, perm: Perm,
                              preferred_page_size: int = PAGE_SIZE) -> dict[int, int]:
        """Map a range using huge pages where alignment allows, 4 KB elsewhere.

        Models THP-style mapping for the 2M/1G baseline configurations: the
        co-aligned middle of the range gets ``preferred_page_size`` pages,
        head and tail get 4 KB pages.  Returns a histogram
        ``{page_size: count}`` of pages installed.
        """
        if not is_aligned(size, PAGE_SIZE):
            raise MappingError("size must be page aligned")
        if (va - pa) % preferred_page_size != 0:
            # VA and PA disagree modulo the huge-page size: no huge pages fit.
            self.map_range(va, pa, size, perm, PAGE_SIZE)
            return {PAGE_SIZE: size // PAGE_SIZE}
        counts: dict[int, int] = {}
        end = va + size
        cursor = va
        huge = preferred_page_size
        head_end = min(end, -(-cursor // huge) * huge)  # align_up(cursor, huge)
        while cursor < head_end:
            self.map_page(cursor, pa + (cursor - va), perm, PAGE_SIZE)
            counts[PAGE_SIZE] = counts.get(PAGE_SIZE, 0) + 1
            cursor += PAGE_SIZE
        while cursor + huge <= end:
            self.map_page(cursor, pa + (cursor - va), perm, huge)
            counts[huge] = counts.get(huge, 0) + 1
            cursor += huge
        while cursor < end:
            self.map_page(cursor, pa + (cursor - va), perm, PAGE_SIZE)
            counts[PAGE_SIZE] = counts.get(PAGE_SIZE, 0) + 1
            cursor += PAGE_SIZE
        return counts

    def map_identity_range(self, va: int, size: int, perm: Perm) -> None:
        """Map an identity (PA == VA) range, preferring Permission Entries.

        Greedy top-down covering: at each level 4..2, a span-aligned chunk
        whose intersection with the range is exactly a whole number of
        1/16-span sub-regions — and whose entry is vacant or an existing
        compatible PE — is covered by setting PE fields.  Whatever remains
        is mapped with regular identity 4 KB PTEs (PFN == VPN).

        With ``use_pes=False`` the whole range gets identity 4 KB PTEs,
        which is the Table 1 baseline.
        """
        if not is_aligned(va, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise MappingError("identity ranges must be page aligned")
        if not self.use_pes:
            self.map_range(va, va, size, perm, PAGE_SIZE)
            return
        self._cover_identity(self.root, va, va + size, perm)

    def _cover_identity(self, node: PageTableNode, start: int, end: int,
                        perm: Perm) -> None:
        level = node.level
        span = LEVEL_SPAN[level]
        nfields = self._pe_fields.get(level)
        sub = span // nfields if nfields else None
        cursor = start
        while cursor < end:
            chunk_base = level_base(cursor, level)
            chunk_end = min(end, chunk_base + span)
            index = level_index(cursor, level)
            existing = node.entries.get(index)
            # The covered slice must start and stop on sub-region boundaries
            # within this chunk, and must not collide with a non-PE entry.
            pe_ok = (
                sub is not None
                and cursor % sub == 0
                and (chunk_end % sub == 0)
                and isinstance(existing, (PermissionEntry, type(None)))
            )
            if pe_ok:
                if existing is None:
                    entry = PermissionEntry(
                        fields=[Perm.NONE] * nfields, level=level,
                        num_fields=nfields,
                    )
                    node.entries[index] = entry
                else:
                    entry = existing
                first = (cursor - chunk_base) // sub
                last = (chunk_end - chunk_base) // sub  # exclusive
                for f in range(first, last):
                    if entry.fields[f] != Perm.NONE:
                        raise MappingError(
                            f"PE field overlap at va {chunk_base + f * sub:#x}"
                        )
                    entry.fields[f] = perm
            elif level > 1:
                if isinstance(existing, LeafPTE):
                    raise MappingError(
                        f"range [{cursor:#x}, {chunk_end:#x}) collides with an "
                        f"existing L{level} huge page"
                    )
                if isinstance(existing, PermissionEntry):
                    # An earlier allocation covered this chunk with a PE and
                    # the new range is not sub-region aligned: split the PE
                    # into a child table so both can coexist (the same
                    # surgery COW uses).
                    node.entries[index] = self._split_entry(existing, level,
                                                            cursor)
                child = self._child(node, index, create=True)
                if level - 1 == 1:
                    # L1: regular identity PTEs, no PEs below 128 KB grain.
                    for page in range(cursor, chunk_end, PAGE_SIZE):
                        pidx = level_index(page, 1)
                        if pidx in child.entries:
                            raise MappingError(f"va {page:#x} is already mapped")
                        child.entries[pidx] = LeafPTE(pa=page, perm=perm, level=1)
                else:
                    self._cover_identity(child, cursor, chunk_end, perm)
            else:  # pragma: no cover - _cover_identity starts at level 4
                raise MappingError("cannot cover identity range at L1 directly")
            cursor = chunk_end

    # -- protection changes and demotion (fork/COW support) --------------------

    def protect_range(self, va: int, size: int, perm: Perm) -> None:
        """Change the permission of every mapping in the range.

        Used by fork to drop private writable mappings to read-only for
        copy-on-write.  PE fields covered by the range must align to the PE
        sub-region granularity (true for ranges installed as one VMA).
        Unmapped gaps are left untouched.
        """
        if not is_aligned(va, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise MappingError("protect ranges must be page aligned")
        self._protect(self.root, va, va + size, perm)

    def _protect(self, node: PageTableNode, start: int, end: int,
                 perm: Perm) -> None:
        level = node.level
        span = LEVEL_SPAN[level]
        cursor = start
        while cursor < end:
            chunk_base = level_base(cursor, level)
            chunk_end = min(end, chunk_base + span)
            index = level_index(cursor, level)
            entry = node.entries.get(index)
            if entry is None:
                pass
            elif isinstance(entry, PermissionEntry):
                sub = entry.region_size
                if cursor % sub or chunk_end % sub:
                    raise MappingError(
                        f"protect of [{cursor:#x}, {chunk_end:#x}) is not "
                        f"aligned to the PE sub-region size {sub:#x}"
                    )
                first = (cursor - chunk_base) // sub
                last = (chunk_end - chunk_base) // sub
                for f in range(first, last):
                    if entry.fields[f] != Perm.NONE:
                        entry.fields[f] = perm
            elif isinstance(entry, SwappedPTE):
                entry.perm = perm
            elif isinstance(entry, LeafPTE):
                if cursor != chunk_base or chunk_end != chunk_base + entry.page_size:
                    raise MappingError(
                        f"partial protect of a {entry.page_size:#x}-byte page"
                    )
                entry.perm = perm
            else:
                self._protect(entry.node, cursor, chunk_end, perm)
            cursor = chunk_end

    def demote_to_l1(self, va: int) -> None:
        """Split the mapping covering ``va`` until it is a 4 KB L1 PTE.

        Permission Entries split one level at a time: an L3 PE becomes an L3
        table pointer whose allocated 2 MB chunks get L2 PEs with uniform
        fields; huge leaf PTEs split into 512 next-level leaves.  This is
        the page-table surgery behind copy-on-write of identity-mapped
        memory (paper Section 5): after demotion, one L1 entry can be
        repointed at a private copy while its neighbours stay identity
        mapped.
        """
        while True:
            node = self.root
            while True:
                index = level_index(va, node.level)
                entry = node.entries.get(index)
                if entry is None:
                    raise MappingError(f"va {va:#x} is not mapped")
                if isinstance(entry, TablePointer):
                    node = entry.node
                    continue
                break
            if node.level == 1:
                return
            node.entries[index] = self._split_entry(entry, node.level, va)

    def _split_entry(self, entry, level: int, va: int) -> TablePointer:
        """Replace a level-``level`` PE or huge leaf with a child table."""
        child = self._new_node(level - 1)
        chunk_base = level_base(va, level)
        child_span = LEVEL_SPAN[level - 1]
        if isinstance(entry, PermissionEntry):
            for child_index in range(ENTRIES_PER_NODE):
                child_va = chunk_base + child_index * child_span
                perm = entry.perm_for(child_va)
                if perm == Perm.NONE:
                    continue
                nfields = self._pe_fields.get(level - 1)
                if level - 1 >= 2 and nfields:
                    # One level down, a PE sub-region is >= the child span,
                    # so the child entry's fields are uniform.
                    child.entries[child_index] = PermissionEntry(
                        fields=[perm] * nfields, level=level - 1,
                        num_fields=nfields,
                    )
                else:
                    child.entries[child_index] = LeafPTE(
                        pa=child_va, perm=perm, level=1
                    )
        elif isinstance(entry, LeafPTE):
            for child_index in range(ENTRIES_PER_NODE):
                child.entries[child_index] = LeafPTE(
                    pa=entry.pa + child_index * child_span,
                    perm=entry.perm,
                    level=level - 1,
                )
        else:
            raise MappingError("only PEs and huge leaves can be split")
        return TablePointer(node=child)

    def set_l1(self, va: int, pa: int, perm: Perm) -> None:
        """Overwrite the L1 entry for ``va`` (demoting larger mappings first).

        This is the COW write path: the faulting page is repointed at its
        private copy with write permission.
        """
        self.demote_to_l1(va)
        node = self._descend_to(va, 1, create=True)
        node.entries[level_index(va, 1)] = LeafPTE(
            pa=pa & ~(PAGE_SIZE - 1), perm=perm, level=1
        )

    # -- swapping (low-memory reclamation, Section 4.3.2) -----------------------

    def swap_out_range(self, va: int, size: int) -> list[tuple[int, int, bool]]:
        """Mark every mapped page in the range swapped out.

        PEs covering the range are first converted to standard PTEs (the
        paper's "convert permission entries to standard PTEs and swap out
        memory").  Returns ``(page_va, old_pa, was_identity)`` for each
        page so the caller can free the frames; unmapped gaps are skipped.
        """
        if not is_aligned(va, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise MappingError("swap ranges must be page aligned")
        out: list[tuple[int, int, bool]] = []
        for page in range(va, va + size, PAGE_SIZE):
            result = self.walk(page)
            if not result.ok:
                continue
            self.demote_to_l1(page)
            node = self._descend_to(page, 1, create=False)
            index = level_index(page, 1)
            entry = node.entries[index]
            was_identity = entry.pa == page
            out.append((page, entry.pa, was_identity))
            node.entries[index] = SwappedPTE(perm=entry.perm,
                                             was_identity=was_identity)
        return out

    def swap_in_page(self, va: int, pa: int) -> Perm:
        """Restore a swapped-out page at a (possibly different) frame.

        Returns the page's permission.  The restored mapping is identity
        only if ``pa == va`` — reclamation generally breaks identity until
        the OS reorganises memory (:mod:`repro.kernel.reclaim`).
        """
        node = self._descend_to(va & ~(PAGE_SIZE - 1), 1, create=False)
        index = level_index(va, 1)
        entry = node.entries.get(index)
        if not isinstance(entry, SwappedPTE):
            raise MappingError(f"va {va:#x} is not swapped out")
        node.entries[index] = LeafPTE(pa=pa & ~(PAGE_SIZE - 1),
                                      perm=entry.perm, level=1)
        return entry.perm

    # -- unmapping ------------------------------------------------------------

    def unmap_range(self, va: int, size: int) -> None:
        """Remove all mappings (PTEs and PE fields) covering the range.

        Page-table nodes left empty are freed back to physical memory.
        The range must be page aligned and, where it intersects PEs, aligned
        to the PE sub-region granularity.
        """
        if not is_aligned(va, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise MappingError("unmap ranges must be page aligned")
        self._clear(self.root, va, va + size)

    def _clear(self, node: PageTableNode, start: int, end: int) -> None:
        level = node.level
        span = LEVEL_SPAN[level]
        cursor = start
        while cursor < end:
            chunk_base = level_base(cursor, level)
            chunk_end = min(end, chunk_base + span)
            index = level_index(cursor, level)
            entry = node.entries.get(index)
            if entry is None:
                pass
            elif isinstance(entry, PermissionEntry):
                sub = entry.region_size
                if cursor % sub or chunk_end % sub:
                    raise MappingError(
                        f"unmap of [{cursor:#x}, {chunk_end:#x}) is not aligned "
                        f"to the PE sub-region size {sub:#x}"
                    )
                first = (cursor - chunk_base) // sub
                last = (chunk_end - chunk_base) // sub
                for f in range(first, last):
                    entry.fields[f] = Perm.NONE
                if entry.is_empty():
                    del node.entries[index]
            elif isinstance(entry, SwappedPTE):
                del node.entries[index]
            elif isinstance(entry, LeafPTE):
                if cursor != chunk_base or chunk_end != chunk_base + entry.page_size:
                    raise MappingError(
                        f"partial unmap of a {entry.page_size:#x}-byte page "
                        f"at {chunk_base:#x}"
                    )
                del node.entries[index]
            else:  # TablePointer
                child = entry.node
                self._clear(child, cursor, chunk_end)
                if not child.entries:
                    self.phys.free_frame(child.phys_addr, purpose="page_table")
                    del node.entries[index]
            cursor = chunk_end

    # -- walking --------------------------------------------------------------

    def walk(self, va: int) -> WalkResult:
        """Walk the table for ``va``, recording every entry touched.

        Terminates at the first PE or leaf PTE (paper: "a page walk ends on
        encountering a PE").
        """
        node = self.root
        visited: list[int] = []
        while True:
            index = level_index(va, node.level)
            visited.append(node.entry_addr(index))
            entry = node.entries.get(index)
            if entry is None:
                return WalkResult(va=va, ok=False, perm=Perm.NONE, pa=None,
                                  level=node.level, is_pe=False,
                                  identity=False, visited=visited)
            if isinstance(entry, PermissionEntry):
                perm = entry.perm_for(va)
                ok = perm != Perm.NONE
                return WalkResult(va=va, ok=ok, perm=perm,
                                  pa=va if ok else None, level=node.level,
                                  is_pe=True, identity=ok, visited=visited)
            if isinstance(entry, SwappedPTE):
                return WalkResult(va=va, ok=False, perm=entry.perm, pa=None,
                                  level=node.level, is_pe=False,
                                  identity=False, visited=visited,
                                  swapped=True)
            if isinstance(entry, LeafPTE):
                offset = va - level_base(va, entry.level)
                pa = entry.pa + offset
                return WalkResult(va=va, ok=True, perm=entry.perm, pa=pa,
                                  level=node.level, is_pe=False,
                                  identity=(pa == va), visited=visited)
            node = entry.node

    def translate(self, va: int) -> int | None:
        """Convenience: translated PA for ``va`` or None if unmapped."""
        result = self.walk(va)
        return result.pa if result.ok else None

    # -- accounting (Table 1) ---------------------------------------------------

    def node_count(self) -> int:
        """Total number of page-table nodes (each one 4 KB frame)."""
        return sum(1 for _ in self._iter_nodes(self.root))

    def table_bytes(self) -> int:
        """Total page-table size in bytes (Table 1's metric)."""
        return self.node_count() * NODE_SIZE

    def bytes_by_level(self) -> dict[int, int]:
        """Page-table bytes broken down by node level.

        Table 1 reports L1 PTE storage as ~98–99% of conventional tables;
        this exposes the same breakdown.
        """
        out: dict[int, int] = {}
        for node in self._iter_nodes(self.root):
            out[node.level] = out.get(node.level, 0) + NODE_SIZE
        return out

    def entry_counts(self) -> dict[str, int]:
        """Counts of live entries by kind (pe / leaf / table)."""
        counts = {"pe": 0, "leaf": 0, "table": 0}
        for node in self._iter_nodes(self.root):
            for entry in node.entries.values():
                if isinstance(entry, PermissionEntry):
                    counts["pe"] += 1
                elif isinstance(entry, LeafPTE):
                    counts["leaf"] += 1
                else:
                    counts["table"] += 1
        return counts

    # -- internals --------------------------------------------------------------

    def _new_node(self, level: int) -> PageTableNode:
        frame = self.phys.alloc_frame(purpose="page_table")
        return PageTableNode(level=level, phys_addr=frame)

    def _child(self, node: PageTableNode, index: int,
               create: bool) -> PageTableNode:
        entry = node.entries.get(index)
        if entry is None:
            if not create:
                raise MappingError("missing intermediate page-table node")
            child = self._new_node(node.level - 1)
            node.entries[index] = TablePointer(node=child)
            return child
        if not isinstance(entry, TablePointer):
            raise MappingError(
                f"entry at level {node.level} index {index} is a leaf/PE, "
                f"not a table pointer"
            )
        return entry.node

    def _descend_to(self, va: int, target_level: int,
                    create: bool) -> PageTableNode:
        node = self.root
        while node.level > target_level:
            node = self._child(node, level_index(va, node.level), create)
        return node

    def _iter_nodes(self, node: PageTableNode):
        yield node
        for entry in node.entries.values():
            if isinstance(entry, TablePointer):
                yield from self._iter_nodes(entry.node)
