"""User-level allocator: glibc-style malloc over mmap'd pools.

The paper modifies glibc malloc to *always* use ``mmap`` instead of ``brk``
(Section 4.3.2), because identity-mapped regions cannot be grown in place.
Small allocations are served from pre-allocated pools; when a pool fills,
another is mapped.  Large allocations go straight to ``mmap``.

This allocator is what the shbench fragmentation study (Table 4) exercises:
its pool- and threshold-driven mmap pattern determines the contiguous
physical allocations the buddy allocator must satisfy, and therefore where
identity mapping first fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.common.perms import Perm
from repro.common.util import align_up, round_up_pow2
from repro.kernel.vm_syscalls import VMM, Allocation

#: Allocations at or above this size bypass pools and mmap directly
#: (glibc's M_MMAP_THRESHOLD default).
DEFAULT_MMAP_THRESHOLD = 128 * 1024

#: Default pool size for small allocations.
DEFAULT_POOL_SIZE = 1 << 20  # 1 MB

#: Chunk sizes are multiples of this granule (glibc's 2*SIZE_SZ alignment).
CHUNK_ALIGN = 16


class MallocError(ReproError):
    """Raised on invalid malloc/free usage (double free, unknown pointer)."""


def size_class(size: int) -> int:
    """Rounded chunk size for a request of ``size`` bytes.

    Small requests round to the 16-byte granule (glibc fastbin/smallbin
    spacing); larger ones to powers of two, which bounds the number of
    distinct free lists.
    """
    if size <= 0:
        raise ValueError(f"allocation size must be positive, got {size}")
    if size <= 1024:
        return align_up(size, CHUNK_ALIGN)
    return round_up_pow2(size)


@dataclass
class _Pool:
    """One mmap'd arena serving small chunks bump-style."""

    alloc: Allocation
    bump: int = 0

    @property
    def remaining(self) -> int:
        return self.alloc.size - self.bump


@dataclass
class MallocStats:
    """Allocator counters (drives the eager-paging waste metric)."""

    requested_bytes: int = 0     # sum of live request sizes
    chunk_bytes: int = 0         # sum of live rounded chunk sizes
    pool_count: int = 0
    direct_mmaps: int = 0
    live_chunks: int = 0


class Malloc:
    """A per-process user-level allocator backed by a :class:`VMM`."""

    def __init__(self, vmm: VMM, *, pool_size: int = DEFAULT_POOL_SIZE,
                 mmap_threshold: int = DEFAULT_MMAP_THRESHOLD):
        if mmap_threshold > pool_size:
            raise ValueError("mmap threshold cannot exceed the pool size")
        self.vmm = vmm
        self.pool_size = pool_size
        self.mmap_threshold = mmap_threshold
        self.stats = MallocStats()
        self._pools: list[_Pool] = []
        self._free_lists: dict[int, list[int]] = {}
        # va -> (request size, chunk size, direct Allocation or None)
        self._live: dict[int, tuple[int, int, Allocation | None]] = {}

    # -- public API ---------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the chunk's virtual address."""
        if size <= 0:
            raise ValueError(f"malloc size must be positive, got {size}")
        if size >= self.mmap_threshold:
            alloc = self.vmm.mmap(size, Perm.READ_WRITE, kind="heap",
                                  name="malloc-direct")
            self.stats.direct_mmaps += 1
            self._record(alloc.va, size, alloc.size, alloc)
            return alloc.va
        chunk = size_class(size)
        free_list = self._free_lists.get(chunk)
        if free_list:
            va = free_list.pop()
        else:
            va = self._carve(chunk)
        self._record(va, size, chunk, None)
        return va

    def free(self, va: int) -> None:
        """Free a chunk previously returned by :func:`malloc`."""
        record = self._live.pop(va, None)
        if record is None:
            raise MallocError(f"free of unknown or already-freed pointer {va:#x}")
        size, chunk, direct = record
        self.stats.requested_bytes -= size
        self.stats.chunk_bytes -= chunk
        self.stats.live_chunks -= 1
        if direct is not None:
            self.vmm.munmap(direct)
            self.stats.direct_mmaps -= 1
            return
        self._free_lists.setdefault(chunk, []).append(va)

    def usable_size(self, va: int) -> int:
        """Rounded chunk size backing the pointer (malloc_usable_size)."""
        record = self._live.get(va)
        if record is None:
            raise MallocError(f"unknown pointer {va:#x}")
        return record[1]

    # -- internals ------------------------------------------------------------

    def _record(self, va: int, size: int, chunk: int,
                direct: Allocation | None) -> None:
        self._live[va] = (size, chunk, direct)
        self.stats.requested_bytes += size
        self.stats.chunk_bytes += chunk
        self.stats.live_chunks += 1

    def _carve(self, chunk: int) -> int:
        for pool in reversed(self._pools):
            if pool.remaining >= chunk:
                va = pool.alloc.va + pool.bump
                pool.bump += chunk
                return va
        pool = self._new_pool()
        va = pool.alloc.va + pool.bump
        pool.bump += chunk
        return va

    def _new_pool(self) -> _Pool:
        alloc = self.vmm.mmap(self.pool_size, Perm.READ_WRITE, kind="heap",
                              name=f"malloc-pool-{len(self._pools)}")
        pool = _Pool(alloc=alloc)
        self._pools.append(pool)
        self.stats.pool_count += 1
        return pool
