"""Physical memory map: buddy-backed frame allocation with usage tagging.

The kernel reserves a small low-memory region for itself (mirroring Linux's
kernel image + static data), and serves all other frame allocations from the
buddy allocator.  Frames are tagged by purpose so experiments can report
page-table footprint (Table 1) separately from data footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.consts import PAGE_SIZE
from repro.common.util import align_up, is_aligned
from repro.kernel.buddy import BuddyAllocator

#: Default size reserved at the bottom of physical memory for the kernel.
DEFAULT_KERNEL_RESERVED = 16 << 20  # 16 MB


@dataclass
class PhysUsage:
    """Byte counters by allocation purpose."""

    data: int = 0
    page_table: int = 0
    other: int = 0

    def total(self) -> int:
        """Total tagged bytes currently allocated."""
        return self.data + self.page_table + self.other


@dataclass
class PhysicalMemory:
    """The machine's physical memory.

    Parameters
    ----------
    size:
        Total physical memory in bytes (e.g. ``32 << 30`` for the paper's
        32 GB accelerator system, Table 2).
    kernel_reserved:
        Bytes reserved at the bottom of memory for the kernel; user
        allocations never land there, which also keeps identity-mapped user
        VAs clear of the zero page and of kernel text.
    """

    size: int
    kernel_reserved: int = DEFAULT_KERNEL_RESERVED
    base: int = 0
    allocator: BuddyAllocator = field(init=False)
    usage: PhysUsage = field(init=False)

    def __post_init__(self):
        if self.size <= self.kernel_reserved:
            raise ValueError(
                f"physical memory ({self.size}) must exceed the kernel "
                f"reservation ({self.kernel_reserved})"
            )
        if not is_aligned(self.size, PAGE_SIZE):
            raise ValueError("physical memory size must be page aligned")
        if not is_aligned(self.base, PAGE_SIZE):
            raise ValueError("physical memory base must be page aligned")
        reserved = align_up(self.kernel_reserved, PAGE_SIZE)
        self.kernel_reserved = reserved
        # A nonzero base models guest RAM presented at gPA == sPA (the
        # virtualization extension, Section 5 "Virtual Machines").
        self.allocator = BuddyAllocator(self.size - reserved,
                                        base=self.base + reserved)
        self.usage = PhysUsage()

    # -- frame allocation ----------------------------------------------------

    def alloc_frame(self, purpose: str = "data") -> int:
        """Allocate one 4 KB frame; returns its physical address."""
        addr = self.allocator.alloc_block(0)
        self._account(purpose, PAGE_SIZE)
        return addr

    def free_frame(self, addr: int, purpose: str = "data") -> None:
        """Free one 4 KB frame."""
        self.allocator.free_block(addr, 0)
        self._account(purpose, -PAGE_SIZE)

    def alloc_contiguous(self, size: int, purpose: str = "data") -> int:
        """Eagerly allocate ``size`` bytes of contiguous physical memory."""
        addr = self.allocator.alloc_range(size)
        self._account(purpose, align_up(size, PAGE_SIZE))
        return addr

    def alloc_exact(self, addr: int, size: int,
                    purpose: str = "data") -> bool:
        """Claim the specific range ``[addr, addr+size)`` if it is free.

        Used by identity re-establishment, which needs the frames matching
        a VA range exactly.  Returns False when any part is in use.
        """
        usable = align_up(size, PAGE_SIZE)
        if not self.allocator.reserve_range(addr, usable):
            return False
        self._account(purpose, usable)
        return True

    def free_contiguous(self, addr: int, size: int, purpose: str = "data") -> None:
        """Free a contiguous range allocated by :func:`alloc_contiguous`."""
        usable = align_up(size, PAGE_SIZE)
        self.allocator.free_range(addr, usable)
        self._account(purpose, -usable)

    # -- capacity queries ----------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes available for allocation."""
        return self.allocator.free_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated (excluding the kernel reservation)."""
        return self.allocator.used_bytes

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` lies within physical memory."""
        return self.base <= addr < self.base + self.size

    # -- internals ------------------------------------------------------------

    def _account(self, purpose: str, delta: int) -> None:
        if purpose == "data":
            self.usage.data += delta
        elif purpose == "page_table":
            self.usage.page_table += delta
        else:
            self.usage.other += delta
