"""Per-process virtual address spaces with a flexible layout.

DVM's identity mapping places heap allocations at VAs equal to their backing
PAs, which can land *anywhere* — even below the code segment.  The paper
(Section 4.3.2) therefore extends Linux's semi-flexible ASLR layout to a
fully flexible one with no hard constraints on segment positions.  This
module models that: a sorted set of VMAs, exact-placement reservation for
identity mappings, and ASLR-randomised top-down placement for conventional
demand-paged mappings.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.common.consts import PAGE_SIZE, VA_LIMIT
from repro.common.errors import AddressSpaceError
from repro.common.perms import Perm
from repro.common.util import align_down, align_up, is_aligned

#: User virtual addresses live in the canonical lower half.
USER_VA_LIMIT = VA_LIMIT // 2

#: Conventional layout anchors (overridable per address space).
DEFAULT_CODE_BASE = 0x0000_0000_0040_0000        # 4 MB, like x86-64 Linux
DEFAULT_STACK_TOP = USER_VA_LIMIT - PAGE_SIZE    # just below the canonical gap
DEFAULT_MMAP_BASE = USER_VA_LIMIT - (1 << 34)    # 16 GB below the stack area


@dataclass
class VMA:
    """One virtual memory area: ``[start, end)`` with uniform permissions."""

    start: int
    end: int
    perm: Perm
    kind: str = "mmap"        # "code" | "data" | "heap" | "mmap" | "stack"
    identity: bool = False    # VA == PA for every byte of the area
    name: str = ""

    @property
    def size(self) -> int:
        """Length of the area in bytes."""
        return self.end - self.start

    def contains(self, va: int) -> bool:
        """Whether ``va`` falls inside the area."""
        return self.start <= va < self.end


class AddressSpace:
    """A process's VMAs plus placement policy.

    Parameters
    ----------
    rng:
        Seeded generator supplying ASLR entropy; placement is fully
        deterministic given the seed.
    aslr_bits:
        Bits of randomness applied to the mmap base (the paper cites 28 bits
        of Linux heap entropy; the default mirrors that).
    """

    def __init__(self, rng: np.random.Generator | None = None,
                 aslr_bits: int = 28):
        self._starts: list[int] = []
        self._vmas: list[VMA] = []
        self.rng = rng or np.random.default_rng(0)
        offset = int(self.rng.integers(0, 1 << aslr_bits)) * PAGE_SIZE
        # Randomised top-down mmap base, clamped into the user range.
        self.mmap_base = align_down(
            max(DEFAULT_MMAP_BASE - offset, USER_VA_LIMIT // 4), PAGE_SIZE
        )

    # -- queries ---------------------------------------------------------------

    def vmas(self) -> list[VMA]:
        """All areas, sorted by start address."""
        return list(self._vmas)

    def find(self, va: int) -> VMA | None:
        """The VMA containing ``va``, or None."""
        idx = bisect.bisect_right(self._starts, va) - 1
        if idx >= 0 and self._vmas[idx].contains(va):
            return self._vmas[idx]
        return None

    def is_free(self, start: int, size: int) -> bool:
        """Whether ``[start, start+size)`` overlaps no existing VMA."""
        if start < 0 or start + size > USER_VA_LIMIT:
            return False
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx >= 0 and self._vmas[idx].end > start:
            return False
        if idx + 1 < len(self._vmas) and self._vmas[idx + 1].start < start + size:
            return False
        return True

    def total_mapped(self) -> int:
        """Total bytes currently mapped."""
        return sum(v.size for v in self._vmas)

    # -- placement ---------------------------------------------------------------

    def reserve_exact(self, start: int, size: int, perm: Perm, *,
                      kind: str = "mmap", identity: bool = False,
                      name: str = "") -> VMA:
        """Reserve an area at an exact address (identity mapping's move step).

        Raises :class:`AddressSpaceError` when the range is unavailable —
        the condition under which identity mapping falls back to demand
        paging (Figure 7).
        """
        if not is_aligned(start, PAGE_SIZE):
            raise AddressSpaceError(f"start {start:#x} is not page aligned")
        size = align_up(size, PAGE_SIZE)
        if size == 0:
            raise AddressSpaceError("cannot reserve an empty area")
        if not self.is_free(start, size):
            raise AddressSpaceError(
                f"va range [{start:#x}, {start + size:#x}) is unavailable"
            )
        vma = VMA(start=start, end=start + size, perm=perm, kind=kind,
                  identity=identity, name=name)
        self._insert(vma)
        return vma

    def reserve_anywhere(self, size: int, perm: Perm, *, kind: str = "mmap",
                         name: str = "", alignment: int = PAGE_SIZE) -> VMA:
        """Reserve an area top-down from the (ASLR-randomised) mmap base.

        ``alignment`` lets huge-page-backed mappings start on a huge-page
        boundary (what ``mmap`` + THP alignment achieves on Linux).
        """
        size = align_up(size, PAGE_SIZE)
        start = self._find_gap_top_down(size, below=self.mmap_base,
                                        alignment=alignment)
        if start is None:
            # Fully flexible layout: fall back to searching the whole space.
            start = self._find_gap_top_down(size, below=USER_VA_LIMIT,
                                            alignment=alignment)
        if start is None:
            raise AddressSpaceError(f"no free VA gap of {size:#x} bytes")
        vma = VMA(start=start, end=start + size, perm=perm, kind=kind,
                  identity=False, name=name)
        self._insert(vma)
        return vma

    def remove(self, vma: VMA) -> None:
        """Remove an area previously returned by a reserve call."""
        idx = bisect.bisect_left(self._starts, vma.start)
        if idx >= len(self._vmas) or self._vmas[idx] is not vma:
            raise AddressSpaceError(f"VMA at {vma.start:#x} is not mapped")
        del self._vmas[idx]
        del self._starts[idx]

    # -- internals ------------------------------------------------------------------

    def _insert(self, vma: VMA) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        self._starts.insert(idx, vma.start)
        self._vmas.insert(idx, vma)

    def _find_gap_top_down(self, size: int, below: int,
                           alignment: int = PAGE_SIZE) -> int | None:
        """Highest aligned free gap of ``size`` bytes ending <= below."""
        ceiling = min(below, USER_VA_LIMIT)
        # Walk VMAs from the top; candidate gap is between each VMA's end
        # and the floor of the area above it.
        for vma in reversed(self._vmas):
            if vma.end >= ceiling:
                ceiling = min(ceiling, vma.start)
                continue
            candidate = align_down(ceiling - size, alignment)
            if candidate >= vma.end and candidate + size <= ceiling:
                return candidate
            ceiling = min(ceiling, vma.start)
        candidate = align_down(ceiling - size, alignment)
        if candidate >= PAGE_SIZE:  # never hand out page zero
            return candidate
        return None
