"""Identity mapping: the OS half of DVM (paper Section 4.3, Figure 7).

The allocation algorithm is the paper's Figure 7 pseudocode::

    Memory-Allocation(Size S):
        PA <- contiguous-PM-allocation(S)          # eager paging
        if PA != NULL:
            move region to VA2 == PA               # flexible address space
            if move succeeds: return VA2           # identity mapped
            else: free PM; fall back to demand paging
        else: fall back to demand paging

Identity mapping can fail for two distinct reasons, both tracked separately
because the Table 4 study distinguishes them:

* *physical contiguity failure* — the buddy allocator has no contiguous
  block large enough (fragmentation / low memory);
* *VA conflict* — the VA range equal to the allocated PA range is already
  occupied in this address space (e.g. by the code segment or an earlier
  demand-paged mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.consts import PAGE_SIZE
from repro.common.errors import AddressSpaceError, OutOfMemoryError
from repro.common.perms import Perm
from repro.common.util import align_up
from repro.kernel.address_space import AddressSpace, VMA
from repro.kernel.page_table import PageTable
from repro.kernel.phys import PhysicalMemory


@dataclass
class IdentityStats:
    """Outcome counters for identity-mapping attempts."""

    attempts: int = 0
    successes: int = 0
    contiguity_failures: int = 0
    va_conflicts: int = 0
    identity_bytes: int = 0

    @property
    def failures(self) -> int:
        """Total failed attempts (either failure mode)."""
        return self.contiguity_failures + self.va_conflicts


@dataclass
class IdentityMapper:
    """Applies Figure 7's identity-mapping algorithm to one address space."""

    phys: PhysicalMemory
    aspace: AddressSpace
    page_table: PageTable
    stats: IdentityStats = field(default_factory=IdentityStats)

    def try_map(self, size: int, perm: Perm, *, kind: str = "mmap",
                name: str = "") -> VMA | None:
        """Attempt an identity-mapped allocation of ``size`` bytes.

        Returns the VMA (whose start VA equals the backing PA) on success,
        or None when the caller must fall back to demand paging.
        """
        self.stats.attempts += 1
        usable = align_up(size, PAGE_SIZE)
        try:
            pa = self.phys.alloc_contiguous(usable)
        except OutOfMemoryError:
            self.stats.contiguity_failures += 1
            return None
        try:
            vma = self.aspace.reserve_exact(
                pa, usable, perm, kind=kind, identity=True, name=name
            )
        except AddressSpaceError:
            # The move to VA2 == PA failed: the VA range is taken.
            self.phys.free_contiguous(pa, usable)
            self.stats.va_conflicts += 1
            return None
        self.page_table.map_identity_range(pa, usable, perm)
        self.stats.successes += 1
        self.stats.identity_bytes += usable
        return vma

    def unmap(self, vma: VMA) -> None:
        """Release an identity mapping created by :func:`try_map`."""
        if not vma.identity:
            raise ValueError("unmap() only handles identity VMAs")
        self.page_table.unmap_range(vma.start, vma.size)
        self.aspace.remove(vma)
        self.phys.free_contiguous(vma.start, vma.size)
        self.stats.identity_bytes -= vma.size
