"""Graph substrate: CSR graphs, RMAT generation, bipartite conversion."""

from repro.graphs.bipartite import (
    BipartiteShape,
    bipartite_from_rmat,
    is_bipartite_user_item,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import (
    BIPARTITE_GRAPHS,
    DATASETS,
    SOCIAL_GRAPHS,
    WORKLOAD_PAIRS,
    Dataset,
    load,
)
from repro.graphs.rmat import rmat_edges, rmat_graph

__all__ = [
    "BipartiteShape",
    "bipartite_from_rmat",
    "is_bipartite_user_item",
    "CSRGraph",
    "BIPARTITE_GRAPHS",
    "DATASETS",
    "SOCIAL_GRAPHS",
    "WORKLOAD_PAIRS",
    "Dataset",
    "load",
    "rmat_edges",
    "rmat_graph",
]
