"""Bipartite (user -> item) graphs for Collaborative Filtering.

The paper evaluates CF on the Netflix ratings graph and on two synthetic
bipartite graphs produced "by converting the synthetic RMAT graphs
following the methodology described by Satish et al." (Section 6.2): RMAT
edges are reinterpreted as (user, item) ratings by folding the endpoint ids
into the two vertex classes, preserving RMAT's skew — a few very popular
items attract most edges, which is what gives CF its temporal locality
(the paper's NF discussion in Section 6.3.1).

Vertex numbering follows Graphicionado's single address space: users are
``0..num_users-1``, items are ``num_users..num_users+num_items-1``, and all
edges point from users to items.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.rmat import rmat_edges


@dataclass(frozen=True)
class BipartiteShape:
    """Vertex-class sizes of a bipartite graph."""

    num_users: int
    num_items: int

    @property
    def num_vertices(self) -> int:
        """Total vertices across both classes."""
        return self.num_users + self.num_items


def bipartite_from_rmat(num_users: int, num_items: int, num_edges: int, *,
                        seed: int = 0) -> tuple[CSRGraph, BipartiteShape]:
    """Convert an RMAT edge list into a user->item ratings graph.

    The RMAT src id folds onto the user range and the dst id onto the item
    range (modulo fold keeps the skew: low ids — the RMAT hot quadrant —
    stay the hottest).  Ratings are integers in 1..5.
    """
    if num_users <= 0 or num_items <= 0:
        raise ValueError("both vertex classes must be non-empty")
    scale = max(int(np.ceil(np.log2(max(num_users, num_items)))), 1)
    src, dst = rmat_edges(scale, num_edges, seed=seed)
    users = src % num_users
    items = num_users + (dst % num_items)
    rng = np.random.default_rng(seed + 2)
    ratings = rng.integers(1, 6, num_edges).astype(np.float64)
    shape = BipartiteShape(num_users=num_users, num_items=num_items)
    graph = CSRGraph.from_edges(users, items, shape.num_vertices,
                                weight=ratings)
    return graph, shape


def is_bipartite_user_item(graph: CSRGraph, shape: BipartiteShape) -> bool:
    """Check that every edge runs from the user range into the item range."""
    if graph.num_vertices != shape.num_vertices:
        return False
    src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.offsets))
    return bool(np.all(src < shape.num_users)
                and np.all(graph.dst >= shape.num_users))
