"""Graph file I/O: edge lists and MatrixMarket.

The paper's real datasets come from the UF sparse collection (MatrixMarket
files) and SNAP-style edge lists.  Offline we evaluate on surrogates, but
the loaders are here so the pipeline runs on the original files when they
are available: ``load_edge_list`` / ``load_matrix_market`` produce the same
:class:`CSRGraph` the rest of the stack consumes.

Also provides ``save_csr``/``load_csr`` (compressed numpy) so built graphs
can be cached across runs.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from repro.graphs.csr import CSRGraph


def load_edge_list(path, *, comments: str = "#", num_vertices: int | None = None,
                   weighted: bool = False) -> CSRGraph:
    """Load a SNAP-style whitespace-separated edge list.

    Lines starting with ``comments`` are skipped.  Each data line is
    ``src dst`` (or ``src dst weight`` with ``weighted=True``).  Vertex ids
    must be non-negative integers; ``num_vertices`` defaults to
    ``max(id) + 1``.
    """
    src: list[int] = []
    dst: list[int] = []
    weight: list[float] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise ValueError(f"missing weight in line: {line!r}")
                weight.append(float(parts[2]))
    if not src:
        raise ValueError(f"no edges found in {path}")
    n = num_vertices
    if n is None:
        n = max(max(src), max(dst)) + 1
    return CSRGraph.from_edges(src, dst, n,
                               weight=weight if weighted else None)


def load_matrix_market(path) -> CSRGraph:
    """Load a MatrixMarket ``coordinate`` file as a directed graph.

    Supports ``pattern`` (unweighted) and ``real``/``integer`` (weighted)
    fields; ``symmetric`` matrices emit both edge directions, as the UF
    collection's undirected graphs require.  Indices are 1-based in the
    format and converted to 0-based ids.
    """
    with open(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path} is not a MatrixMarket file")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[2] != "coordinate":
            raise ValueError("only coordinate MatrixMarket files are graphs")
        field = tokens[3]
        symmetry = tokens[4]
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        rows, cols, _entries = (int(x) for x in line.split())
        num_vertices = max(rows, cols)
        src: list[int] = []
        dst: list[int] = []
        weight: list[float] = []
        for line in handle:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            i, j = int(parts[0]) - 1, int(parts[1]) - 1
            w = float(parts[2]) if field != "pattern" and len(parts) > 2 \
                else 1.0
            src.append(i)
            dst.append(j)
            weight.append(w)
            if symmetry == "symmetric" and i != j:
                src.append(j)
                dst.append(i)
                weight.append(w)
    return CSRGraph.from_edges(src, dst, num_vertices, weight=weight)


def save_csr(graph: CSRGraph, path) -> None:
    """Save a CSR graph as compressed numpy (.npz)."""
    np.savez_compressed(
        path,
        num_vertices=np.int64(graph.num_vertices),
        offsets=graph.offsets,
        dst=graph.dst,
        weight=graph.weight,
    )


def load_csr(path) -> CSRGraph:
    """Load a CSR graph saved by :func:`save_csr`."""
    data = np.load(path)
    return CSRGraph(
        num_vertices=int(data["num_vertices"]),
        offsets=data["offsets"],
        dst=data["dst"],
        weight=data["weight"],
    )
