"""Dataset registry: the paper's graphs (Table 3) and our surrogates.

The paper uses three real-world graphs (Flickr, Wikipedia, LiveJournal from
the UF sparse collection), the Netflix ratings graph, an RMAT scale-24
graph and two synthetic bipartite graphs.  Real datasets are unavailable
offline, so each input is replaced by a deterministic RMAT-based surrogate
with the same *shape*: matched average degree, matched relative size
ordering, and — for the bipartite inputs — matched user:item skew.

Two size profiles exist (see DESIGN.md "Scaling"):

* ``full`` — footprints of tens of MB, used by ``experiments/``; keeps the
  footprint-to-reach ratios of Table 3 vs. the scaled MMU structures.
* ``bench`` — tiny graphs for the pytest-benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.bipartite import BipartiteShape, bipartite_from_rmat
from repro.graphs.csr import CSRGraph
from repro.graphs.rmat import rmat_graph


@dataclass(frozen=True)
class PaperStats:
    """Table 3's row for a dataset (the original sizes)."""

    vertices: str
    edges: str
    heap: str


@dataclass
class Dataset:
    """One evaluation input: paper metadata plus surrogate builders."""

    name: str
    kind: str                      # "social" | "bipartite"
    paper: PaperStats
    build_full: Callable[[], tuple]
    build_bench: Callable[[], tuple]

    def build(self, profile: str = "full") -> tuple[CSRGraph, BipartiteShape | None]:
        """Materialise the surrogate graph for a size profile."""
        if profile == "full":
            return self.build_full()
        if profile == "bench":
            return self.build_bench()
        raise ValueError(f"unknown profile {profile!r}")


def _social(scale: int, edge_factor: int, seed: int):
    def build():
        return rmat_graph(scale, edge_factor, seed=seed), None
    return build


def _bip(users: int, items: int, edges: int, seed: int):
    def build():
        graph, shape = bipartite_from_rmat(users, items, edges, seed=seed)
        return graph, shape
    return build


#: The registry, keyed by the paper's dataset abbreviations.
DATASETS: dict[str, Dataset] = {
    "FR": Dataset(
        name="Flickr", kind="social",
        paper=PaperStats("0.82M", "9.84M", "288 MB"),
        build_full=_social(scale=17, edge_factor=12, seed=11),
        build_bench=_social(scale=12, edge_factor=12, seed=11),
    ),
    "Wiki": Dataset(
        name="Wikipedia", kind="social",
        paper=PaperStats("3.56M", "84.75M", "1.26 GB"),
        build_full=_social(scale=18, edge_factor=16, seed=12),
        build_bench=_social(scale=12, edge_factor=16, seed=12),
    ),
    "LJ": Dataset(
        name="LiveJournal", kind="social",
        paper=PaperStats("4.84M", "68.99M", "2.15 GB"),
        build_full=_social(scale=18, edge_factor=14, seed=13),
        build_bench=_social(scale=12, edge_factor=14, seed=13),
    ),
    "S24": Dataset(
        name="RMAT Scale 24", kind="social",
        paper=PaperStats("16.8M", "268M", "6.79 GB"),
        build_full=_social(scale=19, edge_factor=16, seed=14),
        build_bench=_social(scale=13, edge_factor=16, seed=14),
    ),
    "NF": Dataset(
        name="Netflix", kind="bipartite",
        paper=PaperStats("480K users, 18K movies", "99.07M", "2.39 GB"),
        # NF's defining trait (Section 6.3.1): very few destination items,
        # so item accesses have high temporal locality — the item set
        # overflows the base-page TLB but fits comfortably at huge pages.
        build_full=_bip(users=1 << 16, items=1 << 12, edges=24 * (1 << 16),
                        seed=15),
        build_bench=_bip(users=1 << 12, items=1 << 8, edges=24 * (1 << 12),
                         seed=15),
    ),
    "Bip1": Dataset(
        name="Synthetic Bipartite 1", kind="bipartite",
        paper=PaperStats("969K users, 100K movies", "53.82M", "1.33 GB"),
        build_full=_bip(users=1 << 17, items=1 << 14, edges=16 * (1 << 17),
                        seed=16),
        build_bench=_bip(users=1 << 12, items=1 << 9, edges=16 * (1 << 12),
                         seed=16),
    ),
    "Bip2": Dataset(
        name="Synthetic Bipartite 2", kind="bipartite",
        paper=PaperStats("2.90M users, 100K movies", "232.7M", "5.66 GB"),
        build_full=_bip(users=1 << 18, items=1 << 14, edges=16 * (1 << 18),
                        seed=17),
        build_bench=_bip(users=1 << 13, items=1 << 9, edges=16 * (1 << 13),
                         seed=17),
    ),
}

#: Graphs used by each workload in Figures 2, 8 and 9.
SOCIAL_GRAPHS = ("FR", "Wiki", "LJ", "S24")
BIPARTITE_GRAPHS = ("NF", "Bip1", "Bip2")

#: The paper's 15 (workload, graph) evaluation pairs.
WORKLOAD_PAIRS: tuple[tuple[str, str], ...] = tuple(
    [("bfs", g) for g in SOCIAL_GRAPHS]
    + [("pagerank", g) for g in SOCIAL_GRAPHS]
    + [("sssp", g) for g in SOCIAL_GRAPHS]
    + [("cf", g) for g in BIPARTITE_GRAPHS]
)


def load(key: str, profile: str = "full"):
    """Build the surrogate for a dataset key (``FR``, ``Wiki``, ...)."""
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {key!r}; have {sorted(DATASETS)}")
    return DATASETS[key].build(profile)
