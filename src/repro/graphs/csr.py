"""Compressed sparse row (CSR) graph representation.

Graphicionado (paper Section 6.1) stores a graph as an edge list of
(srcid, dstid, weight) 3-tuples sorted by source, a vertex-property array,
and ancillary index arrays mapping each vertex to its slice of the edge
list.  The CSR form here is exactly that: ``offsets`` is the ancillary
index array, ``dst``/``weight`` the edge-list columns.

All arrays are numpy so algorithm simulation and trace generation stay
vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CSRGraph:
    """A directed graph in CSR form.

    Attributes
    ----------
    num_vertices:
        Vertex count; vertex ids are ``0..num_vertices-1``.
    offsets:
        ``int64[num_vertices + 1]``; vertex ``u``'s out-edges occupy edge
        indices ``offsets[u]:offsets[u+1]``.
    dst:
        ``int64[num_edges]`` destination ids, grouped by source.
    weight:
        ``float64[num_edges]`` edge weights (1.0 when unweighted).
    """

    num_vertices: int
    offsets: np.ndarray
    dst: np.ndarray
    weight: np.ndarray

    def __post_init__(self):
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.validate()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_edges(cls, src, dst, num_vertices: int,
                   weight=None) -> "CSRGraph":
        """Build a CSR graph from parallel src/dst (and optional weight) arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if weight is None:
            weight = np.ones(len(src), dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != src.shape:
                raise ValueError("weight must match the edge count")
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        counts = np.bincount(src_sorted, minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(num_vertices=num_vertices, offsets=offsets,
                   dst=dst[order], weight=weight[order])

    # -- queries ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Total directed edge count."""
        return len(self.dst)

    @property
    def avg_degree(self) -> float:
        """Average out-degree."""
        return self.num_edges / self.num_vertices if self.num_vertices else 0.0

    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.offsets)

    def neighbors(self, u: int) -> np.ndarray:
        """Destination ids of ``u``'s out-edges."""
        return self.dst[self.offsets[u]:self.offsets[u + 1]]

    def edge_slice(self, u: int) -> slice:
        """Edge-index slice owned by vertex ``u``."""
        return slice(int(self.offsets[u]), int(self.offsets[u + 1]))

    def reversed(self) -> "CSRGraph":
        """The transpose graph (every edge flipped)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        np.diff(self.offsets))
        return CSRGraph.from_edges(self.dst, src, self.num_vertices,
                                   weight=self.weight)

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        if len(self.offsets) != self.num_vertices + 1:
            raise ValueError("offsets must have num_vertices + 1 entries")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.dst):
            raise ValueError("offsets must start at 0 and end at num_edges")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if len(self.dst) and (self.dst.min() < 0
                              or self.dst.max() >= self.num_vertices):
            raise ValueError("destination ids out of range")
        if len(self.weight) != len(self.dst):
            raise ValueError("weight must match the edge count")
