"""R-MAT synthetic graph generation (graph500 parameters).

The paper's synthetic inputs come from the graph500 RMAT generator
(Chakrabarti et al., SIAM'04; Murphy et al., CUG'10): edges are placed by
recursively descending a 2^scale x 2^scale adjacency matrix, choosing one
of four quadrants per bit with probabilities (a, b, c, d).  graph500 uses
(0.57, 0.19, 0.19, 0.05), which produces the skewed degree distributions
that make graph workloads TLB-hostile.

The generation is fully vectorised: one pass over the edge array per scale
bit.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

#: graph500 RMAT quadrant probabilities.
GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
GRAPH500_D = 0.05


def rmat_edges(scale: int, num_edges: int, *, a: float = GRAPH500_A,
               b: float = GRAPH500_B, c: float = GRAPH500_C,
               seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Generate RMAT (src, dst) arrays for a 2**scale-vertex graph.

    ``d`` is implied by ``1 - a - b - c``.  Duplicates and self-loops are
    kept, as graph500's generator does.
    """
    if scale <= 0 or scale > 30:
        raise ValueError(f"scale must be in 1..30, got {scale}")
    if num_edges <= 0:
        raise ValueError(f"num_edges must be positive, got {num_edges}")
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must sum below 1")
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for bit in range(scale):
        u = rng.random(num_edges)
        # Quadrants: [0,a) -> (0,0); [a,ab) -> (0,1); [ab,abc) -> (1,0);
        # [abc,1) -> (1,1).
        src_bit = u >= ab
        dst_bit = ((u >= a) & (u < ab)) | (u >= abc)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    return src, dst


def rmat_graph(scale: int, edge_factor: int = 16, *, seed: int = 0,
               weighted: bool = True,
               a: float = GRAPH500_A, b: float = GRAPH500_B,
               c: float = GRAPH500_C) -> CSRGraph:
    """An RMAT graph with ``2**scale`` vertices and ``edge_factor`` per vertex.

    Weights, when requested, are uniform in [1, 64) like graph500's SSSP
    companion generator.
    """
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    src, dst = rmat_edges(scale, num_edges, a=a, b=b, c=c, seed=seed)
    weight = None
    if weighted:
        rng = np.random.default_rng(seed + 1)
        weight = rng.integers(1, 64, num_edges).astype(np.float64)
    return CSRGraph.from_edges(src, dst, num_vertices, weight=weight)
