"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro figure8              # one artifact, full profile
    python -m repro figure8 --bench      # quick bench-scale version
    python -m repro all                  # everything (minutes)
    python -m repro obs <dir>            # render observability artifacts
    python -m repro fuzz                 # differential fuzz smoke (gen/)
    python -m repro pair bfs/FR --bench  # re-run one quarantined pair
    python -m repro sweep pairs --bench  # supervised sweep service entry
    python -m repro sweep --chaos-smoke  # scheduler chaos gate (CI)
    python -m repro top                  # live dashboard over the bus

With ``REPRO_OBS=1`` each artifact's observations (metrics registry,
Chrome/Perfetto trace, NDJSON event stream) are flushed into
``REPRO_OBS_DIR`` after it completes; ``python -m repro obs <dir>``
renders them as text.
"""

from __future__ import annotations

import sys

from repro import obs
from repro.common.errors import ConfigError
from repro.experiments import (
    ablations,
    fault_model,
    figure2,
    figure8,
    figure9,
    figure10,
    multiplexing,
    security,
    table1,
    table4,
    table5,
    virt_extension,
)

#: Artifact name -> (runner, takes profile?).
ARTIFACTS = {
    "figure2": (figure2.main, True),
    "figure8": (figure8.main, True),
    "figure9": (figure9.main, True),
    "figure10": (lambda: figure10.main(), False),
    "table1": (table1.main, True),
    "table4": (lambda: table4.main(), False),
    "table5": (lambda: table5.main(), False),
    "ablations": (ablations.main, True),
    "faults": (fault_model.main, True),
    "virt": (lambda: virt_extension.main(), False),
    "multiplex": (multiplexing.main, True),
    "security": (lambda: security.main(), False),
}


def main(argv: list[str]) -> int:
    try:
        return _dispatch(argv)
    except ConfigError as exc:
        # The CLI boundary: library code raises ConfigError (never
        # SystemExit); here it becomes a usage message and exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(argv: list[str]) -> int:
    args = [a for a in argv if not a.startswith("--")]
    profile = "bench" if "--bench" in argv else "full"
    if not args or args[0] in ("list", "help", "-h"):
        print(__doc__)
        print("artifacts:", ", ".join(sorted(ARTIFACTS)), "or 'all'")
        return 0
    if args[0] == "obs":
        from repro.obs import report
        return report.main(argv[1:])
    if args[0] == "top":
        from repro.obs import top
        return top.main(argv[1:])
    if args[0] == "pair":
        from repro.sim.runner import pair_main
        return pair_main(argv[1:])
    if args[0] == "sweep":
        from repro.sweep import cli as sweep_cli
        rc = sweep_cli.main(argv[1:])
        obs.flush(tag="sweep")
        _metrics_snapshot()
        return rc
    if args[0] == "fuzz":
        from repro.gen import cli as fuzz_cli
        rc = fuzz_cli.main(argv[1:])
        obs.flush(tag="fuzz")
        return rc
    names = sorted(ARTIFACTS) if args[0] == "all" else args
    for name in names:
        if name not in ARTIFACTS:
            print(f"unknown artifact {name!r}; have {sorted(ARTIFACTS)}")
            return 1
        runner, takes_profile = ARTIFACTS[name]
        print(f"=== {name} ===")
        if takes_profile:
            runner(profile)
        else:
            runner()
        obs.flush(tag=name)
        print()
    return 0


def _metrics_snapshot() -> None:
    """Write the final ``metrics.prom`` for an observed sweep.

    Folds the full bus stream once after the sweep ends, so CI can
    upload a closing Prometheus snapshot even when no live ``repro
    top`` watcher ran.  Silent no-op when the bus was off.
    """
    from repro.obs import bus as obs_bus
    from repro.obs import core as obs_core
    from repro.obs import top
    if not obs_core.ENABLED:
        return
    path = obs_bus.bus_path()
    if path is None or not path.exists():
        return
    events = obs_bus.read_events(path)
    # Several sweeps may share one stream (the chaos smoke runs one per
    # fault site); the closing snapshot describes the last one.
    last_run = next((e["run_id"] for e in reversed(events)
                     if e.get("kind") == "sweep-begin"), None)
    if last_run is not None:
        events = [e for e in events if e.get("run_id") == last_run]
    model = top.TopModel.fold(events)
    top.write_snapshot(model, obs_core.out_dir() / top.METRICS_FILENAME)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
