"""Placement of Graphicionado's data structures in a simulated process.

The paper's workloads allocate the graph on the application heap (shared
with the accelerator), so each stream here is a ``malloc`` by the host
process — which, under a DVM policy, identity-maps them (Figure 7) and,
under a conventional policy, demand-pages them at the configured page size.
The resulting base addresses are what :meth:`SymbolicTrace.concretize`
binds the trace to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import trace as T
from repro.graphs.csr import CSRGraph
from repro.kernel.process import Process


@dataclass
class GraphLayout:
    """Base VAs of every stream plus footprint accounting."""

    stream_bases: dict[int, int]
    stream_sizes: dict[int, int]
    prop_bytes: int

    @property
    def heap_bytes(self) -> int:
        """Total bytes allocated for the graph (the Table 3 'heap size')."""
        return sum(self.stream_sizes.values())

    def base(self, stream: int) -> int:
        """Base VA of a stream."""
        return self.stream_bases[stream]


def place_graph(process: Process, graph: CSRGraph,
                prop_bytes: int = T.PROP_BYTES) -> GraphLayout:
    """Allocate the accelerator-visible arrays in ``process``'s heap.

    ``prop_bytes`` is the per-vertex property size: 8 B for BFS / PageRank /
    SSSP scalars, 64 B for CF's latent-feature vectors.
    """
    v = graph.num_vertices
    e = graph.num_edges
    sizes = {
        T.VPROP: v * prop_bytes,
        T.VPROP_TMP: v * T.PROP_BYTES,
        T.OFFSETS: (v + 1) * T.OFFSET_BYTES,
        T.EDGES: e * T.EDGE_RECORD_BYTES,
        T.FRONTIER: v * T.FRONTIER_BYTES,
    }
    bases = {}
    for stream, size in sizes.items():
        va = process.malloc.malloc(size)
        bases[stream] = va
    return GraphLayout(stream_bases=bases, stream_sizes=sizes,
                       prop_bytes=prop_bytes)


def identity_fraction(process: Process, layout: GraphLayout) -> float:
    """Fraction of the graph's bytes that ended up identity mapped."""
    total = 0
    identity = 0
    for stream, base in layout.stream_bases.items():
        size = layout.stream_sizes[stream]
        total += size
        if process.is_identity(base) and process.is_identity(base + size - 1):
            identity += size
    return identity / total if total else 0.0
