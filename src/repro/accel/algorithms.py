"""Workload-level entry points: the paper's four graph algorithms.

``run_workload`` dispatches a named workload — ``bfs``, ``pagerank``,
``sssp`` or ``cf`` (Section 6.2) — on a graph, returning the accelerator's
:class:`ExecutionResult` (functional output + symbolic memory trace).

Knobs mirror the experiments' needs: PageRank runs a fixed iteration count
(per-iteration MMU behaviour is steady-state, so one iteration measures the
same overheads as running to convergence); SSSP takes an iteration cap to
bound the Bellman–Ford tail on large graphs; traversal sources default to
the highest-out-degree vertex so BFS/SSSP reach most of the graph.
"""

from __future__ import annotations

import numpy as np

from repro.accel.graphicionado import DEFAULT_NUM_PES, ExecutionResult, Graphicionado
from repro.accel.vertex_program import (
    BFSProgram,
    ConnectedComponentsProgram,
    PageRankProgram,
    SSSPProgram,
)
from repro.graphs.bipartite import BipartiteShape
from repro.graphs.csr import CSRGraph

#: Workload names as used in the paper's figures, plus connected
#: components (``cc``) as an extra vertex program beyond the paper's set.
WORKLOADS = ("bfs", "pagerank", "sssp", "cf", "cc")

#: CF's per-vertex property: an 8-float latent-feature vector (64 B).
CF_PROP_BYTES = 64


def default_source(graph: CSRGraph) -> int:
    """Traversal source: the highest-out-degree vertex (reaches the most)."""
    return int(np.argmax(graph.out_degree()))


def run_workload(name: str, graph: CSRGraph, *,
                 shape: BipartiteShape | None = None,
                 num_pes: int = DEFAULT_NUM_PES,
                 source: int | None = None,
                 pagerank_iters: int = 1,
                 sssp_max_iters: int = 5,
                 cf_passes: int = 1,
                 seed: int = 0) -> ExecutionResult:
    """Run one named workload; returns functional results plus the trace."""
    accel = Graphicionado(num_pes=num_pes)
    if name == "cf":
        if shape is None:
            raise ValueError("cf needs the bipartite shape (user count)")
        return accel.run_cf(graph, shape.num_users, passes=cf_passes,
                            seed=seed)
    if source is None:
        source = default_source(graph)
    if name == "bfs":
        return accel.run_program(BFSProgram(), graph, source=source)
    if name == "sssp":
        return accel.run_program(SSSPProgram(max_iters=sssp_max_iters),
                                 graph, source=source)
    if name == "pagerank":
        return accel.run_program(PageRankProgram(iterations=pagerank_iters),
                                 graph, source=source)
    if name == "cc":
        return accel.run_program(ConnectedComponentsProgram(), graph,
                                 source=source)
    raise ValueError(f"unknown workload {name!r}; have {WORKLOADS}")


def prop_bytes_for(name: str) -> int:
    """Per-vertex property size a workload's layout needs."""
    return CF_PROP_BYTES if name == "cf" else 8
