"""Functional Graphicionado model with trace generation.

Executes a vertex program (or CF's edge-centric SGD) over a CSR graph the
way Graphicionado's pipeline does — per active vertex: read the ancillary
offset entry and the source property, stream the vertex's edge records,
reduce updates into the destination-side temporary array; then an apply
phase folds temporaries into properties and emits the next active list.
Eight processing engines consume contiguous slices of the work list in
lockstep (modelled by round-robin interleaving, :func:`interleave_chunks`).

Every memory touch the pipeline would make is emitted into a
:class:`SymbolicTrace` with exact per-vertex interleaving:

``[offsets[u], vprop[u], edge e0, tmp[dst0] rd, tmp[dst0] wr, edge e1, ...]``

One deliberate simplification (documented in DESIGN.md): the active list is
assumed queued on-chip between phases (its writes are emitted, its reads
are not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel import trace as T
from repro.accel.trace import SymbolicTrace, interleave_chunks
from repro.accel.vertex_program import VertexProgram
from repro.graphs.csr import CSRGraph

#: Paper configuration (Table 2): eight processing engines.
DEFAULT_NUM_PES = 8


@dataclass
class ExecutionResult:
    """Outcome of one accelerator run."""

    trace: SymbolicTrace
    prop: np.ndarray          # final vertex properties (CF: user|item vectors)
    iterations: int
    converged: bool
    aux: dict = field(default_factory=dict)


class Graphicionado:
    """The accelerator model: functional execution + trace emission."""

    def __init__(self, num_pes: int = DEFAULT_NUM_PES):
        if num_pes <= 0:
            raise ValueError(f"need at least one processing engine: {num_pes}")
        self.num_pes = num_pes

    # -- vertex programs -----------------------------------------------------

    def run_program(self, program: VertexProgram, graph: CSRGraph,
                    source: int = 0) -> ExecutionResult:
        """Run a vertex program to convergence or its iteration cap."""
        if not 0 <= source < graph.num_vertices:
            raise ValueError(f"source {source} out of range")
        prop = program.initial(graph, source)
        frontier = program.initial_frontier(graph, source)
        offsets = graph.offsets
        parts: list[SymbolicTrace] = []
        iterations = 0
        converged = False
        while iterations < program.max_iters:
            if len(frontier) == 0:
                converged = True
                break
            ordered = interleave_chunks(frontier, self.num_pes)
            counts = (offsets[ordered + 1] - offsets[ordered])
            total_edges = int(counts.sum())
            edge_idx, src_per_edge = self._expand(ordered, counts,
                                                  offsets, total_edges)
            dsts = graph.dst[edge_idx]
            updates = program.propagate(prop[src_per_edge],
                                        graph.weight[edge_idx],
                                        graph, src_per_edge)
            tmp = np.full(graph.num_vertices, program.reduce_identity())
            program.reduce_ufunc.at(tmp, dsts, updates)
            new_prop = program.apply(prop, tmp)
            changed = new_prop != prop
            parts.append(self._stream_phase(ordered, counts, edge_idx, dsts,
                                            program.prop_bytes))
            if program.all_active:
                touched = np.arange(graph.num_vertices, dtype=np.int64)
                next_frontier = touched
                # PageRank-style programs keep no active list in memory.
                frontier_writes = 0
            else:
                touched = np.unique(dsts)
                next_frontier = np.nonzero(changed)[0].astype(np.int64)
                frontier_writes = len(next_frontier)
            parts.append(self._apply_phase(touched, frontier_writes,
                                           program.prop_bytes))
            prop = new_prop
            frontier = next_frontier
            iterations += 1
        else:
            converged = program.all_active or len(frontier) == 0
        return ExecutionResult(trace=SymbolicTrace.concat(parts), prop=prop,
                               iterations=iterations, converged=converged)

    # -- collaborative filtering ----------------------------------------------

    def run_cf(self, graph: CSRGraph, num_users: int, *, features: int = 8,
               learning_rate: float = 0.002, regularization: float = 0.02,
               passes: int = 1, seed: int = 0) -> ExecutionResult:
        """One or more SGD passes of latent-factor collaborative filtering.

        Per rating edge the pipeline reads the edge record and both latent
        vectors, then writes both back (5 accesses; Section 6.2's CF).  The
        functional update is a vectorised batch SGD step — deterministic,
        with colliding updates accumulated, which preserves the access
        pattern exactly.
        """
        if not 0 < num_users < graph.num_vertices:
            raise ValueError("num_users must split the vertex range")
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((graph.num_vertices, features)) * 0.1
        src_all = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                            np.diff(graph.offsets))
        parts: list[SymbolicTrace] = []
        errors: list[float] = []
        num_edges = graph.num_edges
        for _ in range(passes):
            order = interleave_chunks(np.arange(num_edges, dtype=np.int64),
                                      self.num_pes)
            users = src_all[order]
            items = graph.dst[order]
            ratings = graph.weight[order]
            predicted = np.einsum("ij,ij->i", vectors[users], vectors[items])
            err = ratings - predicted
            du = learning_rate * (err[:, None] * vectors[items]
                                  - regularization * vectors[users])
            di = learning_rate * (err[:, None] * vectors[users]
                                  - regularization * vectors[items])
            np.add.at(vectors, users, du)
            np.add.at(vectors, items, di)
            errors.append(float(np.sqrt(np.mean(err ** 2))))
            parts.append(self._cf_phase(order, users, items))
        return ExecutionResult(trace=SymbolicTrace.concat(parts),
                               prop=vectors, iterations=passes,
                               converged=True, aux={"rmse": errors})

    # -- trace assembly ----------------------------------------------------------

    @staticmethod
    def _expand(ordered: np.ndarray, counts: np.ndarray, offsets: np.ndarray,
                total_edges: int) -> tuple[np.ndarray, np.ndarray]:
        """Edge indices (grouped per vertex, in work-list order) and sources."""
        if total_edges == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        cum_before = np.zeros(len(ordered), dtype=np.int64)
        np.cumsum(counts[:-1], out=cum_before[1:])
        within = np.arange(total_edges, dtype=np.int64) - np.repeat(cum_before,
                                                                    counts)
        edge_idx = np.repeat(offsets[ordered], counts) + within
        src_per_edge = np.repeat(ordered, counts)
        return edge_idx, src_per_edge

    @staticmethod
    def _stream_phase(ordered: np.ndarray, counts: np.ndarray,
                      edge_idx: np.ndarray, dsts: np.ndarray,
                      prop_bytes: int) -> SymbolicTrace:
        """Per-vertex interleaved stream-phase accesses.

        Per active vertex: its offset entry and source property; per edge:
        the edge record, then the destination-side reduce as a
        read-modify-write pair on the temporary property.
        """
        f = len(ordered)
        e = len(edge_idx)
        total = 2 * f + 3 * e
        sid = np.empty(total, dtype=np.int8)
        off = np.empty(total, dtype=np.int64)
        wr = np.zeros(total, dtype=np.int8)
        cum_before = np.zeros(f, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum_before[1:])
        starts = 2 * np.arange(f, dtype=np.int64) + 3 * cum_before
        sid[starts] = T.OFFSETS
        off[starts] = ordered * T.OFFSET_BYTES
        sid[starts + 1] = T.VPROP
        off[starts + 1] = ordered * prop_bytes
        if e:
            within = np.arange(e, dtype=np.int64) - np.repeat(cum_before,
                                                              counts)
            epos = np.repeat(starts + 2, counts) + 3 * within
            sid[epos] = T.EDGES
            off[epos] = edge_idx * T.EDGE_RECORD_BYTES
            sid[epos + 1] = T.VPROP_TMP
            off[epos + 1] = dsts * T.PROP_BYTES
            sid[epos + 2] = T.VPROP_TMP
            off[epos + 2] = dsts * T.PROP_BYTES
            wr[epos + 2] = 1
        return SymbolicTrace(streams=sid, offsets=off, writes=wr)

    @staticmethod
    def _apply_phase(touched: np.ndarray, next_frontier_len: int,
                     prop_bytes: int) -> SymbolicTrace:
        """Apply-phase accesses: tmp read + prop write per touched vertex,
        then sequential next-frontier writes."""
        t = len(touched)
        total = 2 * t + next_frontier_len
        sid = np.empty(total, dtype=np.int8)
        off = np.empty(total, dtype=np.int64)
        wr = np.zeros(total, dtype=np.int8)
        pos = 2 * np.arange(t, dtype=np.int64)
        sid[pos] = T.VPROP_TMP
        off[pos] = touched * T.PROP_BYTES
        sid[pos + 1] = T.VPROP
        off[pos + 1] = touched * prop_bytes
        wr[pos + 1] = 1
        if next_frontier_len:
            tail = slice(2 * t, total)
            sid[tail] = T.FRONTIER
            off[tail] = (np.arange(next_frontier_len, dtype=np.int64)
                         * T.FRONTIER_BYTES)
            wr[tail] = 1
        return SymbolicTrace(streams=sid, offsets=off, writes=wr)

    @staticmethod
    def _cf_phase(order: np.ndarray, users: np.ndarray,
                  items: np.ndarray) -> SymbolicTrace:
        """Five interleaved accesses per rating edge (CF's prop_bytes=64)."""
        e = len(order)
        total = 5 * e
        sid = np.empty(total, dtype=np.int8)
        off = np.empty(total, dtype=np.int64)
        wr = np.zeros(total, dtype=np.int8)
        prop_bytes = 64
        sid[0::5] = T.EDGES
        off[0::5] = order * T.EDGE_RECORD_BYTES
        sid[1::5] = T.VPROP
        off[1::5] = users * prop_bytes
        sid[2::5] = T.VPROP
        off[2::5] = items * prop_bytes
        sid[3::5] = T.VPROP
        off[3::5] = users * prop_bytes
        wr[3::5] = 1
        sid[4::5] = T.VPROP
        off[4::5] = items * prop_bytes
        wr[4::5] = 1
        return SymbolicTrace(streams=sid, offsets=off, writes=wr)
