"""Graphicionado substrate: vertex programs, trace generation, layout."""

from repro.accel.algorithms import (
    CF_PROP_BYTES,
    WORKLOADS,
    default_source,
    prop_bytes_for,
    run_workload,
)
from repro.accel.graphicionado import (
    DEFAULT_NUM_PES,
    ExecutionResult,
    Graphicionado,
)
from repro.accel.layout import GraphLayout, identity_fraction, place_graph
from repro.accel.trace import (
    EDGES,
    FRONTIER,
    OFFSETS,
    STREAM_NAMES,
    VPROP,
    VPROP_TMP,
    SymbolicTrace,
    interleave_chunks,
)
from repro.accel.vertex_program import (
    PROGRAMS,
    BFSProgram,
    ConnectedComponentsProgram,
    PageRankProgram,
    SSSPProgram,
    VertexProgram,
)

__all__ = [
    "CF_PROP_BYTES",
    "WORKLOADS",
    "default_source",
    "prop_bytes_for",
    "run_workload",
    "DEFAULT_NUM_PES",
    "ExecutionResult",
    "Graphicionado",
    "GraphLayout",
    "identity_fraction",
    "place_graph",
    "EDGES",
    "FRONTIER",
    "OFFSETS",
    "STREAM_NAMES",
    "VPROP",
    "VPROP_TMP",
    "SymbolicTrace",
    "interleave_chunks",
    "PROGRAMS",
    "BFSProgram",
    "ConnectedComponentsProgram",
    "PageRankProgram",
    "SSSPProgram",
    "VertexProgram",
]
