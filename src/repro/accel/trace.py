"""Memory-trace representation for the accelerator.

The simulator is trace-driven in two phases (DESIGN.md): the accelerator
executes a workload *functionally* and emits a **symbolic trace** — per
access, which data-structure *stream* it touched, at what byte offset, and
whether it wrote.  The symbolic trace is independent of any MMU
configuration; binding it to one configuration's address-space layout
(``concretize``) yields the virtual-address trace the IOMMU consumes.
This guarantees every configuration sees the *same* access pattern, exactly
as the paper's paired gem5 runs do.

Streams mirror Graphicionado's data structures (Section 6.1): the vertex
property array, the temporary (destination) property array, the ancillary
edge-offset array, the edge list, and the active-vertex (frontier) list.
"""

from __future__ import annotations

import hashlib
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common import integrity
from repro.common.errors import CacheIntegrityError

#: Stream identifiers.
VPROP = 0        # vertex properties
VPROP_TMP = 1    # destination-side temporary properties (reduce targets)
OFFSETS = 2      # ancillary vertex -> edge-index array
EDGES = 3        # edge list of (src, dst, weight) records
FRONTIER = 4     # active-vertex list

STREAM_NAMES = {
    VPROP: "vprop",
    VPROP_TMP: "vprop_tmp",
    OFFSETS: "offsets",
    EDGES: "edges",
    FRONTIER: "frontier",
}

#: Record sizes in bytes (Graphicionado's 3-tuple edge record).
EDGE_RECORD_BYTES = 12
PROP_BYTES = 8
OFFSET_BYTES = 8
FRONTIER_BYTES = 8


@dataclass
class SymbolicTrace:
    """A layout-independent access trace.

    Attributes
    ----------
    streams:
        ``int8[n]`` stream id per access.
    offsets:
        ``int64[n]`` byte offset within the stream per access.
    writes:
        ``int8[n]`` 1 for stores, 0 for loads.
    """

    streams: np.ndarray
    offsets: np.ndarray
    writes: np.ndarray

    def __post_init__(self):
        self.streams = np.asarray(self.streams, dtype=np.int8)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.writes = np.asarray(self.writes, dtype=np.int8)
        if not (len(self.streams) == len(self.offsets) == len(self.writes)):
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.streams)

    @classmethod
    def concat(cls, parts: list["SymbolicTrace"]) -> "SymbolicTrace":
        """Concatenate trace segments in order."""
        if not parts:
            return cls(np.empty(0, np.int8), np.empty(0, np.int64),
                       np.empty(0, np.int8))
        return cls(
            streams=np.concatenate([p.streams for p in parts]),
            offsets=np.concatenate([p.offsets for p in parts]),
            writes=np.concatenate([p.writes for p in parts]),
        )

    def concretize(self, stream_bases: dict[int, int]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Bind the trace to concrete VAs given per-stream base addresses."""
        max_stream = int(self.streams.max(initial=0))
        bases = np.zeros(max_stream + 1, dtype=np.int64)
        for stream, base in stream_bases.items():
            if stream <= max_stream:
                bases[stream] = base
        missing = set(np.unique(self.streams)) - set(stream_bases)
        if missing:
            raise KeyError(f"no base address for streams {sorted(missing)}")
        addrs = bases[self.streams] + self.offsets
        return addrs, self.writes

    def content_token(self) -> str:
        """A digest of the trace columns, stable across processes.

        Cache keys derived from it (e.g. the runner's shared page-run
        batches, :func:`repro.sim.fastpath.batch_for`) are identical in
        every worker and every run, unlike ``id()``-based keys, which
        are memory addresses.  Computed once per instance and memoized;
        traces are immutable after construction.
        """
        token = self.__dict__.get("_content_token")
        if token is None:
            digest = hashlib.sha1()
            for column in (self.streams, self.offsets, self.writes):
                digest.update(np.ascontiguousarray(column).tobytes())
            token = digest.hexdigest()
            self.__dict__["_content_token"] = token
        return token

    def write_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        return float(self.writes.mean()) if len(self) else 0.0

    def stream_histogram(self) -> dict[str, int]:
        """Access counts by stream name (for trace-composition reports)."""
        counts = np.bincount(self.streams, minlength=len(STREAM_NAMES))
        return {STREAM_NAMES[i]: int(c) for i, c in enumerate(counts) if c}

    def save(self, path) -> None:
        """Persist the trace as compressed numpy (.npz).

        Trace generation is the functional half of a run; caching it lets
        many timing configurations be explored without re-executing the
        workload.
        """
        np.savez_compressed(path, streams=self.streams,
                            offsets=self.offsets, writes=self.writes)

    @classmethod
    def load(cls, path, *, verify: bool = False) -> "SymbolicTrace":
        """Load a trace saved by :meth:`save`.

        With ``verify=True`` the file must carry a valid checksum
        sidecar (:mod:`repro.common.integrity`) — a missing, stale, or
        mismatched sidecar and any undecodable/truncated archive raise
        :class:`CacheIntegrityError` so cache consumers can quarantine
        the artifact and recompute instead of crashing on corrupt data.
        """
        if verify:
            integrity.verify_sidecar(Path(path))
        try:
            data = np.load(path)
            return cls(streams=data["streams"], offsets=data["offsets"],
                       writes=data["writes"])
        except (OSError, KeyError, ValueError, EOFError,
                zipfile.BadZipFile) as exc:
            if verify:
                raise CacheIntegrityError(
                    f"undecodable trace artifact {path}: {exc}") from exc
            raise


def interleave_chunks(values: np.ndarray, num_lanes: int) -> np.ndarray:
    """Round-robin interleave ``num_lanes`` contiguous chunks of ``values``.

    Models Graphicionado's parallel processing engines: the work list is
    partitioned into one contiguous slice per engine, and the engines
    consume their slices in lockstep, so the merged reference stream
    alternates between the slices.
    """
    n = len(values)
    if num_lanes <= 1 or n <= num_lanes:
        return values
    per_lane = -(-n // num_lanes)  # ceil division
    total = per_lane * num_lanes
    padded = np.zeros(total, dtype=values.dtype)
    padded[:n] = values
    # Track padding with a parallel length mask rather than a sentinel
    # value: any value of the input dtype is a legitimate element.
    valid = np.zeros(total, dtype=bool)
    valid[:n] = True
    merged = padded.reshape(num_lanes, per_lane).T.reshape(-1)
    keep = valid.reshape(num_lanes, per_lane).T.reshape(-1)
    return merged[keep]
