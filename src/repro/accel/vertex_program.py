"""Graphicionado's vertex-programming abstraction.

The accelerator exposes three custom functions (paper Section 6.1): a graph
algorithm is expressed as ``processEdge`` (produce an update from a source
vertex's property and an edge weight), ``reduce`` (an associative combine
of updates at the destination) and ``apply`` (fold the reduced temporary
into the vertex property at the end of an iteration).

Our programs are *vectorised*: ``propagate`` maps processEdge over an edge
batch, ``reduce_ufunc`` is the numpy ufunc whose ``.at`` performs the
destination-side reduction, and ``apply`` folds whole arrays.  The
iteration engine in :mod:`repro.accel.graphicionado` is generic over this
interface.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

#: Sentinel for "unreached" in BFS/SSSP properties.
INF = np.float64(np.inf)


class VertexProgram:
    """Base class: one graph algorithm in Graphicionado's model."""

    #: Per-vertex property size in simulated memory (8 B scalars).
    prop_bytes = 8
    #: Whether every vertex is active every iteration (PageRank-style).
    all_active = False
    #: Iteration cap (frontier programs stop early when the frontier empties).
    max_iters = 1

    def initial(self, graph: CSRGraph, source: int) -> np.ndarray:
        """Initial vertex-property array."""
        raise NotImplementedError

    def reduce_identity(self) -> float:
        """Identity element of the reduce operator."""
        raise NotImplementedError

    #: numpy ufunc implementing ``reduce`` (must be associative).
    reduce_ufunc: np.ufunc

    def propagate(self, src_prop: np.ndarray, weight: np.ndarray,
                  graph: CSRGraph, src_ids: np.ndarray) -> np.ndarray:
        """Vectorised ``processEdge`` over an edge batch."""
        raise NotImplementedError

    def apply(self, prop: np.ndarray, tmp: np.ndarray) -> np.ndarray:
        """Vectorised ``apply``: fold reduced temporaries into properties."""
        raise NotImplementedError

    def initial_frontier(self, graph: CSRGraph, source: int) -> np.ndarray:
        """Active vertices of the first iteration."""
        if self.all_active:
            return np.arange(graph.num_vertices, dtype=np.int64)
        return np.array([source], dtype=np.int64)


class BFSProgram(VertexProgram):
    """Breadth-first search: property = hop distance from the source."""

    max_iters = 1_000_000  # bounded by the frontier emptying
    reduce_ufunc = np.minimum

    def initial(self, graph: CSRGraph, source: int) -> np.ndarray:
        prop = np.full(graph.num_vertices, INF)
        prop[source] = 0.0
        return prop

    def reduce_identity(self) -> float:
        return float(INF)

    def propagate(self, src_prop, weight, graph, src_ids):
        return src_prop + 1.0

    def apply(self, prop, tmp):
        return np.minimum(prop, tmp)


class SSSPProgram(VertexProgram):
    """Single-source shortest path (Bellman–Ford flavoured)."""

    def __init__(self, max_iters: int = 1_000_000):
        self.max_iters = max_iters

    reduce_ufunc = np.minimum

    def initial(self, graph: CSRGraph, source: int) -> np.ndarray:
        prop = np.full(graph.num_vertices, INF)
        prop[source] = 0.0
        return prop

    def reduce_identity(self) -> float:
        return float(INF)

    def propagate(self, src_prop, weight, graph, src_ids):
        return src_prop + weight

    def apply(self, prop, tmp):
        return np.minimum(prop, tmp)


class PageRankProgram(VertexProgram):
    """PageRank: property = rank; runs a fixed number of iterations."""

    all_active = True
    reduce_ufunc = np.add

    def __init__(self, iterations: int = 1, damping: float = 0.85):
        self.max_iters = iterations
        self.damping = damping

    def initial(self, graph: CSRGraph, source: int) -> np.ndarray:
        self._out_degree = np.maximum(graph.out_degree(), 1).astype(np.float64)
        self._num_vertices = graph.num_vertices
        return np.full(graph.num_vertices, 1.0 / graph.num_vertices)

    def reduce_identity(self) -> float:
        return 0.0

    def propagate(self, src_prop, weight, graph, src_ids):
        return src_prop / self._out_degree[src_ids]

    def apply(self, prop, tmp):
        return (1.0 - self.damping) / self._num_vertices + self.damping * tmp


class ConnectedComponentsProgram(VertexProgram):
    """Label-propagation weakly-connected components.

    Not part of the paper's evaluation set, but expressible in the same
    three custom functions ("Most graph algorithms can be specified and
    executed on Graphicionado", Section 6.1): the property is a component
    label, processEdge forwards the source's label, reduce takes the
    minimum, apply keeps the smaller label.  Treats edges as undirected by
    propagating along out-edges until a fixed point.
    """

    max_iters = 1_000_000
    reduce_ufunc = np.minimum

    def initial(self, graph: CSRGraph, source: int) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.float64)

    def reduce_identity(self) -> float:
        return float(INF)

    def propagate(self, src_prop, weight, graph, src_ids):
        return src_prop

    def apply(self, prop, tmp):
        return np.minimum(prop, tmp)

    def initial_frontier(self, graph: CSRGraph, source: int) -> np.ndarray:
        # Every vertex starts with its own label and must broadcast it.
        return np.arange(graph.num_vertices, dtype=np.int64)


PROGRAMS = {
    "bfs": BFSProgram,
    "sssp": SSSPProgram,
    "pagerank": PageRankProgram,
    "cc": ConnectedComponentsProgram,
}
