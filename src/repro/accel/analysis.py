"""Trace analytics: the locality statistics behind the paper's regimes.

The paper's results are functions of a few trace properties — footprints
versus TLB reach, access irregularity, stream composition (Section 2's
motivation; Figure 2).  This module computes those properties from a
symbolic trace so the scaling invariants in DESIGN.md can be *measured*
rather than assumed (see ``examples/trace_diagnostics.py`` and the
tests in ``tests/accel/test_analysis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.trace import STREAM_NAMES, SymbolicTrace

#: 4 KB pages, as everywhere else.
PAGE_SHIFT = 12


@dataclass
class StreamStats:
    """Locality profile of one stream within a trace."""

    name: str
    accesses: int
    footprint_bytes: int        # distinct 4 KB pages touched * 4 KB
    write_fraction: float
    sequential_fraction: float  # accesses within 64 B of their predecessor


@dataclass
class TraceProfile:
    """Whole-trace locality profile."""

    accesses: int
    footprint_bytes: int
    streams: list[StreamStats]
    hot_page_coverage: dict[int, float]   # top-N pages -> access coverage

    def stream(self, name: str) -> StreamStats:
        """Look up one stream's stats by name."""
        for s in self.streams:
            if s.name == name:
                return s
        raise KeyError(f"no stream named {name!r}")


def profile_trace(trace: SymbolicTrace,
                  hot_page_counts=(16, 32, 128)) -> TraceProfile:
    """Compute the locality profile of a symbolic trace.

    ``hot_page_coverage[n]`` is the fraction of accesses that fall on the
    ``n`` most-accessed (stream, page) pairs — an upper bound on any
    ``n``-entry TLB's hit rate, and the quantity the scaling table in
    DESIGN.md keeps in the paper's regime.
    """
    if len(trace) == 0:
        return TraceProfile(accesses=0, footprint_bytes=0, streams=[],
                            hot_page_coverage={n: 0.0
                                               for n in hot_page_counts})
    # Globally unique page key: stream id in the high bits.
    pages = (trace.offsets >> PAGE_SHIFT).astype(np.int64)
    keys = (trace.streams.astype(np.int64) << 48) | pages
    unique_keys, counts = np.unique(keys, return_counts=True)
    total = len(trace)
    sorted_counts = np.sort(counts)[::-1]
    coverage = {
        n: float(sorted_counts[:n].sum()) / total
        for n in hot_page_counts
    }
    streams = []
    for stream_id, name in STREAM_NAMES.items():
        mask = trace.streams == stream_id
        n = int(mask.sum())
        if n == 0:
            continue
        offsets = trace.offsets[mask]
        distinct_pages = len(np.unique(offsets >> PAGE_SHIFT))
        deltas = np.abs(np.diff(offsets))
        sequential = float((deltas <= 64).mean()) if len(deltas) else 1.0
        streams.append(StreamStats(
            name=name,
            accesses=n,
            footprint_bytes=distinct_pages << PAGE_SHIFT,
            write_fraction=float(trace.writes[mask].mean()),
            sequential_fraction=sequential,
        ))
    return TraceProfile(
        accesses=total,
        footprint_bytes=len(unique_keys) << PAGE_SHIFT,
        streams=streams,
        hot_page_coverage=coverage,
    )


def reuse_distances(addrs, *, page_shift: int = PAGE_SHIFT,
                    max_samples: int = 50_000) -> np.ndarray:
    """Exact LRU stack distances of a page-reference stream.

    The distance of an access is the number of *distinct* pages referenced
    since the previous access to the same page (``-1`` for cold accesses).
    A fully-associative LRU TLB of ``k`` entries hits exactly the accesses
    with distance < ``k`` — this is the ground truth the TLB models are
    validated against (``tests/accel/test_analysis.py``).

    Computed over the first ``max_samples`` accesses (O(n log n) via a
    Fenwick tree over positions).
    """
    pages = (np.asarray(addrs, dtype=np.int64) >> page_shift)[:max_samples]
    n = len(pages)
    tree = [0] * (n + 1)

    def update(i: int, delta: int) -> None:
        i += 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def query(i: int) -> int:
        # Sum of marks at positions <= i.
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    last_pos: dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    for pos, page in enumerate(pages.tolist()):
        prev = last_pos.get(page)
        if prev is None:
            out[pos] = -1
        else:
            # Distinct pages touched strictly after prev: marked positions
            # in (prev, pos).
            out[pos] = query(pos - 1) - query(prev)
            update(prev, -1)
        update(pos, 1)
        last_pos[page] = pos
    return out


def lru_hit_rate(distances: np.ndarray, entries: int) -> float:
    """Hit rate of a fully-associative LRU structure of ``entries`` slots
    on a stream with the given reuse distances."""
    if len(distances) == 0:
        return 0.0
    hits = np.count_nonzero((distances >= 0) & (distances < entries))
    return hits / len(distances)
