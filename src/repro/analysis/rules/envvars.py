"""ENV: one environment owner, one documented knob inventory.

Every runtime knob is a ``REPRO_*`` environment variable, read through
``repro.common.env`` (so knobs stay enumerable, parse consistently, and
worker processes re-read them at one choke point) and documented in
``docs/configuration.md``.  ENV001 enforces the choke point; ENV002 and
ENV003 are a project-wide cross-check keeping code and the reference
table in sync — no undocumented knobs, no dead documentation.
"""

from __future__ import annotations

import ast
import re

from repro.analysis import config
from repro.analysis.core import (ERROR, Finding, ModuleContext,
                                 ProjectContext, ProjectRule, Rule,
                                 register)

_VAR = re.compile(config.ENV_VAR_PATTERN)
_VAR_FULL = re.compile(rf"^{config.ENV_VAR_PATTERN}$")


@register
class DirectEnvRead(Rule):
    """ENV001: os.environ/os.getenv outside the env owner package."""

    id = "ENV001"
    title = "direct environment read outside common/"
    rationale = ("environment access goes through repro.common.env so "
                 "every knob is enumerable, consistently parsed, and "
                 "re-readable at worker entry")
    scope = config.ENV_READS

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            name = None
            if isinstance(node, (ast.Attribute, ast.Name)):
                name = ctx.dotted(node)
            if name == "os.environ":
                yield ctx.finding(self, node,
                                  "direct os.environ access; read through "
                                  "repro.common.env instead")
            elif isinstance(node, ast.Call) \
                    and ctx.dotted(node.func) == "os.getenv":
                yield ctx.finding(self, node,
                                  "direct os.getenv() call; read through "
                                  "repro.common.env instead")


def _code_vars(project: ProjectContext) -> dict[str, list]:
    """REPRO_* string literals -> [(module, node), ...] across the tree."""
    sites: dict[str, list] = {}
    for ctx in project.modules:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and _VAR_FULL.match(node.value):
                sites.setdefault(node.value, []).append((ctx, node))
    return sites


def _documented_vars(project: ProjectContext) -> dict[str, int] | None:
    """REPRO_* mentions in the configuration doc -> first line number."""
    doc = project.root / config.CONFIG_DOC
    if not doc.is_file():
        return None
    documented: dict[str, int] = {}
    for lineno, text in enumerate(doc.read_text().splitlines(), start=1):
        for match in _VAR.finditer(text):
            documented.setdefault(match.group(0), lineno)
    return documented


@register
class UndocumentedEnvVar(ProjectRule):
    """ENV002: a REPRO_* knob used in code but absent from the docs."""

    id = "ENV002"
    title = "undocumented REPRO_* environment variable"
    rationale = (f"every knob read in code must appear in "
                 f"{config.CONFIG_DOC}; an undocumented knob is "
                 "invisible to operators")

    def check_project(self, project: ProjectContext):
        documented = _documented_vars(project)
        if documented is None:
            yield Finding(rule=self.id, severity=ERROR,
                          path=config.CONFIG_DOC, line=1, col=1,
                          message=f"{config.CONFIG_DOC} is missing; the "
                                  "REPRO_* knob inventory cannot be "
                                  "cross-checked")
            return
        for var, sites in sorted(_code_vars(project).items()):
            if var in documented:
                continue
            ctx, node = sites[0]
            yield ctx.finding(self, node,
                              f"{var} is read in code but not documented "
                              f"in {config.CONFIG_DOC}")


@register
class DeadEnvVarDoc(ProjectRule):
    """ENV003: a documented REPRO_* knob no code reads."""

    id = "ENV003"
    title = "documented REPRO_* variable unused by any code"
    rationale = (f"{config.CONFIG_DOC} rows must correspond to knobs the "
                 "code actually reads; dead rows misdirect operators")

    def check_project(self, project: ProjectContext):
        documented = _documented_vars(project)
        if documented is None:
            return  # ENV002 already reports the missing doc.
        used = set(_code_vars(project))
        for var, lineno in sorted(documented.items()):
            if var not in used:
                yield Finding(rule=self.id, severity=self.severity,
                              path=config.CONFIG_DOC, line=lineno, col=1,
                              message=f"{var} is documented in "
                                      f"{config.CONFIG_DOC} but never "
                                      "referenced by code under analysis")
