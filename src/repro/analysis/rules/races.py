"""RACE0xx: shared module state across the parent/worker fork boundary.

The sweep's workers are separate *processes*: module-level state is
copied at fork/spawn, and every mutation afterwards is process-local.
The per-file MP001 rule already covers mutations lexically inside a
worker-entry function; these rules use the whole-program context
classifier (:mod:`repro.analysis.contexts`) to cover the rest of the
call graph:

* **RACE001** — a function that can execute in a *worker* (or in both
  contexts) mutates a module-level container that parent-context code
  also touches.  The two sides see diverging copies: the parent's reads
  never observe the worker's writes, and scheduler decisions silently
  consume stale state.
* **RACE002** — a *worker-only* helper mutates module-level state that
  no parent code touches: a fork-captured snapshot mutated post-fork.
  The mutation dies with the process (the MP001 bug class, one call
  level deeper), so it must ship back through the pair payload /
  result queue instead.
* **RACE003** — a worker-reachable helper rebinds a module global
  (``global X; X = ...``).  Rebinding is invisible to every other
  process *and* to other call sites in the same worker that imported
  the name directly.

Mutation sites lexically inside the worker-entry functions themselves
are MP001's domain and skipped here; sanctioned shared-state owners
(observability registries, the journal/tracestore protocols, ``common/``)
are excluded by scope.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import (Finding, ProjectContext, ProjectRule,
                                 register)
from repro.analysis.contexts import BOTH, PARENT, WORKER, context_labels
from repro.analysis.graph import _own_nodes, module_name, project_graph
from repro.analysis.rules.mp import _module_mutables, _MUTATORS


def _mutations(info, mutables):
    """(node, name) for each module-level-state mutation in this body."""
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in mutables:
            yield node, node.func.value.id
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if isinstance(root, ast.Name) \
                            and root.id in mutables:
                        yield node, root.id


def _touched(info, mutables) -> set[str]:
    """Module-level names this function reads or writes at all."""
    names: set[str] = set()
    local = {a.arg for a in (info.node.args.posonlyargs
                             + info.node.args.args
                             + info.node.args.kwonlyargs)}
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Name) and node.id in mutables \
                and node.id not in local:
            names.add(node.id)
    return names


class _RaceRule(ProjectRule):
    """Shared walk: classify, find mutation sites, dispatch per rule."""

    scope = config.RACES

    def check_project(self, project: ProjectContext):
        graph = project_graph(project)
        labels = context_labels(project)
        by_module: dict[str, list] = {}
        for qual, info in sorted(graph.functions.items()):
            by_module.setdefault(info.module, []).append(info)
        for mod in sorted(by_module):
            infos = by_module[mod]
            ctx = graph.modules[mod]
            if not self.scope.matches(ctx.relpath):
                continue
            mutables = _module_mutables(ctx.tree)
            parent_touch: set[str] = set()
            for info in infos:
                if labels[info.qualname] in (PARENT, BOTH):
                    parent_touch |= _touched(info, mutables)
            for info in infos:
                if info.name in config.WORKER_ENTRY_NAMES:
                    continue            # MP001's domain
                yield from self.check_function(ctx, info,
                                              labels[info.qualname],
                                              mutables, parent_touch)

    def check_function(self, ctx, info, label, mutables, parent_touch):
        return ()

    def finding(self, ctx, info, node, message) -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=ctx.relpath, line=node.lineno,
                       col=node.col_offset + 1, message=message,
                       snippet=ctx.line_text(node.lineno))


@register
class SharedStateRace(_RaceRule):
    """RACE001: worker-side mutation of state parent code also touches."""

    id = "RACE001"
    title = "module state mutated across the parent/worker boundary"
    rationale = ("workers are processes: a worker-side mutation of "
                 "state the scheduler parent also touches diverges "
                 "silently — the parent consumes a stale snapshot")

    def check_function(self, ctx, info, label, mutables, parent_touch):
        if label not in (WORKER, BOTH):
            return
        for node, name in _mutations(info, mutables):
            if name in parent_touch:
                yield self.finding(
                    ctx, info, node,
                    f"`{info.qualname}` can run in a worker process and "
                    f"mutates module-level `{name}`, which parent-context "
                    "code also touches; the two processes diverge — "
                    "route the update through the result queue / pair "
                    "payload and let the parent merge it")


@register
class ForkCapturedMutation(_RaceRule):
    """RACE002: worker-only mutation of fork-captured module state."""

    id = "RACE002"
    title = "fork-captured module state mutated in worker-only code"
    rationale = ("module state is copied at fork; a worker-only helper "
                 "mutating it updates a doomed snapshot — the MP001 bug "
                 "class one call level deeper")

    def check_function(self, ctx, info, label, mutables, parent_touch):
        if label != WORKER:
            return
        for node, name in _mutations(info, mutables):
            if name not in parent_touch:
                yield self.finding(
                    ctx, info, node,
                    f"`{info.qualname}` runs only in worker processes "
                    f"and mutates fork-captured module state `{name}`; "
                    "the mutation dies with the worker — ship it back "
                    "in the pair payload instead")


@register
class WorkerGlobalRebind(_RaceRule):
    """RACE003: worker-reachable helper rebinds a module global."""

    id = "RACE003"
    title = "module global rebound in worker-reachable code"
    rationale = ("a `global` rebind in a worker is invisible to the "
                 "parent and to from-imports of the old object; state "
                 "handoff must be explicit (payload/queue), not a "
                 "process-local rebind")

    def check_function(self, ctx, info, label, mutables, parent_touch):
        if label not in (WORKER, BOTH):
            return
        for node in _own_nodes(info.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield self.finding(
                        ctx, info, node,
                        f"`{info.qualname}` is worker-reachable and "
                        f"rebinds module global `{name}`; the rebind is "
                        "process-local — return the new value and let "
                        "the caller thread it through explicitly")
