"""GEN: seed discipline in the scenario generator (``repro/gen``).

The fuzzing contract (docs/fuzzing.md) is that a seed *is* a scenario:
``--repro <seed>`` must rebuild a mismatch bit-for-bit, forever.  That
only holds if every random draw flows from the per-purpose generators
built in ``gen/seeds.py`` — one stray module-level ``random.*`` call, or
a generator constructed ad hoc, silently decouples seeds from scenarios.
These rules are stricter than the DET family: inside ``gen/`` even a
*seeded* constructor is a finding outside ``seeds.py``, because two
construction points mean two seeding conventions.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, register
from repro.analysis.rules._ast_util import call_name


@register
class AdHocRandomness(Rule):
    """GEN001: gen/ code must draw from a passed-in seeded generator."""

    id = "GEN001"
    title = "RNG constructed or global RNG drawn outside gen/seeds.py"
    rationale = ("`--repro <seed>` rebuilds a scenario only if every draw "
                 "flows from the per-purpose generators of gen/seeds.py; "
                 "module-level random.*/np.random.* calls (and ad hoc "
                 "generator construction) break the seed-to-scenario "
                 "bijection")
    scope = config.GEN_DRAWS

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(ctx, node)
            if name is None:
                continue
            if name.startswith("random.") or name.startswith("numpy.random."):
                yield ctx.finding(self, node,
                                  f"{name}() in generator code; draw from "
                                  "the rng passed in (built by "
                                  "gen/seeds.rng_for) instead")


@register
class GeneratorWithoutRng(Rule):
    """GEN002: ``gen_*`` functions must take the generator explicitly."""

    id = "GEN002"
    title = "gen_* function without an rng parameter"
    rationale = ("generation entry points that do not take the generator "
                 "explicitly either draw nothing (misleading name) or reach "
                 "for ambient state; threading rng through keeps every "
                 "draw's provenance visible at the call site")
    scope = config.GEN

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith("gen_"):
                continue
            params = {a.arg for a in (node.args.posonlyargs + node.args.args
                                      + node.args.kwonlyargs)}
            if "rng" not in params:
                yield ctx.finding(self, node,
                                  f"{node.name}() does not take an 'rng' "
                                  "parameter; pass a seeded "
                                  "numpy.random.Generator through "
                                  "explicitly")


@register
class ControlPlaneImport(Rule):
    """GEN003: the generator must not import the experiment control plane."""

    id = "GEN003"
    title = "gen/ imports the sweep control plane"
    rationale = ("the runner imports gen/, never the reverse: a scenario "
                 "repro must stay a pure function of its seed, not drag "
                 "sweeps, pools or artifact caches into the loop")
    scope = config.GEN

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                # Both the module and the bound names: `from repro.sim
                # import runner` imports repro.sim.runner.
                base = node.module or ""
                names = [base] + [f"{base}.{a.name}" for a in node.names]
            else:
                continue
            for name in names:
                if any(name == bad or name.startswith(bad + ".")
                       for bad in config.GEN_FORBIDDEN_IMPORTS):
                    yield ctx.finding(self, node,
                                      f"gen/ imports {name}; scenario "
                                      "generation must not depend on the "
                                      "sweep control plane")
