"""OBS: zero-overhead-when-disabled is a contract, not a convention.

PR 4's observability subsystem guarantees that a disabled run executes
*zero* additional per-access work: every recording call in a hot module
sits behind one module-level boolean load (``if obs_core.ENABLED:``).
The recording helpers are null-safe, so an unguarded call *works* — it
just silently costs a function call and a registry lookup per event,
eroding the contract one call site at a time.  This rule keeps the
guard mandatory where it matters.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, register
from repro.analysis.rules._ast_util import attr_access, call_name, guarded_by


@register
class UnguardedObsCall(Rule):
    """OBS001: recording call in a hot module without the ENABLED guard."""

    id = "OBS001"
    title = "unguarded observability recording call in a hot module"
    rationale = ("hot modules must pay exactly one boolean load when "
                 "observability is off; unguarded recording calls erode "
                 "the zero-overhead-when-disabled contract")
    scope = config.HOT_PATH

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(ctx, node)
            if name is None or not self._recording(name):
                continue
            if guarded_by(ctx, node, lambda test: self._guard(ctx, test)):
                continue
            yield ctx.finding(self, node,
                              f"{name}() records without an `if "
                              "obs_core.ENABLED:` guard; wrap it so "
                              "disabled runs pay one boolean load")

    @staticmethod
    def _recording(name: str) -> bool:
        return name in config.OBS_RECORDING_CALLS \
            or name.startswith(config.OBS_RECORDING_PREFIXES)

    @staticmethod
    def _guard(ctx: ModuleContext, test: ast.AST) -> bool:
        if attr_access(test, config.OBS_CORE_MODULE, "ENABLED", ctx):
            return True
        # `if obs_core.enabled():` is an acceptable (slightly slower) guard.
        for sub in ast.walk(test):
            if isinstance(sub, ast.Call) \
                    and call_name(ctx, sub) == \
                    f"{config.OBS_CORE_MODULE}.enabled":
                return True
        return False
