"""OBS: zero-overhead-when-disabled is a contract, not a convention.

PR 4's observability subsystem guarantees that a disabled run executes
*zero* additional per-access work: every recording call in a hot module
sits behind one module-level boolean load (``if obs_core.ENABLED:``).
The recording helpers are null-safe, so an unguarded call *works* — it
just silently costs a function call and a registry lookup per event,
eroding the contract one call site at a time.  OBS001 keeps the guard
mandatory where it matters.

OBS002 is the inverse contract, one layer up: the sweep scheduler's
observable *surface* must stay complete.  Every scheduler state
transition is marked by a ``ResilienceReport`` counter bump
(``self.report.steals += 1`` and friends); since PR 9 each such
transition must also narrate itself onto the event bus (``self._emit``)
so live consumers — ``repro top``, ``SweepWatch`` — see the same story
the post-mortem report tells.  A counter bumped in a function that
emits nothing is a transition the dashboards silently miss.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, register
from repro.analysis.rules._ast_util import (attr_access, call_name,
                                            function_contexts, guarded_by)


@register
class UnguardedObsCall(Rule):
    """OBS001: recording call in a hot module without the ENABLED guard."""

    id = "OBS001"
    title = "unguarded observability recording call in a hot module"
    rationale = ("hot modules must pay exactly one boolean load when "
                 "observability is off; unguarded recording calls erode "
                 "the zero-overhead-when-disabled contract")
    scope = config.HOT_PATH

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(ctx, node)
            if name is None or not self._recording(name):
                continue
            if guarded_by(ctx, node, lambda test: self._guard(ctx, test)):
                continue
            yield ctx.finding(self, node,
                              f"{name}() records without an `if "
                              "obs_core.ENABLED:` guard; wrap it so "
                              "disabled runs pay one boolean load")

    @staticmethod
    def _recording(name: str) -> bool:
        return name in config.OBS_RECORDING_CALLS \
            or name.startswith(config.OBS_RECORDING_PREFIXES)

    @staticmethod
    def _guard(ctx: ModuleContext, test: ast.AST) -> bool:
        if attr_access(test, config.OBS_CORE_MODULE, "ENABLED", ctx):
            return True
        # `if obs_core.enabled():` is an acceptable (slightly slower) guard.
        for sub in ast.walk(test):
            if isinstance(sub, ast.Call) \
                    and call_name(ctx, sub) == \
                    f"{config.OBS_CORE_MODULE}.enabled":
                return True
        return False


#: Call names that count as narrating onto the event bus.
_EMIT_NAMES = frozenset({"_emit", "emit"})


@register
class SilentSchedulerTransition(Rule):
    """OBS002: scheduler state transition without a bus event."""

    id = "OBS002"
    title = "scheduler state transition emits no bus event"
    rationale = ("every ResilienceReport counter bump marks a scheduler "
                 "state transition; a function that bumps a counter but "
                 "never emits onto the event bus is a transition "
                 "`repro top` and SweepWatch consumers silently miss")
    scope = config.SCHED_TRANSITIONS

    def check_module(self, ctx: ModuleContext):
        for scope, nodes in function_contexts(ctx):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            transitions = [n for n in nodes if self._transition(n)]
            if not transitions or any(self._emits(n) for n in nodes):
                continue
            for node in transitions:
                counter = node.target.attr
                yield ctx.finding(self, node,
                                  f"report.{counter} bumped in "
                                  f"{scope.name}() with no bus emit; "
                                  "narrate the transition (self._emit(...)"
                                  ") so live consumers see it")

    @staticmethod
    def _transition(node: ast.AST) -> bool:
        """``<anything>.report.<counter> += ...``"""
        return (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Attribute)
                and node.target.value.attr == "report")

    @staticmethod
    def _emits(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _EMIT_NAMES)
