"""EXN0xx: interprocedural verification of never-raise contracts.

Three paths in this repo document a "never raises" contract, because an
exception there takes down something the exception was too unimportant
to justify killing:

* **EXN001** — bus emission (``obs/bus.py``): "Emission never raises on
  I/O trouble — telemetry must not take a sweep down."  An escape here
  kills the scheduler loop mid-sweep.
* **EXN002** — heartbeat/progress (``obs/progress.py``): heartbeats run
  inside workers and on the supervision path; a raising heartbeat turns
  a cosmetic stream problem into a dead worker the supervisor then
  quarantines.
* **EXN003** — scheduler narration (``sweep/scheduler.py`` ``_emit`` /
  ``_tick``): the narration wrappers sit inside the scheduling loop;
  they may drop telemetry, never abort the sweep.

The may-raise engine (:mod:`repro.analysis.dataflow`) computes, for
every function, the exception types that can escape it — composing
resolved project calls, honoring ``try``/``except`` lexically, and
consulting a table of known-raising operations.  Unresolved calls are
assumed safe, so this verifies the contracts against *known-risky*
operations (file I/O, ``print``, ``json``); it is a bug-finder with a
documented blind spot, not a totality proof.

Findings anchor at the first risky operation (the line to guard), not
at the ``def``.
"""

from __future__ import annotations

from repro.analysis import config
from repro.analysis.core import (Finding, ProjectContext, ProjectRule,
                                 register)
from repro.analysis.dataflow import may_raise
from repro.analysis.graph import project_graph


class _ContractRule(ProjectRule):
    """Verify one configured never-raise contract interprocedurally."""

    scope = config.SRC_ONLY
    contract_desc = ""

    def check_project(self, project: ProjectContext):
        contracts = [entry for entry in config.NEVER_RAISE_CONTRACTS
                     if entry[0] == self.id]
        if not contracts:
            return
        graph = project_graph(project)
        escapes = may_raise(project)
        for qual, info in sorted(graph.functions.items()):
            for _, prefix, names in contracts:
                if not info.module.startswith(prefix) \
                        or info.name not in names:
                    continue
                raised = escapes.get(qual, {})
                if not raised:
                    continue
                first = min(raised.values())
                listed = ", ".join(
                    f"{exc} (line {line})"
                    for exc, line in sorted(raised.items(),
                                            key=lambda kv: (kv[1], kv[0])))
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=info.relpath, line=first, col=1,
                    message=(f"`{qual}` may raise {listed} but is on the "
                             f"{self.contract_desc} never-raise path; "
                             "catch at the risky call and degrade to a "
                             "no-op instead"),
                    snippet=info.ctx.line_text(first))


@register
class BusEmissionMayRaise(_ContractRule):
    """EXN001: bus emit/close can raise."""

    id = "EXN001"
    title = "bus emission path may raise"
    rationale = ("the bus is telemetry, never the source of truth: an "
                 "exception escaping emit()/close() takes the sweep "
                 "down to save an event stream nobody needed")
    contract_desc = "bus-emission"


@register
class HeartbeatMayRaise(_ContractRule):
    """EXN002: heartbeat/progress path can raise."""

    id = "EXN002"
    title = "heartbeat/progress path may raise"
    rationale = ("heartbeats run on the worker supervision path; a "
                 "raising heartbeat turns a broken stderr pipe into a "
                 "quarantined worker and a rebuilt pool")
    contract_desc = "heartbeat"


@register
class NarrationMayRaise(_ContractRule):
    """EXN003: scheduler narration path can raise."""

    id = "EXN003"
    title = "scheduler narration path may raise"
    rationale = ("narration wrappers sit inside the scheduling loop; "
                 "they may drop telemetry but must never abort the "
                 "sweep or poison task state transitions")
    contract_desc = "scheduler-narration"
