"""Shared AST helpers for rule implementations."""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleContext


def call_name(ctx: ModuleContext, node: ast.Call) -> str | None:
    """Import-resolved dotted path of a call target, if resolvable."""
    return ctx.dotted(node.func)


def guarded_by(ctx: ModuleContext, node: ast.AST, test_matches) -> bool:
    """Whether ``node`` sits under an ``if``/conditional whose test
    satisfies ``test_matches`` (a predicate over the test expression).

    Covers ``if COND:`` blocks (the body only — the ``else`` branch is
    the *unguarded* side), ``x if COND else y`` conditional expressions,
    and ``COND and expr`` short circuits.  Ancestry is lexical, which is
    exactly the contract: the guard must be visible at the call site.
    """
    child = node
    for parent in ctx.ancestors(node):
        if isinstance(parent, ast.If) and child in parent.body \
                and test_matches(parent.test):
            return True
        if isinstance(parent, ast.IfExp) and child is parent.body \
                and test_matches(parent.test):
            return True
        if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And) \
                and child in parent.values:
            index = parent.values.index(child)
            if index > 0 and any(test_matches(v)
                                 for v in parent.values[:index]):
                return True
        child = parent
    return False


def attr_access(test: ast.AST, module_dotted: str, attr: str,
                ctx: ModuleContext) -> bool:
    """Does ``test`` reference ``<module>.<attr>`` anywhere?"""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == attr \
                and ctx.dotted(sub.value) == module_dotted:
            return True
        if isinstance(sub, ast.Name) \
                and ctx.imports.get(sub.id) == f"{module_dotted}.{attr}":
            return True
    return False


def mentions_attr(test: ast.AST, attr: str) -> bool:
    """Does ``test`` reference any ``<x>.<attr>`` attribute?"""
    return any(isinstance(sub, ast.Attribute) and sub.attr == attr
               for sub in ast.walk(test))


def const_kwarg(node: ast.Call, name: str):
    """The constant value of keyword ``name``, or None."""
    for keyword in node.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return keyword.value.value
    return None


def function_contexts(ctx: ModuleContext):
    """(scope_node, contained_nodes) for the module and each function.

    ``contained_nodes`` excludes anything belonging to a *nested*
    function definition, so each context sees only its own code.
    """
    scopes = [ctx.tree] + [
        node for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        nodes: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        yield scope, nodes
