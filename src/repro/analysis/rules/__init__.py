"""Rule families.  Importing this package registers every rule."""

from repro.analysis.rules import determinism  # noqa: F401
from repro.analysis.rules import envvars  # noqa: F401
from repro.analysis.rules import exn  # noqa: F401
from repro.analysis.rules import faultpath  # noqa: F401
from repro.analysis.rules import gen  # noqa: F401
from repro.analysis.rules import mp  # noqa: F401
from repro.analysis.rules import obsguard  # noqa: F401
from repro.analysis.rules import races  # noqa: F401
from repro.analysis.rules import sweep  # noqa: F401
from repro.analysis.rules import taintflow  # noqa: F401
