"""SWP: the supervised sweep service must stay live and crash-consistent.

PR 8 moved the batch sweep onto a work-stealing scheduler whose whole
point is that no failure mode can wedge it: workers are killed on missed
heartbeats, queues are bounded, and progress is journaled through a
generation-fenced append-only writer.  Two invariants keep that true
mechanically:

* **SWP001** — no unbounded blocking wait inside ``src/repro/sweep/``.
  A bare ``.join()`` / ``.get()`` / ``.wait()`` / ``.result()`` /
  ``.acquire()`` can block forever on a dead peer, turning the liveness
  supervisor itself into the hung process nobody supervises.  Every
  potentially-blocking call must carry a ``timeout`` (or use a
  ``*_nowait`` variant and poll).

* **SWP002** — durable bytes flow only through the fenced journal
  writer (``sweep/journal.py``) or the atomic tracestore publisher
  (``sweep/tracestore.py``).  Any other module opening a file for
  writing inside the sweep package bypasses generation fencing,
  fsync-on-append and torn-tail recovery — exactly the crash-consistency
  bugs the journal exists to rule out.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, register

#: Method names that block indefinitely unless bounded by a timeout.
_BLOCKING_WAITS = frozenset({"join", "get", "wait", "result", "acquire"})

#: ``join``/``get`` with positional arguments are the harmless builtin
#: forms (``", ".join(parts)``, ``mapping.get(key, default)``); the
#: blocking process/queue forms take no positional payload.

#: ``os.open`` flags that imply the file is being created or written.
_OS_WRITE_FLAGS = frozenset({"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREAT",
                             "O_TRUNC"})


def _has_timeout(node: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in node.keywords)


@register
class UnboundedWait(Rule):
    """SWP001: unbounded blocking wait inside the sweep service."""

    id = "SWP001"
    title = "unbounded join/get/wait/result/acquire in sweep service"
    rationale = ("the sweep scheduler is the liveness supervisor: a "
                 "wait with no timeout can block forever on a dead "
                 "worker or torn queue, and nothing supervises the "
                 "supervisor — bound every wait or poll a *_nowait "
                 "variant")
    scope = config.SWEEP

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_WAITS):
                continue
            if _has_timeout(node) or node.args:
                # A positional argument is either a timeout
                # (``proc.join(5.0)``) or marks the non-blocking
                # builtin form (str.join / dict.get).
                continue
            yield ctx.finding(self, node,
                              f".{node.func.attr}() without a timeout "
                              "can block the sweep service forever; "
                              "pass timeout= or use a *_nowait variant")


@register
class WriteOutsideJournal(Rule):
    """SWP002: durable writes outside the fenced journal/tracestore."""

    id = "SWP002"
    title = "file written outside the fenced journal/tracestore writers"
    rationale = ("sweep durability is crash-consistent only because "
                 "every byte goes through the generation-fenced journal "
                 "appender or the atomic tracestore publisher; ad-hoc "
                 "writes skip fencing, fsync and torn-tail recovery")
    scope = config.SWEEP_WRITES

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(ctx, node)
            if finding is not None:
                yield finding

    def _check_call(self, ctx: ModuleContext, node: ast.Call):
        func = node.func
        # open(path, "w"/"a"/"x"/"+") and Path.open("w"...)
        if ((isinstance(func, ast.Name) and func.id == "open")
                or (isinstance(func, ast.Attribute)
                    and func.attr == "open")) \
                and self._write_mode(node):
            return ctx.finding(self, node,
                               "write-mode open() in the sweep package; "
                               "route durable bytes through the fenced "
                               "journal writer or tracestore publisher")
        # Path.write_text / Path.write_bytes
        if isinstance(func, ast.Attribute) \
                and func.attr in ("write_text", "write_bytes"):
            return ctx.finding(self, node,
                               f".{func.attr}() in the sweep package; "
                               "route durable bytes through the fenced "
                               "journal writer or tracestore publisher")
        # os.open(path, os.O_WRONLY | ...)
        if ctx.dotted(func) == "os.open" and self._os_write_flags(node):
            return ctx.finding(self, node,
                               "os.open() with write flags in the sweep "
                               "package; route durable bytes through "
                               "the fenced journal writer or tracestore "
                               "publisher")
        return None

    @staticmethod
    def _write_mode(node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        elif len(node.args) == 1 and isinstance(node.args[0],
                                                ast.Constant) \
                and isinstance(node.func, ast.Attribute):
            # Path.open("w") — the mode is the sole positional arg.
            mode = node.args[0].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        return isinstance(mode, str) and any(c in mode for c in "wax+")

    @staticmethod
    def _os_write_flags(node: ast.Call) -> bool:
        for arg in node.args[1:]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) \
                        and sub.attr in _OS_WRITE_FLAGS:
                    return True
        return False
