"""DET: nondeterminism must never reach simulated state.

The reproduction's central guarantee (DESIGN.md, tests/chaos,
tests/obs/test_obs_equivalence.py) is that a sweep's metrics are a pure
function of its inputs and seeds — bit-identical across timing engines,
worker counts and chaos seeds.  Anything that injects ambient entropy
into ``sim/``, ``hw/``, ``kernel/`` (or the examples, which assert the
same story to users) silently voids that guarantee.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, Scope, register
from repro.analysis.rules._ast_util import (call_name, const_kwarg,
                                            function_contexts)

#: numpy RNG constructors that are fine *when seeded* (flagged only when
#: called without arguments, which seeds from OS entropy).
_NUMPY_SEEDABLE = frozenset({
    "default_rng", "SeedSequence", "RandomState", "PCG64", "PCG64DXSM",
    "Philox", "SFC64", "MT19937",
})

#: numpy constructs that never draw by themselves.
_NUMPY_ALLOWED = frozenset({"Generator", "BitGenerator"})

#: Wall-clock reads (value-producing; ``time.sleep`` only spends time).
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Ambient-entropy sources with no seeding story at all.
_ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})
_ENTROPY_PREFIXES = ("secrets.",)


@register
class UnseededRandom(Rule):
    """DET001: RNG use that draws from global or OS-entropy state."""

    id = "DET001"
    title = "unseeded or global-state RNG in simulation code"
    rationale = ("stdlib `random.*` and `numpy.random.*` module-level "
                 "functions share hidden global state; results stop being "
                 "a pure function of the configured seed")
    scope = config.DETERMINISM

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(ctx, node)
            if name is None:
                continue
            seeded = bool(node.args or node.keywords)
            if name == "random.Random":
                if not seeded:
                    yield ctx.finding(self, node,
                                      "random.Random() without a seed "
                                      "draws from OS entropy; pass an "
                                      "explicit seed")
            elif name.startswith("random."):
                yield ctx.finding(self, node,
                                  f"{name}() uses the interpreter-global "
                                  "RNG; thread a seeded "
                                  "numpy.random.Generator (or "
                                  "random.Random(seed)) through instead")
            elif name.startswith("numpy.random."):
                attr = name[len("numpy.random."):]
                if attr in _NUMPY_ALLOWED:
                    continue
                if attr in _NUMPY_SEEDABLE:
                    if not seeded:
                        yield ctx.finding(self, node,
                                          f"{name}() without a seed draws "
                                          "from OS entropy; pass an "
                                          "explicit seed")
                else:
                    yield ctx.finding(self, node,
                                      f"{name}() uses numpy's global RNG "
                                      "state; use a seeded "
                                      "numpy.random.default_rng(seed)")


@register
class WallClockRead(Rule):
    """DET002: wall-clock reads inside simulated state computation."""

    id = "DET002"
    title = "wall-clock read in simulation code"
    rationale = ("simulated time must come from the cycle model, never the "
                 "host clock; only the control plane (sim/runner.py, "
                 "sim/resilience.py) may read deadlines and backoff "
                 "pacing from the wall clock")
    scope = config.WALL_CLOCK

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(ctx, node)
                if name in _CLOCK_CALLS:
                    yield ctx.finding(self, node,
                                      f"{name}() reads the host clock "
                                      "inside simulation code; derive "
                                      "timing from the cycle model")


@register
class AmbientEntropy(Rule):
    """DET003: OS-entropy sources anywhere in the library or examples."""

    id = "DET003"
    title = "ambient OS entropy source"
    rationale = ("os.urandom/uuid4/secrets cannot be seeded, so any value "
                 "derived from them is unreproducible by construction")
    scope = config.ALL_SOURCE

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(ctx, node)
            if name is None:
                continue
            if name in _ENTROPY_CALLS \
                    or name.startswith(_ENTROPY_PREFIXES):
                yield ctx.finding(self, node,
                                  f"{name}() is unseedable OS entropy; "
                                  "derive randomness from the experiment "
                                  "seed instead")


@register
class UnorderedHashInput(Rule):
    """DET004: unordered/unsorted data feeding a digest."""

    id = "DET004"
    title = "unordered iteration or unsorted serialization feeding a digest"
    rationale = ("content keys (artifact cache, checkpoint, run ids) must "
                 "be stable across processes; set iteration order and "
                 "unsorted json.dumps are not")
    scope = Scope(include=("src/",))

    def check_module(self, ctx: ModuleContext):
        for _scope, nodes in function_contexts(ctx):
            calls = [n for n in nodes if isinstance(n, ast.Call)]
            if not any((call_name(ctx, c) or "").startswith("hashlib.")
                       for c in calls):
                continue
            for call in calls:
                if call_name(ctx, call) == "json.dumps" \
                        and const_kwarg(call, "sort_keys") is not True:
                    yield ctx.finding(self, call,
                                      "json.dumps() without sort_keys=True "
                                      "in a digest-computing function; "
                                      "dict order would leak into the hash")
            for node in nodes:
                if isinstance(node, (ast.For, ast.AsyncFor)) \
                        and self._unordered(ctx, node.iter):
                    yield ctx.finding(self, node,
                                      "iterating an unordered collection "
                                      "in a digest-computing function; "
                                      "sort before iterating")

    @staticmethod
    def _unordered(ctx: ModuleContext, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) \
                    and func.id in ("set", "frozenset") \
                    and func.id not in ctx.imports:
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("keys", "values", "items"):
                return True
        return False


@register
class IdDerivedKey(Rule):
    """DET005: ``id()`` used as (part of) a key."""

    id = "DET005"
    title = "id()-derived key"
    rationale = ("id() is a memory address — unstable across processes and "
                 "runs; keys must be derived from content (fingerprints, "
                 "content tokens)")
    scope = config.SRC_ONLY

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "id" \
                    and "id" not in ctx.imports and len(node.args) == 1:
                yield ctx.finding(self, node,
                                  "id() yields a memory address; derive "
                                  "keys from content so caches and hashes "
                                  "are stable across processes")


@register
class HashDerivedCacheKey(Rule):
    """DET006: builtin ``hash()`` feeding a cache key."""

    id = "DET006"
    title = "hash()-derived cache key"
    rationale = ("str/bytes hash() is salted per process "
                 "(PYTHONHASHSEED), so cache keys built from it differ "
                 "between sweep workers; batch and kernel caches (the "
                 "fastpath page-run batch, the native LRU kernel) must "
                 "key on content tokens so a result computed in one "
                 "process is found by every other")
    scope = config.SRC_ONLY

    def check_module(self, ctx: ModuleContext):
        for _scope, nodes in function_contexts(ctx):
            if not any(self._cache_ref(n) for n in nodes):
                continue
            for node in nodes:
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Name) \
                        and node.func.id == "hash" \
                        and "hash" not in ctx.imports \
                        and len(node.args) == 1:
                    yield ctx.finding(self, node,
                                      "hash() in a cache-handling function "
                                      "is process-salted for str/bytes; key "
                                      "the cache on a content token "
                                      "(content_token(), fingerprints) "
                                      "instead")

    @staticmethod
    def _cache_ref(node: ast.AST) -> bool:
        return (isinstance(node, ast.Name) and "cache" in node.id.lower()) \
            or (isinstance(node, ast.Attribute)
                and "cache" in node.attr.lower())
