"""FAULT: guest faults travel the delivery protocol, never bare raises.

PR 3 converted every IOMMU raise site to resumable fault delivery
(`hw/fault_queue.FaultPath`): a fault is queued, serviced by the kernel
handler, and the access resumes — a bare ``raise PageFault`` is only
legal as the legacy path when no fault path is attached.  Similarly,
broad ``except`` clauses would swallow the structured error taxonomy
(``common/errors.py``) that sweep containment and the retry tiers
dispatch on.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, register
from repro.analysis.rules._ast_util import guarded_by, mentions_attr

#: Fault exceptions owned by the delivery protocol.
_PROTOCOL_FAULTS = frozenset({"PageFault", "ProtectionFault"})

#: Over-broad handler types that swallow the taxonomy.
_BROAD = frozenset({"Exception", "BaseException"})


def _exc_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class BareFaultRaise(Rule):
    """FAULT001: raising a guest fault outside the delivery protocol."""

    id = "FAULT001"
    title = "bare PageFault/ProtectionFault raise in IOMMU code"
    rationale = ("IOMMU faults must go through FaultPath delivery so the "
                 "access can resume; a bare raise is only the legacy path "
                 "behind an explicit `fault_path is None` check")
    scope = config.IOMMU

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = _exc_name(target)
            if name not in _PROTOCOL_FAULTS:
                continue
            if guarded_by(ctx, node,
                          lambda test: mentions_attr(test, "fault_path")):
                continue
            yield ctx.finding(self, node,
                              f"bare `raise {name}` outside the FaultPath "
                              "delivery protocol; deliver through the "
                              "fault path (or guard the legacy raise with "
                              "`if self.fault_path is None:`)")


@register
class TaxonomySwallowed(Rule):
    """FAULT002: broad except clause that swallows the error taxonomy."""

    id = "FAULT002"
    title = "bare/broad except swallowing the error taxonomy"
    rationale = ("resilience tiers dispatch on common/errors.py "
                 "(TransientError vs fatal); `except:` or `except "
                 "Exception` re-classifies everything as recoverable and "
                 "masks programming errors")
    scope = config.LIBRARY_AND_DRIVERS

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._broad(node.type):
                continue
            if self._reraises(node):
                continue
            caught = "except:" if node.type is None else \
                f"except {_exc_name(node.type) or '...'}"
            yield ctx.finding(self, node,
                              f"`{caught}` swallows the common/errors.py "
                              "taxonomy; catch the narrowest library "
                              "error (or re-raise)")

    @staticmethod
    def _broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(_exc_name(el) in _BROAD for el in type_node.elts)
        return _exc_name(type_node) in _BROAD

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(sub, ast.Raise) and sub.exc is None
                   for stmt in handler.body for sub in ast.walk(stmt))
