"""DET1xx: interprocedural nondeterminism taint into result artifacts.

The per-file DET rules catch a ``time.time()`` *inside* simulation code;
they cannot catch a wall-clock value returned by a helper three calls
away and written into a journal record.  These rules run the forward
taint engine (:mod:`repro.analysis.dataflow`) over the whole-program
graph and flag any nondeterministic source — wall clock, OS entropy,
unseeded RNG, process identity, salted ``hash()``, set iteration order —
reaching a *result sink*:

* **DET101** — journal records (the sweep's source of truth; replays and
  crash-recovery diff journal bytes),
* **DET102** — tracestore columns and ``TimingStats`` fields (the
  published result artifacts the bit-identity guarantee is *about*),
* **DET103** — bus events, excluding wall-clock (the bus stamps wall
  time by design; process identity or entropy in an event breaks
  content-keyed dedup and cross-run attribution),
* **DET104** — cache keys and content digests (a nondeterministic key
  silently forks the cache: every run misses, or worse, collides).

Findings anchor at the sink call site — where the tainted value enters
the artifact — which is also where the fix belongs (pass simulated time,
a seeded draw, or a sorted ordering instead).
"""

from __future__ import annotations

from repro.analysis import config
from repro.analysis.core import (Finding, ProjectContext, ProjectRule,
                                 register)
from repro.analysis.dataflow import SOURCE_LABELS, taint_flows

#: sink kind -> (rule id, sink description used in messages).
_SINK_RULES = {
    "journal": ("DET101", "a journal record"),
    "tracestore": ("DET102", "a tracestore column"),
    "timing-stats": ("DET102", "a TimingStats field"),
    "bus-event": ("DET103", "a bus event"),
    "cache-key": ("DET104", "a cache key"),
    "digest": ("DET104", "a content digest"),
}


class _TaintRule(ProjectRule):
    """Shared machinery: report the engine's flows for this rule's sinks."""

    scope = config.TAINT
    #: Source labels this sink legitimately carries (not reported).
    allowed_labels: frozenset = frozenset()

    def check_project(self, project: ProjectContext):
        line_text = {ctx.relpath: ctx.line_text
                     for ctx in project.modules}
        for flow in taint_flows(project):
            rule_id, sink_desc = _SINK_RULES.get(flow.sink, (None, ""))
            if rule_id != self.id or flow.label in self.allowed_labels:
                continue
            if not self.scope.matches(flow.relpath):
                continue
            source = SOURCE_LABELS.get(flow.label, flow.label)
            via = f" (through `{flow.via}`)" if flow.via else ""
            text = line_text.get(flow.relpath, lambda _line: "")
            yield Finding(
                rule=self.id, severity=self.severity, path=flow.relpath,
                line=flow.line, col=flow.col,
                message=(f"{source} flows into {sink_desc}{via}; "
                         f"{self.remedy}"),
                snippet=text(flow.line))


@register
class TaintIntoJournal(_TaintRule):
    """DET101: nondeterminism reaching journal records."""

    id = "DET101"
    title = "nondeterministic value flows into a journal record"
    rationale = ("the journal is the sweep's source of truth: replay, "
                 "crash recovery, and the differential oracle all diff "
                 "its bytes, so records must be pure functions of inputs "
                 "and seeds")
    remedy = ("journal bytes must derive only from task inputs and "
              "seeds (use simulated time or a seeded generator)")


@register
class TaintIntoResults(_TaintRule):
    """DET102: nondeterminism reaching tracestore/TimingStats."""

    id = "DET102"
    title = "nondeterministic value flows into a published result"
    rationale = ("tracestore columns and TimingStats are the artifacts "
                 "the scalar/fastpath bit-identity guarantee compares; "
                 "one tainted field makes every differential run a "
                 "false mismatch")
    remedy = ("published results must be bit-identical across runs "
              "(derive the value from simulated state, not the host)")


@register
class TaintIntoBusEvents(_TaintRule):
    """DET103: process-identity/entropy reaching bus events."""

    id = "DET103"
    title = "process-unstable value flows into a bus event"
    rationale = ("bus events carry wall timestamps by design, but "
                 "entropy, unseeded draws, or id()-derived values break "
                 "content-keyed dedup and make stitched traces "
                 "unattributable across runs")
    remedy = ("identify events by run_id/seq/task key, never by "
              "process-local identity")
    allowed_labels = frozenset({"wall-clock"})


@register
class TaintIntoCacheKeys(_TaintRule):
    """DET104: nondeterminism reaching cache keys / digests."""

    id = "DET104"
    title = "nondeterministic value flows into a cache key or digest"
    rationale = ("a key derived from wall time, addresses, or iteration "
                 "order forks the cache per run — permanent misses at "
                 "best, cross-run collisions at worst")
    remedy = ("derive keys from canonicalized content only "
              "(sort_keys=True, sorted() iteration, seeded ids)")
