"""MP: pool workers must ship state back; pools live in one place.

PR 4 fixed (by hand) a bug class this family now checks mechanically: a
process-pool worker that mutates module-level state — a registry, a
cache dict, a counter — loses that state when the process exits unless
it is shipped back through the pair payload and merged by the parent
(``ExperimentRunner._absorb_worker_payload``).  MP001 flags module-level
mutable state rebound or mutated inside worker-entry code whose name
never reaches a ``return``; MP002 keeps worker-process creation inside
the supervised sweep scheduler, where liveness supervision and
retry/rebuild/merge determinism live.
"""

from __future__ import annotations

import ast

from repro.analysis import config
from repro.analysis.core import ModuleContext, Rule, WARNING, register

#: Mutating method names on module-level containers/registries.
_MUTATORS = frozenset({
    "append", "extend", "add", "update", "clear", "pop", "popitem",
    "remove", "discard", "insert", "setdefault", "merge", "reset",
})

#: Pool constructors sanctioned only inside the resilience runner.
_POOL_CALLS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.get_context",
})


def _module_mutables(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers or instances."""
    names: set[str] = set()
    for stmt in tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp, ast.Call)):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _worker_entries(ctx: ModuleContext) -> list[ast.FunctionDef]:
    """Module-level functions that run inside pool worker processes.

    A function qualifies if its name is a configured worker entry or if
    the module submits it to a pool (``<pool>.submit(fn, ...)``).
    """
    submitted: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "submit" and node.args \
                and isinstance(node.args[0], ast.Name):
            submitted.add(node.args[0].id)
    return [node for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
            and (node.name in config.WORKER_ENTRY_NAMES
                 or node.name in submitted)]


def _returned_names(func: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    names.add(sub.attr)
    return names


@register
class WorkerStateNotShipped(Rule):
    """MP001: worker-entry code mutating module state it never returns."""

    id = "MP001"
    title = "module-level mutable state mutated in worker-entry code"
    rationale = ("state mutated inside a pool worker dies with the "
                 "process unless shipped back through the pair payload "
                 "and merged by the parent (the registry-merge bug class)")
    scope = config.SRC_ONLY

    def check_module(self, ctx: ModuleContext):
        mutables = _module_mutables(ctx.tree)
        for func in _worker_entries(ctx):
            returned = _returned_names(func)
            for node in ast.walk(func):
                yield from self._check_node(ctx, node, mutables, returned)

    def _check_node(self, ctx, node, mutables, returned):
        # `global X` rebinding a module-level name.
        if isinstance(node, ast.Global):
            for name in node.names:
                if name not in returned:
                    yield ctx.finding(self, node,
                                      f"worker-entry code rebinds module "
                                      f"global `{name}`; the new value "
                                      "dies with the worker unless "
                                      "shipped back in the pair payload")
            return
        # X[...] = v / X.attr = v on a module-level container (a bare
        # `X = v` without `global` is just a local rebinding — harmless).
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                root = self._subscript_root(target)
                if root is not None:
                    yield from self._flag(ctx, node, root, mutables,
                                          returned)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS:
            owner = node.func.value
            if isinstance(owner, ast.Name):
                yield from self._flag(ctx, node, owner.id, mutables,
                                      returned)
            elif isinstance(owner, ast.Attribute) \
                    and owner.attr.isupper() \
                    and ctx.dotted(owner.value) is not None:
                # mod.REGISTRY.update(...) — mutating another module's
                # ALL_CAPS global from inside the worker.
                if owner.attr not in returned:
                    yield ctx.finding(self, node,
                                      f"worker-entry code mutates "
                                      f"`{ctx.dotted(owner.value)}."
                                      f"{owner.attr}`; ship it back in "
                                      "the pair payload (the parent "
                                      "merges it) or the mutation is "
                                      "lost")

    @staticmethod
    def _subscript_root(target: ast.AST) -> str | None:
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id
        return None

    def _flag(self, ctx, node, name, mutables, returned):
        if name in mutables and name not in returned:
            yield ctx.finding(self, node,
                              f"worker-entry code mutates module-level "
                              f"`{name}` without returning it; pool "
                              "workers must ship mutated state back in "
                              "the pair payload")


@register
class PoolOutsideRunner(Rule):
    """MP002: process-pool creation outside the resilience runner."""

    id = "MP002"
    title = "worker processes created outside sweep/scheduler.py"
    severity = WARNING
    rationale = ("sweep/scheduler.py owns worker lifecycle (liveness "
                 "supervision, retry, rebuild, payload merge, "
                 "deterministic result order); ad-hoc pools bypass all "
                 "five")
    scope = config.POOLS

    def check_module(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = ctx.dotted(node.func)
                if name in _POOL_CALLS:
                    yield ctx.finding(self, node,
                                      f"{name}() outside the resilience "
                                      "runner; route parallel work "
                                      "through ExperimentRunner.run_pairs")
