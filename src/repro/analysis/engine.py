"""Analysis driver: discover files, run rules, fold suppressions/baseline.

The engine is deliberately dependency-free and deterministic: files are
discovered in sorted order, rules run in id order, and findings are
sorted by location, so two runs over the same tree produce byte-equal
reports — the same property the simulator itself guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis import config
from repro.analysis.core import (ERROR, Finding, ModuleContext,
                                 ProjectContext, ProjectRule, Rule,
                                 all_rules)
from repro.analysis.suppress import Suppressions


@dataclass
class Result:
    """Outcome of one analysis run."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0


def discover_files(root: Path, paths: tuple[str, ...]) -> list[Path]:
    """Python files under ``paths`` (repo-relative), sorted, exclusions
    applied."""
    exclude = config.EXCLUDE
    found: set[Path] = set()
    for entry in paths:
        target = (root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            found.add(target)
            continue
        if not target.is_dir():
            raise FileNotFoundError(f"no such analysis target: {entry}")
        for candidate in target.rglob("*.py"):
            if any(part in config.SKIP_DIRS for part in candidate.parts):
                continue
            found.add(candidate)
    kept = []
    for path in found:
        rel = _relpath(root, path)
        if any(rel.startswith(e) if e.endswith("/") else rel == e
               for e in exclude):
            continue
        kept.append(path)
    return sorted(kept)


def _relpath(root: Path, path: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _select_rules(select: tuple[str, ...] | None,
                  ignore: tuple[str, ...] | None) -> list[Rule]:
    """Registered rules filtered by id or family prefix (``DET``)."""

    def hits(rule: Rule, names: tuple[str, ...]) -> bool:
        return any(rule.id == n or rule.id.startswith(n) for n in names)

    rules = all_rules()
    if select:
        rules = [r for r in rules if hits(r, select)]
    if ignore:
        rules = [r for r in rules if not hits(r, ignore)]
    for rule in rules:
        override = config.SEVERITY_OVERRIDES.get(rule.id)
        if override is not None:
            rule.severity = override
    return rules


def run_analysis(root: Path | str,
                 paths: tuple[str, ...] = config.DEFAULT_PATHS,
                 *,
                 select: tuple[str, ...] | None = None,
                 ignore: tuple[str, ...] | None = None,
                 baseline_path: Path | str | None = None,
                 use_baseline: bool = True,
                 update_baseline: bool = False) -> Result:
    """Run every selected rule over ``paths`` beneath ``root``.

    ``baseline_path`` defaults to ``<root>/.dvmlint-baseline.json``.
    With ``update_baseline`` the current findings *become* the baseline
    (written to that path) and the run reports them as baselined.
    """
    root = Path(root)
    rules = _select_rules(select, ignore)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    result = Result(root=root, rules=[r.id for r in rules])
    project = ProjectContext(root=root)
    raw: list[Finding] = []

    for path in discover_files(root, tuple(paths)):
        rel = _relpath(root, path)
        try:
            ctx = ModuleContext(path, rel, path.read_text())
        except (SyntaxError, UnicodeDecodeError) as exc:
            raw.append(Finding(
                rule="PARSE", severity=ERROR, path=rel,
                line=getattr(exc, "lineno", 1) or 1, col=1,
                message=f"unparseable module: {exc}"))
            continue
        result.files += 1
        project.modules.append(ctx)
        for rule in module_rules:
            if rule.scope.matches(rel):
                raw.extend(rule.check_module(ctx))

    for rule in project_rules:
        raw.extend(rule.check_project(project))

    raw.sort(key=Finding.sort_key)

    # Inline suppressions (per-module directive tables, built lazily).
    tables = {ctx.relpath: Suppressions(ctx) for ctx in project.modules}
    active: list[Finding] = []
    for finding in raw:
        table = tables.get(finding.path)
        if table is not None and table.covers(finding):
            result.suppressed.append(finding)
        else:
            active.append(finding)

    # Baseline.
    bpath = Path(baseline_path) if baseline_path is not None \
        else root / config.BASELINE_FILE
    if update_baseline:
        baseline_mod.save(bpath, active)
        result.baselined = active
        return result
    if use_baseline:
        allowed = baseline_mod.load(bpath)
        active, result.baselined = baseline_mod.partition(active, allowed)
    result.findings = active
    return result
