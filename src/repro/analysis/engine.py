"""Analysis driver: discover files, run rules, fold suppressions/baseline.

The engine is deliberately dependency-free and deterministic: files are
discovered in sorted order, rules run in id order, and findings are
sorted by location, so two runs over the same tree produce byte-equal
reports — the same property the simulator itself guarantees.

With ``use_cache`` the engine consults the content-hash incremental
cache (:mod:`repro.analysis.cache`): per-file module-rule results are
keyed by file hash, the project-rule results by a whole-tree
fingerprint, both salted with the analyzer's own source hash and the
selected ruleset.  An unchanged tree replays every finding without
parsing a single file; a partial hit re-parses the tree (project rules
need it) but skips module-rule execution on unchanged files.  Cached
findings are byte-identical to fresh ones — the cache stores exactly
what the rules produced, post-suppression, and the baseline is always
re-applied fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis import cache as cache_mod
from repro.analysis import config
from repro.analysis.core import (ERROR, Finding, ModuleContext,
                                 ProjectContext, ProjectRule, Rule,
                                 all_rules)
from repro.analysis.suppress import Suppressions


@dataclass
class Result:
    """Outcome of one analysis run."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0


def discover_files(root: Path, paths: tuple[str, ...]) -> list[Path]:
    """Python files under ``paths`` (repo-relative), sorted, exclusions
    applied."""
    exclude = config.EXCLUDE
    found: set[Path] = set()
    for entry in paths:
        target = (root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            found.add(target)
            continue
        if not target.is_dir():
            raise FileNotFoundError(f"no such analysis target: {entry}")
        for candidate in target.rglob("*.py"):
            if any(part in config.SKIP_DIRS for part in candidate.parts):
                continue
            found.add(candidate)
    kept = []
    for path in found:
        rel = _relpath(root, path)
        if any(rel.startswith(e) if e.endswith("/") else rel == e
               for e in exclude):
            continue
        kept.append(path)
    return sorted(kept)


def _relpath(root: Path, path: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _select_rules(select: tuple[str, ...] | None,
                  ignore: tuple[str, ...] | None) -> list[Rule]:
    """Registered rules filtered by id or family prefix (``DET``)."""

    def hits(rule: Rule, names: tuple[str, ...]) -> bool:
        return any(rule.id == n or rule.id.startswith(n) for n in names)

    rules = all_rules()
    if select:
        rules = [r for r in rules if hits(r, select)]
    if ignore:
        rules = [r for r in rules if not hits(r, ignore)]
    for rule in rules:
        override = config.SEVERITY_OVERRIDES.get(rule.id)
        if override is not None:
            rule.severity = override
    return rules


def _parse_error(rel: str, exc: Exception) -> Finding:
    return Finding(rule="PARSE", severity=ERROR, path=rel,
                   line=getattr(exc, "lineno", 1) or 1, col=1,
                   message=f"unparseable module: {exc}")


def _fold(findings: list[Finding], table: Suppressions | None
          ) -> tuple[list[Finding], list[Finding]]:
    """Split sorted findings into (active, suppressed) via one module's
    inline-directive table."""
    if table is None:
        return findings, []
    active, suppressed = [], []
    for finding in findings:
        (suppressed if table.covers(finding) else active).append(finding)
    return active, suppressed


def run_analysis(root: Path | str,
                 paths: tuple[str, ...] = config.DEFAULT_PATHS,
                 *,
                 select: tuple[str, ...] | None = None,
                 ignore: tuple[str, ...] | None = None,
                 baseline_path: Path | str | None = None,
                 use_baseline: bool = True,
                 update_baseline: bool = False,
                 use_cache: bool = False) -> Result:
    """Run every selected rule over ``paths`` beneath ``root``.

    ``baseline_path`` defaults to ``<root>/.dvmlint-baseline.json``.
    With ``update_baseline`` the current findings *become* the baseline
    (written to that path) and the run reports them as baselined.
    ``use_cache`` enables the incremental cache (reads and writes
    ``<root>/build/dvmlint-cache.json``).
    """
    root = Path(root)
    rules = _select_rules(select, ignore)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    result = Result(root=root, rules=[r.id for r in rules])
    files = discover_files(root, tuple(paths))
    rels = [_relpath(root, path) for path in files]
    contents = [path.read_bytes() for path in files]
    shas = {rel: cache_mod.file_sha(data)
            for rel, data in zip(rels, contents)}

    cache = cache_mod.open_cache(root, rules) if use_cache else None
    entries: dict[str, dict | None] = {}
    project_entry = None
    if cache is not None:
        entries = {rel: cache.lookup_file(rel, shas[rel]) for rel in rels}
        tree_fp = cache_mod.tree_fingerprint(shas, cache.engine,
                                             cache.ruleset)
        project_entry = cache.lookup_project(tree_fp)

    active: list[Finding] = []
    suppressed: list[Finding] = []

    if project_entry is not None and all(
            entries[rel] is not None for rel in rels):
        # Full hit: replay everything without parsing a single file.
        for rel in rels:
            entry = entries[rel]
            if entry["parsed"]:
                result.files += 1
            active.extend(map(cache_mod.entry_to_finding,
                              entry["findings"]))
            suppressed.extend(map(cache_mod.entry_to_finding,
                                  entry["suppressed"]))
        active.extend(map(cache_mod.entry_to_finding,
                          project_entry["findings"]))
        suppressed.extend(map(cache_mod.entry_to_finding,
                              project_entry["suppressed"]))
        cache.save()
    else:
        project = ProjectContext(root=root)
        tables: dict[str, Suppressions] = {}
        for rel, path, data in zip(rels, files, contents):
            entry = entries.get(rel)
            parsed = True
            ctx = None
            error: Exception | None = None
            try:
                ctx = ModuleContext(path, rel,
                                    data.decode("utf-8"))
            except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
                parsed = False
                error = exc
            if parsed:
                result.files += 1
                project.modules.append(ctx)
                tables[rel] = Suppressions(ctx)
            if entry is not None:
                # Replay this file's module-rule results.
                active.extend(map(cache_mod.entry_to_finding,
                                  entry["findings"]))
                suppressed.extend(map(cache_mod.entry_to_finding,
                                      entry["suppressed"]))
                continue
            if not parsed:
                finding = _parse_error(rel, error)
                active.append(finding)
                if cache is not None:
                    cache.store_file(rel, shas[rel], parsed=False,
                                     findings=[finding], suppressed=[])
                continue
            raw = []
            for rule in module_rules:
                if rule.scope.matches(rel):
                    raw.extend(rule.check_module(ctx))
            raw.sort(key=Finding.sort_key)
            kept, shed = _fold(raw, tables[rel])
            active.extend(kept)
            suppressed.extend(shed)
            if cache is not None:
                cache.store_file(rel, shas[rel], parsed=True,
                                 findings=kept, suppressed=shed)

        raw = []
        for rule in project_rules:
            raw.extend(rule.check_project(project))
        raw.sort(key=Finding.sort_key)
        project_active: list[Finding] = []
        project_shed: list[Finding] = []
        for finding in raw:
            table = tables.get(finding.path)
            if table is not None and table.covers(finding):
                project_shed.append(finding)
            else:
                project_active.append(finding)
        active.extend(project_active)
        suppressed.extend(project_shed)
        if cache is not None:
            cache.store_project(tree_fp, project_active, project_shed)
            cache.save()

    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    result.suppressed = suppressed
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses

    # Baseline (always applied fresh — it may change independently of
    # file contents).
    bpath = Path(baseline_path) if baseline_path is not None \
        else root / config.BASELINE_FILE
    if update_baseline:
        baseline_mod.save(bpath, active)
        result.baselined = active
        return result
    if use_baseline:
        allowed = baseline_mod.load(bpath)
        active, result.baselined = baseline_mod.partition(active, allowed)
    result.findings = active
    return result


def restrict_to_paths(result: Result, keep: set[str]) -> Result:
    """Drop findings outside ``keep`` (repo-relative paths), in place.

    Used by ``--changed``: the *analysis* always runs over the full tree
    (project rules need it — a change in one file can create a finding
    in another only via whole-program rules, whose findings anchor where
    the flow surfaces), then the report is restricted to the edited
    files.
    """
    result.findings = [f for f in result.findings if f.path in keep]
    result.suppressed = [f for f in result.suppressed if f.path in keep]
    result.baselined = [f for f in result.baselined if f.path in keep]
    return result
