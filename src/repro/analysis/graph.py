"""Whole-program structure: module names, function table, call edges.

The per-file rules see one module at a time; the DET1xx/RACE0xx/EXN0xx
families reason about flows that *cross* function and module boundaries,
so they need a deterministic picture of the whole tree:

* a **module graph** — repo-relative paths mapped to dotted module names
  (``src/repro/sweep/scheduler.py`` → ``repro.sweep.scheduler``) with
  project-internal import edges, and
* a **call graph** — every function/method in the tree
  (:class:`FunctionInfo`, keyed by dotted qualname) with resolved call
  and reference edges between them.

Resolution is static and deliberately modest: import-resolved dotted
chains, module-local names, ``self.method`` within a class (plus
same-tree base classes), locals whose type is pinned by a visible
``x = ClassName(...)`` construction, and the repo-declared
:data:`~repro.analysis.config.ATTR_CALL_HINTS`.  Reference edges
(``Process(target=fn)``, ``pool.submit(fn, ...)``, functions stored in
module-level dispatch tables) are kept separately from call edges so the
context classifier can treat a process spawn as a *boundary* rather than
a call.

Everything is built in sorted order from sorted inputs, so two runs over
the same tree produce identical graphs — the same determinism contract
the engine itself keeps.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis import config
from repro.analysis.core import ModuleContext, ProjectContext


def module_name(relpath: str) -> str:
    """The dotted module name for a repo-relative path.

    ``src/``-rooted files name the installed package; anything else
    (tests, examples, benchmarks) gets a path-derived dotted name so it
    still participates in the graph.
    """
    parts = relpath.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the analyzed tree."""

    qualname: str                 # repro.sweep.scheduler.SweepService._emit
    name: str                     # _emit
    cls: str | None               # SweepService (None for module-level)
    module: str                   # repro.sweep.scheduler
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext


@dataclass
class ProjectGraph:
    """The module/import graph and call graph for one analyzed tree."""

    modules: dict = field(default_factory=dict)      # dotted -> ModuleContext
    functions: dict = field(default_factory=dict)    # qualname -> FunctionInfo
    calls: dict = field(default_factory=dict)        # qualname -> [qualname]
    refs: dict = field(default_factory=dict)         # qualname -> [qualname]
    imports: dict = field(default_factory=dict)      # module -> [module]
    spawn_targets: set = field(default_factory=set)  # Process/submit targets
    _method_index: dict = field(default_factory=dict)   # (mod,cls,name) -> q
    _base_index: dict = field(default_factory=dict)     # (mod,cls) -> [bases]
    _container_funcs: dict = field(default_factory=dict)  # (mod,name) -> [q]
    _local_index: dict = field(default_factory=dict)    # (mod,name) -> [q]
    _resolve_memo: dict = field(default_factory=dict)   # per-call targets
    _types_memo: dict = field(default_factory=dict)     # qualname -> types

    # -- lookups --------------------------------------------------------------

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every function with this bare name, sorted by qualname."""
        return [info for _, info in sorted(self.functions.items())
                if info.name == name]

    def callees(self, qualname: str) -> list[str]:
        return self.calls.get(qualname, [])

    def references(self, qualname: str) -> list[str]:
        return self.refs.get(qualname, [])


def build_graph(project: ProjectContext) -> ProjectGraph:
    """Build the whole-program graph for one parsed tree."""
    graph = ProjectGraph()
    contexts = sorted(project.modules, key=lambda c: c.relpath)
    for ctx in contexts:
        _index_module(graph, ctx)
    for ctx in contexts:
        _link_module(graph, ctx)
    return graph


# -- phase 1: definitions -----------------------------------------------------


def _index_module(graph: ProjectGraph, ctx: ModuleContext) -> None:
    mod = module_name(ctx.relpath)
    graph.modules[mod] = ctx
    for node, cls in _function_defs(ctx.tree):
        qual = f"{mod}.{cls}.{node.name}" if cls else f"{mod}.{node.name}"
        if qual not in graph.functions:
            graph.functions[qual] = FunctionInfo(
                qualname=qual, name=node.name, cls=cls, module=mod,
                relpath=ctx.relpath, node=node, ctx=ctx)
            if cls:
                graph._method_index[(mod, cls, node.name)] = qual
            else:
                graph._local_index.setdefault((mod, node.name),
                                              []).append(qual)
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ClassDef):
            bases = [b.id for b in stmt.bases if isinstance(b, ast.Name)]
            graph._base_index[(mod, stmt.name)] = bases
    _index_containers(graph, ctx, mod)


def _function_defs(tree: ast.Module):
    """(node, class name) for every function def, methods one level deep."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt, None
            yield from _nested(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, stmt.name
                    yield from _nested(sub, stmt.name)


def _nested(func: ast.AST, cls: str | None):
    """Nested defs, attributed to the enclosing class for qualnaming."""
    for node in ast.walk(func):
        if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, cls


def _index_containers(graph: ProjectGraph, ctx: ModuleContext,
                      mod: str) -> None:
    """Module-level dispatch tables: names bound to literals holding
    module-level function references (``EXECUTORS = {"pair": _run_pair}``).
    """
    local = {info.name: qual for qual, info in graph.functions.items()
             if info.module == mod and info.cls is None}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1 \
                or not isinstance(stmt.targets[0], ast.Name):
            continue
        if not isinstance(stmt.value, (ast.Dict, ast.List, ast.Tuple,
                                       ast.Set)):
            continue
        held = sorted({local[sub.id] for sub in ast.walk(stmt.value)
                       if isinstance(sub, ast.Name) and sub.id in local})
        if held:
            graph._container_funcs[(mod, stmt.targets[0].id)] = held


# -- phase 2: edges -----------------------------------------------------------


def _link_module(graph: ProjectGraph, ctx: ModuleContext) -> None:
    mod = module_name(ctx.relpath)
    imported = sorted({
        target.rsplit(".", 1)[0] if target not in graph.modules else target
        for target in ctx.imports.values()
        if target in graph.modules
        or target.rsplit(".", 1)[0] in graph.modules})
    graph.imports[mod] = [m for m in imported if m in graph.modules]
    for node, cls in _function_defs(ctx.tree):
        qual = f"{mod}.{cls}.{node.name}" if cls else f"{mod}.{node.name}"
        info = graph.functions[qual]
        if info.node is not node:       # duplicate name: first def wins
            continue
        _link_function(graph, info)


def _own_nodes(func: ast.AST):
    """Nodes belonging to this def, excluding nested function bodies."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node                  # the def itself, not its body
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_types(graph: ProjectGraph, info: FunctionInfo) -> dict[str, str]:
    """Locals pinned to a project class by a visible construction."""
    memo = graph._types_memo.get(info.qualname)
    if memo is not None:
        return memo
    types: dict[str, str] = {}
    graph._types_memo[info.qualname] = types
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            cls = _class_of_callee(graph, info, node.value.func)
            if cls is not None:
                types[node.targets[0].id] = cls
    return types


def _class_of_callee(graph: ProjectGraph, info: FunctionInfo,
                     func: ast.AST) -> str | None:
    """``(module, Class)`` prefix named by a constructor expression."""
    if isinstance(func, ast.Name):
        dotted = info.ctx.imports.get(func.id)
        if dotted is None:
            mod, name = info.module, func.id
        else:
            mod, _, name = dotted.rpartition(".")
    else:
        dotted = info.ctx.dotted(func)
        if dotted is None:
            return None
        mod, _, name = dotted.rpartition(".")
    if any(key[0] == mod and key[1] == name for key in graph._base_index) \
            or any(k[0] == mod and k[1] == name
                   for k in graph._method_index):
        return f"{mod}.{name}"
    return None


def _link_function(graph: ProjectGraph, info: FunctionInfo) -> None:
    calls: list[str] = []
    refs: list[str] = []
    types = _local_types(graph, info)
    local = {f.name: f.qualname for f in graph.functions.values()
             if f.module == info.module and f.cls is None}
    call_funcs: list[ast.AST] = []
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Call):
            call_funcs.append(node.func)
            calls.extend(resolve_call(graph, info, node, types))
            refs.extend(_spawn_refs(graph, info, node, local))
    called = {node_id: True for node_id in map(_node_key, call_funcs)}
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and _node_key(node) not in called:
            if node.id in local:
                refs.append(local[node.id])
            held = graph._container_funcs.get((info.module, node.id))
            if held:
                refs.extend(held)
            dotted = info.ctx.imports.get(node.id)
            if dotted is not None and dotted in graph.functions:
                refs.append(dotted)
    graph.calls[info.qualname] = sorted(set(calls))
    graph.refs[info.qualname] = sorted(set(refs))


def _node_key(node: ast.AST) -> tuple:
    """Positional identity for an AST node (no addresses: two distinct
    nodes never share a type and a start position)."""
    return (type(node).__name__, getattr(node, "lineno", 0),
            getattr(node, "col_offset", -1))


def _spawn_refs(graph: ProjectGraph, info: FunctionInfo, call: ast.Call,
                local: dict[str, str]) -> list[str]:
    """Worker spawn targets: ``Process(target=fn)`` / ``submit(fn, ..)``."""
    out: list[str] = []
    callee_attr = call.func.attr if isinstance(call.func, ast.Attribute) \
        else call.func.id if isinstance(call.func, ast.Name) else ""
    candidates: list[ast.AST] = []
    if callee_attr == "Process" or callee_attr == "Thread":
        candidates = [kw.value for kw in call.keywords
                      if kw.arg == "target"]
    elif callee_attr == "submit" and call.args:
        candidates = [call.args[0]]
    for expr in candidates:
        qual = None
        if isinstance(expr, ast.Name) and expr.id in local:
            qual = local[expr.id]
        else:
            dotted = info.ctx.dotted(expr)
            if dotted in graph.functions:
                qual = dotted
        if qual is not None:
            out.append(qual)
            if callee_attr != "Thread":     # threads share the process
                graph.spawn_targets.add(qual)
    return out


def resolve_call(graph: ProjectGraph, info: FunctionInfo, call: ast.Call,
                 types: dict[str, str] | None = None) -> list[str]:
    """Project functions a call may dispatch to (possibly empty).

    Resolution depends only on the graph and the (deterministic) local
    type table, so results are memoized per call site across fixpoint
    rounds and engines.
    """
    memo_key = (info.qualname, _node_key(call))
    memo = graph._resolve_memo.get(memo_key)
    if memo is not None:
        return memo
    types = types if types is not None else _local_types(graph, info)
    func = call.func
    out: list[str] = []
    # Import-resolved dotted chain: module function or class construction.
    dotted = info.ctx.dotted(func)
    if dotted is not None:
        if dotted in graph.functions:
            out.append(dotted)
        else:
            init = f"{dotted}.__init__"
            if init in graph.functions:
                out.append(init)
            elif any(f"{dotted}." == q[: len(dotted) + 1]
                     for q in graph.functions):
                out.append(dotted)      # class without __init__: marker
    if isinstance(func, ast.Name):
        # Bare local name: module-level function or same-module class.
        out.extend(graph._local_index.get((info.module, func.id), ()))
        cls = _class_of_callee(graph, info, func)
        if cls is not None:
            init = f"{cls}.__init__"
            if init in graph.functions:
                out.append(init)
    elif isinstance(func, ast.Attribute):
        out.extend(_resolve_attr_call(graph, info, func, types))
    resolved = sorted({q for q in out if q in graph.functions})
    graph._resolve_memo[memo_key] = resolved
    return resolved


def _resolve_attr_call(graph: ProjectGraph, info: FunctionInfo,
                       func: ast.Attribute, types: dict[str, str]
                       ) -> list[str]:
    out: list[str] = []
    owner = func.value
    # self.method() — same class, then same-tree base classes.
    if isinstance(owner, ast.Name) and owner.id == "self" and info.cls:
        out.extend(_method_in_hierarchy(graph, info.module, info.cls,
                                        func.attr))
    # typed local: runner = ExperimentRunner(...); runner.method()
    elif isinstance(owner, ast.Name) and owner.id in types:
        mod, _, cls = types[owner.id].rpartition(".")
        out.extend(_method_in_hierarchy(graph, mod, cls, func.attr))
    # Declared hints: self.bus.emit(...) and friends.
    receiver = _receiver_text(owner)
    for (attr, substring), targets in sorted(
            config.ATTR_CALL_HINTS.items()):
        if func.attr == attr and substring in receiver:
            out.extend(t for t in targets if t in graph.functions)
    return out


def _method_in_hierarchy(graph: ProjectGraph, mod: str, cls: str,
                         name: str) -> list[str]:
    seen: set[tuple[str, str]] = set()
    queue = [(mod, cls)]
    out: list[str] = []
    while queue:
        mod_cls = queue.pop(0)
        if mod_cls in seen:
            continue
        seen.add(mod_cls)
        qual = graph._method_index.get((*mod_cls, name))
        if qual is not None:
            out.append(qual)
            continue
        for base in graph._base_index.get(mod_cls, ()):
            queue.append((mod_cls[0], base))
    return out


def _receiver_text(owner: ast.AST) -> str:
    """Lowercased dotted text of a receiver expression, best effort."""
    parts: list[str] = []
    node = owner
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


# -- shared whole-program state ----------------------------------------------

#: Cache key attribute set on ProjectContext instances (content-derived
#: state would be circular here; the project object *is* the identity).
_STATE_ATTR = "_dvmlint_whole_program"


def project_graph(project: ProjectContext) -> ProjectGraph:
    """The (memoized) graph for one ProjectContext."""
    state = getattr(project, _STATE_ATTR, None)
    if state is None:
        state = {}
        setattr(project, _STATE_ATTR, state)
    if "graph" not in state:
        state["graph"] = build_graph(project)
    return state["graph"]


def project_state(project: ProjectContext) -> dict:
    """The shared memo dict whole-program passes stash results in."""
    project_graph(project)
    return getattr(project, _STATE_ATTR)
