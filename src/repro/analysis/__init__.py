"""dvmlint: repo-aware static analysis for the DVM reproduction.

The simulator's headline guarantees — bit-identical sweeps across
engines, workers and chaos seeds; resumable fault delivery instead of
bare raises; zero-overhead-when-disabled instrumentation — are semantic
*invariants*, not properties any general-purpose linter knows about.
This package is an AST-level analysis pass that proves them at every
call site on every change, before a single simulation cycle runs:

* **DET** — nondeterminism in simulation code (unseeded RNGs, wall-clock
  reads, ``id()``-derived keys, unordered iteration feeding digests);
* **FAULT** — bare ``PageFault``/``ProtectionFault`` raises outside the
  ``FaultPath`` delivery protocol, and broad ``except`` clauses that
  swallow the ``common/errors.py`` taxonomy;
* **OBS** — observability calls in hot modules missing the module-level
  ``ENABLED`` guard (the zero-overhead-when-disabled contract);
* **ENV** — environment reads outside ``common/`` and drift between the
  ``REPRO_*`` knobs used in code and ``docs/configuration.md``;
* **MP** — module-level mutable state rebound inside pool-worker entry
  code without being shipped back through the pair payload.

Run it with ``python -m repro.analysis`` (or ``make analyze``); see
``docs/static-analysis.md`` for the rule catalog and the suppression /
baseline workflow.
"""

from repro.analysis.core import (Finding, ModuleContext, ProjectRule, Rule,
                                 Scope, all_rules, get_rule, register)
from repro.analysis.engine import Result, run_analysis

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Result",
    "Rule",
    "Scope",
    "all_rules",
    "get_rule",
    "register",
    "run_analysis",
]
