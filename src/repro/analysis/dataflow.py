"""Forward dataflow over the whole-program graph: taint and may-raise.

Two engines share the graph built by :mod:`.graph`:

**Taint** (:func:`taint_flows`) tracks nondeterministic values — wall
clocks, OS entropy, unseeded RNG draws, process identity (``id()``,
``os.getpid()``), salted ``hash()``, and set/dict-order iteration — from
the expression that produces them to the *result sinks* the repo's
bit-identity guarantee protects: journal records, tracestore columns,
bus events, cache keys / content digests, and ``TimingStats`` fields.
Propagation is interprocedural via per-function summaries:

* ``returns`` — source labels a call to the function may return,
* ``passthrough`` — parameters whose taint reaches the return value,
* ``param_sinks`` — parameters that flow into a sink *inside* the
  function (so a caller passing a tainted argument gets the finding at
  its own call site, where the fix belongs).

Summaries are iterated to a fixpoint (the tree's call depth bounds the
rounds; a hard cap keeps pathological cycles finite), then one final
pass collects flows.  Loops run their bodies twice so loop-carried
assignments converge.

**May-raise** (:func:`may_raise`) computes, per function, the exception
types that can escape it, with lexical ``try``/``except`` handling,
a small builtin exception hierarchy (``FileNotFoundError < OSError``),
and a table of known-raising operations (``open``/``write``/``flush``
→ ``OSError``, ``print`` → ``OSError``/``ValueError``,  ``json.dumps``
→ ``TypeError``/``ValueError``, ...).  Resolved project calls compose
their callee's escape set; *unresolved* calls are assumed safe unless
the table says otherwise — the engine verifies never-raise contracts
against known-risky operations, it does not prove totality (the docs
say so too).

Both engines are deterministic: sorted function order, sorted label
sets, results memoized on the :class:`~repro.analysis.core.ProjectContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis import config
from repro.analysis.core import ProjectContext
from repro.analysis.graph import (FunctionInfo, ProjectGraph, _own_nodes,
                                  project_graph, project_state,
                                  resolve_call)

# -- taint: sources -----------------------------------------------------------

#: label -> human description used in findings.
SOURCE_LABELS = {
    "wall-clock": "wall-clock time",
    "os-entropy": "OS entropy",
    "unseeded-rng": "the unseeded module-level RNG",
    "process-id": "the process id",
    "object-id": "id() (an address, unstable across runs)",
    "salted-hash": "hash() (salted per process)",
    "unordered-iter": "set iteration order",
}

_CLOCK_DOTTED = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
_ENTROPY_DOTTED = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})
_ENTROPY_PREFIXES = ("secrets.",)
_RNG_MODULE_PREFIX = "random."        # module-level draws, not instances
_RNG_SAFE = frozenset({"random.Random", "random.SystemRandom",
                       "random.seed"})
_PID_DOTTED = frozenset({"os.getpid", "threading.get_ident"})

#: Builtins that launder the "unordered-iter" label (impose an order).
_ORDERING_CALLS = frozenset({"sorted", "min", "max", "sum", "len"})


def call_sources(ctx_dotted: str | None, func: ast.AST) -> frozenset[str]:
    """Source labels produced by one call expression."""
    if isinstance(func, ast.Name):
        if func.id == "id":
            return frozenset({"object-id"})
        if func.id == "hash":
            return frozenset({"salted-hash"})
        if func.id in ("set", "frozenset"):
            return frozenset({"unordered-iter"})
    if ctx_dotted is None:
        return frozenset()
    if ctx_dotted in _CLOCK_DOTTED:
        return frozenset({"wall-clock"})
    if ctx_dotted in _ENTROPY_DOTTED \
            or ctx_dotted.startswith(_ENTROPY_PREFIXES):
        return frozenset({"os-entropy"})
    if ctx_dotted in _PID_DOTTED:
        return frozenset({"process-id"})
    if ctx_dotted.startswith(_RNG_MODULE_PREFIX) \
            and ctx_dotted not in _RNG_SAFE:
        return frozenset({"unseeded-rng"})
    return frozenset()


# -- taint: sinks -------------------------------------------------------------


def call_sink(info: FunctionInfo, call: ast.Call) -> str | None:
    """The sink kind of one call expression, or ``None``."""
    dotted = info.ctx.dotted(call.func)
    if dotted is not None:
        for prefix, kind in sorted(config.TAINT_SINK_PREFIXES.items()):
            if dotted.startswith(prefix):
                return kind
        if dotted in config.TAINT_SINK_CLASSES:
            return config.TAINT_SINK_CLASSES[dotted]
    if isinstance(call.func, ast.Attribute):
        receiver = _receiver_text(call.func.value)
        for (attr, substring), kind in sorted(
                config.TAINT_SINK_ATTRS.items()):
            if call.func.attr == attr and substring in receiver:
                return kind
    name = call.func.attr if isinstance(call.func, ast.Attribute) \
        else call.func.id if isinstance(call.func, ast.Name) else ""
    for stem in config.TAINT_KEY_FUNCTIONS:
        if stem in name:
            return "cache-key"
    return None


def _receiver_text(owner: ast.AST) -> str:
    parts: list[str] = []
    node = owner
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


# -- taint: summaries and flows -----------------------------------------------


@dataclass
class TaintSummary:
    """What callers need to know about one function."""

    returns: frozenset[str] = frozenset()       # real source labels
    passthrough: frozenset[str] = frozenset()   # param names -> return
    #: param name -> sorted tuple of sink kinds it flows into.
    param_sinks: dict = field(default_factory=dict)

    def key(self) -> tuple:
        return (tuple(sorted(self.returns)),
                tuple(sorted(self.passthrough)),
                tuple(sorted((p, k) for p, ks in self.param_sinks.items()
                             for k in ks)))


@dataclass(frozen=True)
class TaintFlow:
    """One nondeterministic value reaching a result sink."""

    sink: str          # journal | tracestore | bus-event | cache-key | ...
    label: str         # source label (SOURCE_LABELS key)
    qualname: str      # function containing the reported call
    relpath: str
    line: int
    col: int
    via: str = ""      # callee qualname when the sink is interprocedural

    def sort_key(self) -> tuple:
        return (self.relpath, self.line, self.col, self.sink, self.label)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> tuple[list[str], str | None]:
    """Positional/keyword parameter names and the ``**kwargs`` name."""
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return names, args.kwarg.arg if args.kwarg else None


class _TaintPass:
    """One abstract-interpretation pass over one function body."""

    def __init__(self, graph: ProjectGraph, info: FunctionInfo,
                 summaries: dict, collect: list | None):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.collect = collect          # TaintFlow sink, final round only
        self.env: dict[str, frozenset[str]] = {}
        self.summary = TaintSummary()
        self.params, self.kwarg = _param_names(info.node)
        for name in self.params + ([self.kwarg] if self.kwarg else []):
            self.env[name] = frozenset({f"param:{name}"})
        self._param_sinks: dict[str, set[str]] = {}
        self._returns: set[str] = set()
        self._passthrough: set[str] = set()

    def run(self) -> TaintSummary:
        body = list(self.info.node.body)
        self._stmts(body)
        self._stmts(body)               # second pass: loop/forward carry
        self.summary = TaintSummary(
            returns=frozenset(self._returns),
            passthrough=frozenset(self._passthrough),
            param_sinks={p: tuple(sorted(ks))
                         for p, ks in sorted(self._param_sinks.items())})
        return self.summary

    # -- statements --

    def _stmts(self, stmts) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return                      # nested defs analyzed separately
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            labels = self._eval(stmt.value) if stmt.value else frozenset()
            if isinstance(stmt, ast.AugAssign):
                labels |= self._eval(stmt.target)
            self._bind(stmt.target, labels)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                labels = self._eval(stmt.value)
                self._returns.update(
                    label for label in labels
                    if not label.startswith("param:"))
                self._passthrough.update(
                    label[len("param:"):] for label in labels
                    if label.startswith("param:"))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _bind(self, target: ast.AST, labels: frozenset[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id,
                                               frozenset()) | labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # self.x = tainted / record["k"] = tainted: taint the whole
            # container so later uses of it carry the labels.
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id,
                                                 frozenset()) | labels

    # -- expressions --

    def _eval(self, node: ast.expr | None) -> frozenset[str]:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred,
                             ast.Await, ast.UnaryOp, ast.FormattedValue)):
            return self._eval(getattr(node, "value",
                                      getattr(node, "operand", None)))
        if isinstance(node, (ast.Set, ast.SetComp)):
            # Dicts iterate in insertion order; only *set* order is
            # process-unstable.
            labels = self._children(node)
            return labels | frozenset({"unordered-iter"})
        if isinstance(node, (ast.Lambda,)):
            return frozenset()
        return self._children(node)

    def _children(self, node: ast.expr) -> frozenset[str]:
        labels: frozenset[str] = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self._eval(child)
        return labels

    def _call(self, call: ast.Call) -> frozenset[str]:
        arg_labels = [self._eval(arg) for arg in call.args]
        kw_labels = {kw.arg: self._eval(kw.value) for kw in call.keywords}
        every = frozenset().union(*arg_labels, *kw_labels.values()) \
            if (arg_labels or kw_labels) else frozenset()
        dotted = self.info.ctx.dotted(call.func)
        produced = call_sources(dotted, call.func)

        sink = call_sink(self.info, call)
        if sink is not None:
            self._at_sink(call, sink, every)

        targets = resolve_call(self.graph, self.info, call,
                               self._local_types())
        if targets:
            out: set[str] = set(produced)
            for target in targets:
                summary = self.summaries.get(target)
                if summary is None:
                    continue
                out.update(summary.returns)
                mapped = self._map_args(target, call, arg_labels,
                                        kw_labels)
                for param, labels in mapped.items():
                    if param in summary.passthrough:
                        out.update(labels)
                    for kind in summary.param_sinks.get(param, ()):
                        self._at_sink(call, kind, labels, via=target)
            return frozenset(out)

        if isinstance(call.func, ast.Name) \
                and call.func.id in _ORDERING_CALLS:
            return (every - {"unordered-iter"}) | produced
        if produced:
            return produced
        # Unresolved call: conservative passthrough of argument taint,
        # plus the receiver's taint for method calls (str(ts), x.encode()).
        receiver = self._eval(call.func.value) \
            if isinstance(call.func, ast.Attribute) else frozenset()
        return every | receiver

    def _local_types(self) -> dict[str, str]:
        from repro.analysis.graph import _local_types
        return _local_types(self.graph, self.info)

    def _map_args(self, target: str, call: ast.Call,
                  arg_labels: list, kw_labels: dict) -> dict:
        """Call-site labels keyed by the callee's parameter names."""
        info = self.graph.functions[target]
        params, kwarg = _param_names(info.node)
        offset = 1 if info.cls is not None and params \
            and params[0] in ("self", "cls") else 0
        mapped: dict[str, frozenset[str]] = {}
        for index, labels in enumerate(arg_labels):
            slot = index + offset
            if slot < len(params):
                mapped[params[slot]] = mapped.get(
                    params[slot], frozenset()) | labels
        for name, labels in sorted(kw_labels.items(),
                                   key=lambda kv: (kv[0] or "",)):
            if name in params:
                mapped[name] = mapped.get(name, frozenset()) | labels
            elif kwarg is not None:
                mapped[kwarg] = mapped.get(kwarg, frozenset()) | labels
        return mapped

    def _at_sink(self, call: ast.Call, kind: str,
                 labels: frozenset[str], via: str = "") -> None:
        # Sinks in taint-excluded modules don't count — the bus digests
        # a record that *legitimately* carries wall time; recording a
        # param-sink there would cascade false flows to every caller.
        if not config.TAINT.matches(self.info.relpath):
            return
        for label in sorted(labels):
            if label.startswith("param:"):
                param = label[len("param:"):]
                self._param_sinks.setdefault(param, set()).add(kind)
            elif self.collect is not None:
                self.collect.append(TaintFlow(
                    sink=kind, label=label, qualname=self.info.qualname,
                    relpath=self.info.relpath, line=call.lineno,
                    col=call.col_offset + 1, via=via))


#: Fixpoint round cap — deeper real call chains than this don't exist in
#: the tree, and cycles would otherwise iterate forever.
_MAX_ROUNDS = 8


def compute_taint(graph: ProjectGraph) -> list[TaintFlow]:
    """All taint flows in the tree, sorted and de-duplicated."""
    summaries: dict[str, TaintSummary] = {}
    order = sorted(graph.functions)
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qual in order:
            summary = _TaintPass(graph, graph.functions[qual],
                                 summaries, None).run()
            if summaries.get(qual, TaintSummary()).key() != summary.key():
                summaries[qual] = summary
                changed = True
        if not changed:
            break
    flows: list[TaintFlow] = []
    for qual in order:
        _TaintPass(graph, graph.functions[qual], summaries, flows).run()
    return sorted(set(flows), key=TaintFlow.sort_key)


def taint_flows(project: ProjectContext) -> list[TaintFlow]:
    """The (memoized) taint flows for one ProjectContext."""
    state = project_state(project)
    if "taint" not in state:
        state["taint"] = compute_taint(project_graph(project))
    return state["taint"]


# -- may-raise ----------------------------------------------------------------

#: Builtin exception hierarchy the handler matcher knows about.
_EXC_PARENTS = {
    "FileNotFoundError": "OSError", "PermissionError": "OSError",
    "IsADirectoryError": "OSError", "NotADirectoryError": "OSError",
    "FileExistsError": "OSError", "InterruptedError": "OSError",
    "BrokenPipeError": "OSError", "ConnectionError": "OSError",
    "ConnectionResetError": "ConnectionError", "TimeoutError": "OSError",
    "KeyError": "LookupError", "IndexError": "LookupError",
    "JSONDecodeError": "ValueError", "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
}

#: Known-raising operations by import-resolved dotted path.
_RAISING_DOTTED = {
    "json.dumps": ("TypeError", "ValueError"),
    "json.loads": ("ValueError",),
    "json.dump": ("TypeError", "ValueError", "OSError"),
    "json.load": ("ValueError", "OSError"),
    "os.makedirs": ("OSError",), "os.mkdir": ("OSError",),
    "os.replace": ("OSError",), "os.rename": ("OSError",),
    "os.remove": ("OSError",), "os.unlink": ("OSError",),
    "os.fsync": ("OSError",), "os.stat": ("OSError",),
    "os.kill": ("OSError",),
}

#: Known-raising builtins by bare name.
_RAISING_NAMES = {
    "open": ("OSError",),
    "print": ("OSError", "ValueError"),     # broken pipe / closed stream
}

#: Known-raising method calls by attribute name (any receiver) — file
#: and path I/O that escapes no matter what object performs it.
_RAISING_ATTRS = {
    "write": ("OSError", "ValueError"), "flush": ("OSError", "ValueError"),
    "read": ("OSError", "ValueError"), "readline": ("OSError",),
    "truncate": ("OSError", "ValueError"), "seek": ("OSError",),
    "fileno": ("OSError", "ValueError"), "tell": ("OSError",),
    "mkdir": ("OSError",), "rmdir": ("OSError",),
    "read_bytes": ("OSError",), "write_bytes": ("OSError",),
    "read_text": ("OSError",), "write_text": ("OSError",),
    "unlink": ("OSError",), "replace": ("OSError",), "touch": ("OSError",),
}

def _caught_by(exc: str, caught: frozenset[str]) -> bool:
    if "*" in caught:
        return True
    if exc == "*":
        return False
    name: str | None = exc
    while name is not None:
        if name in caught:
            return True
        name = _EXC_PARENTS.get(name)
    return False


def _handler_types(handler: ast.ExceptHandler) -> frozenset[str]:
    node = handler.type
    if node is None:
        return frozenset({"*"})
    names: set[str] = set()
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Attribute):
            names.add(element.attr)
        elif isinstance(element, ast.Name):
            names.add(element.id)
        else:
            names.add("*")              # dynamic handler type: catch-all
    if names & {"Exception", "BaseException"}:
        return frozenset({"*"})
    return frozenset(names)


class _RaisePass:
    """Escaping-exception computation for one function body."""

    def __init__(self, graph: ProjectGraph, info: FunctionInfo,
                 summaries: dict):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.escapes: dict[str, int] = {}   # exc name -> first line

    def run(self) -> dict[str, int]:
        self._stmts(self.info.node.body, (), frozenset())
        return dict(sorted(self.escapes.items()))

    def _record(self, exc: str, line: int,
                stack: tuple[frozenset[str], ...]) -> None:
        for caught in stack:
            if _caught_by(exc, caught):
                return
        if exc not in self.escapes:
            self.escapes[exc] = line

    def _stmts(self, stmts, stack, reraise) -> None:
        for stmt in stmts:
            self._stmt(stmt, stack, reraise)

    def _stmt(self, stmt, stack, reraise) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Try):
            caught = frozenset().union(
                *(_handler_types(h) for h in stmt.handlers)) \
                if stmt.handlers else frozenset()
            self._stmts(stmt.body, stack + (caught,), reraise)
            for handler in stmt.handlers:
                self._stmts(handler.body, stack,
                            _handler_types(handler))
            self._stmts(stmt.orelse, stack, reraise)
            self._stmts(stmt.finalbody, stack, reraise)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is None:
                for exc in sorted(reraise) or ["*"]:
                    self._record(exc, stmt.lineno, stack)
            else:
                node = stmt.exc.func if isinstance(stmt.exc, ast.Call) \
                    else stmt.exc
                if isinstance(node, ast.Attribute):
                    self._record(node.attr, stmt.lineno, stack)
                elif isinstance(node, ast.Name):
                    self._record(node.id, stmt.lineno, stack)
                else:
                    self._record("*", stmt.lineno, stack)
            self._exprs(stmt, stack)
            return
        if isinstance(stmt, ast.Assert):
            self._record("AssertionError", stmt.lineno, stack)
        self._exprs(stmt, stack)
        for name in ("body", "orelse", "finalbody"):
            self._stmts(getattr(stmt, name, ()) or (), stack, reraise)
        for handler in getattr(stmt, "handlers", ()) or ():
            self._stmts(handler.body, stack, reraise)

    def _exprs(self, stmt, stack) -> None:
        """Raising calls in this statement's own expressions."""
        for node in ast.iter_child_nodes(stmt):
            if not isinstance(node, (ast.expr, ast.withitem)):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    for exc in self._call_raises(sub):
                        self._record(exc, sub.lineno, stack)

    def _call_raises(self, call: ast.Call) -> list[str]:
        dotted = self.info.ctx.dotted(call.func)
        if dotted is not None and dotted in _RAISING_DOTTED:
            return sorted(_RAISING_DOTTED[dotted])
        func = call.func
        if isinstance(func, ast.Name) and func.id in _RAISING_NAMES:
            return sorted(_RAISING_NAMES[func.id])
        targets = resolve_call(self.graph, self.info, call)
        if targets:
            out: set[str] = set()
            for target in targets:
                out.update(self.summaries.get(target, {}))
            return sorted(out)
        if isinstance(func, ast.Attribute):
            receiver = _receiver_text(func.value)
            for (attr, substring) in sorted(config.EXN_CONTRACT_ATTRS):
                if func.attr == attr and substring in receiver:
                    return []           # non-raising by contract
            if func.attr in _RAISING_ATTRS:
                return sorted(_RAISING_ATTRS[func.attr])
        return []


def compute_may_raise(graph: ProjectGraph) -> dict[str, dict[str, int]]:
    """qualname -> {escaping exception name -> first origin line}."""
    summaries: dict[str, dict[str, int]] = {}
    order = sorted(graph.functions)
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qual in order:
            escapes = _RaisePass(graph, graph.functions[qual],
                                 summaries).run()
            if summaries.get(qual) != escapes:
                summaries[qual] = escapes
                changed = True
        if not changed:
            break
    return {qual: summaries[qual] for qual in order}


def may_raise(project: ProjectContext) -> dict[str, dict[str, int]]:
    """The (memoized) may-raise table for one ProjectContext."""
    state = project_state(project)
    if "may_raise" not in state:
        state["may_raise"] = compute_may_raise(project_graph(project))
    return state["may_raise"]
