"""Repo-aware configuration: scopes, hot modules, protocol anchors.

Everything dvmlint knows about *this* repository lives here, so the
framework (:mod:`repro.analysis.core`, :mod:`repro.analysis.engine`)
stays generic and the rules read like a statement of the invariants:

* which directories hold *simulated* state (determinism rules apply),
* which modules are on the per-access hot path (obs guard contract),
* which package owns environment access (``common/``),
* where the configuration reference lives, and
* which functions are process-pool worker entries.
"""

from __future__ import annotations

from repro.analysis.core import Scope

#: Directories whose code computes simulated state: everything here must
#: be a pure function of its inputs and seeds.  ``sim/runner.py`` and
#: ``sim/resilience.py`` are the *control plane* (wall-clock budgets,
#: retry backoff) and are exempted from the wall-clock rule only.
SIMULATION_SCOPE = (
    "src/repro/sim/",
    "src/repro/hw/",
    "src/repro/kernel/",
    "src/repro/core/",
    "src/repro/virt/",
    "src/repro/accel/",
    "src/repro/graphs/",
    "examples/",
)

#: Control-plane modules allowed to read wall clocks (deadlines, backoff
#: pacing — never simulated state).
WALL_CLOCK_EXEMPT = (
    "src/repro/sim/runner.py",
    "src/repro/sim/resilience.py",
)

#: Modules on (or adjacent to) the per-access hot path, where PR 4's
#: zero-overhead-when-disabled contract requires every observability
#: recording call to sit behind the module-level ``ENABLED`` guard.
HOT_MODULES = (
    "src/repro/hw/",
    "src/repro/kernel/",
    "src/repro/sim/system.py",
    "src/repro/sim/fastpath.py",
    "src/repro/sim/runner.py",
)

#: The observability core module and its recording entry points.  Calls
#: resolving to these dotted paths must be ``ENABLED``-guarded in hot
#: modules; administrative calls (``merge``, ``to_dict``, ``reset``,
#: ``refresh_from_env``) are exempt.
OBS_CORE_MODULE = "repro.obs.core"
OBS_RECORDING_CALLS = (
    "repro.obs.core.counter",
    "repro.obs.core.histogram",
    "repro.obs.core.REGISTRY.counter",
    "repro.obs.core.REGISTRY.histogram",
)
OBS_RECORDING_PREFIXES = (
    "repro.obs.record.",
)

#: The one package allowed to touch ``os.environ`` directly; everything
#: else goes through ``repro.common.env`` so knobs stay enumerable.
ENV_OWNER = "src/repro/common/"

#: The configuration reference every ``REPRO_*`` knob must appear in.
CONFIG_DOC = "docs/configuration.md"

#: Environment-variable naming convention for runtime knobs.
ENV_VAR_PATTERN = r"REPRO_[A-Z0-9]+(?:_[A-Z0-9]+)*"

#: The IOMMU layer, where the recoverable-fault delivery protocol lives.
IOMMU_SCOPE = ("src/repro/hw/",)

#: Known process-pool worker entry functions (in addition to functions
#: detected as ``pool.submit(fn, ...)`` targets within a module).
WORKER_ENTRY_NAMES = frozenset({"_sweep_worker_main"})

#: The module sanctioned to create worker processes (liveness
#: supervision, retry/rebuild/merge determinism live there).
POOL_OWNER = "src/repro/sweep/scheduler.py"

#: The supervised sweep package: every potentially-blocking wait must
#: be bounded (SWP001) and durable bytes must flow through the fenced
#: journal writer or the atomic tracestore publisher (SWP002).
SWEEP_SCOPE = ("src/repro/sweep/",)
SWEEP_WRITE_OWNERS = ("src/repro/sweep/journal.py",
                      "src/repro/sweep/tracestore.py")

#: The scenario-generation package (constrained-random fuzzing).  Seed
#: discipline is absolute there: every draw must come from a passed-in
#: seeded generator, and the only RNG-construction point is
#: ``gen/seeds.py`` (so one seed maps to one scenario forever).
GEN_SCOPE = ("src/repro/gen/",)
GEN_RNG_OWNER = "src/repro/gen/seeds.py"

#: Modules the generator must never import: scenarios must stay buildable
#: without the experiment control plane (the runner imports gen/, never
#: the reverse), or fuzz repros would drag sweeps/caches into the loop.
GEN_FORBIDDEN_IMPORTS = ("repro.sim.runner", "repro.experiments")

# -- whole-program analysis anchors (graph / contexts / dataflow) -----------

#: Modules whose top-level functions and methods execute in the
#: *scheduler parent* process: the supervised scheduler itself and the
#: CLI entrypoints.  Context classification (:mod:`..contexts`) seeds
#: parent reachability here.
CONTEXT_PARENT_PATHS = (
    "src/repro/sweep/scheduler.py",
    "src/repro/__main__.py",
)

#: Attribute-call resolution hints for the call graph: a call through an
#: attribute the AST cannot type (``self.bus.emit(...)``) resolves to
#: these qualified functions when the receiver's name mentions the key's
#: second element.  Targets that don't exist in the analyzed tree are
#: ignored, so the hints are safe on partial trees (fixtures).
ATTR_CALL_HINTS = {
    ("emit", "bus"): ("repro.obs.bus.EventBus.emit",
                      "repro.obs.bus._NullBus.emit"),
    ("beat", "pulse"): ("repro.obs.progress.Pulse.beat",),
}

#: Taint sinks for the DET1xx interprocedural nondeterminism rules, by
#: import-resolved dotted-call prefix.
TAINT_SINK_PREFIXES = {
    "repro.sweep.journal.": "journal",
    "repro.sweep.tracestore.": "tracestore",
    "hashlib.": "digest",
}

#: Taint sinks matched by (attribute name, receiver-name substring):
#: ``journal.append(...)``, ``self.bus.emit(...)`` and friends, where
#: the receiver's static type is unknown but its name states its role.
TAINT_SINK_ATTRS = {
    ("append", "journal"): "journal",
    ("record", "journal"): "journal",
    ("emit", "bus"): "bus-event",
}

#: Classes whose construction is a result sink (every argument becomes
#: simulated output): nondeterminism must never reach their fields.
TAINT_SINK_CLASSES = {
    "repro.hw.iommu.TimingStats": "timing-stats",
}

#: Functions whose arguments become cache keys / content fingerprints
#: (matched by bare-name substring).
TAINT_KEY_FUNCTIONS = ("cache_key", "fingerprint", "content_token")

#: The interprocedural taint rules inspect library code only; telemetry
#: (``obs/``) carries wall timestamps by design, and the analyzer itself
#: hashes file contents all day.
TAINT_SCOPE_EXCLUDE = ("src/repro/obs/", "src/repro/analysis/")

#: Module-level state the RACE0xx rules treat as sanctioned shared
#: state: observability registries are shipped back per task and merged
#: by the parent, ``common/`` owns the injector/env machinery that is
#: deliberately re-keyed per task, and the journal/tracestore *are* the
#: sanctioned durable protocols.
RACE_SANCTIONED_PATHS = (
    "src/repro/obs/",
    "src/repro/common/",
    "src/repro/sweep/journal.py",
    "src/repro/sweep/tracestore.py",
    "src/repro/analysis/",
)

#: Documented never-raise contracts, verified interprocedurally by the
#: EXN0xx family: (rule id, module-dotted-prefix, method bare names).
#: Prefix matching keeps ``scheduler_bad.py``-style fixture variants in
#: scope, mirroring the SCHED_TRANSITIONS glob.
NEVER_RAISE_CONTRACTS = (
    ("EXN001", "repro.obs.bus", ("emit", "close")),
    ("EXN002", "repro.obs.progress", ("update", "beat")),
    ("EXN003", "repro.sweep.scheduler", ("_emit", "_tick")),
)

#: Attribute calls assumed non-raising *by contract* rather than by
#: analysis: the EXN family verifies the definition site, so call sites
#: may rely on it (compositional checking).  Keyed like ATTR_CALL_HINTS.
EXN_CONTRACT_ATTRS = {
    ("emit", "bus"): True,
    ("close", "bus"): True,
    ("beat", "pulse"): True,
}

#: Paths never scanned, relative to the analysis root.  The fixture tree
#: under ``tests/analysis/fixtures`` is a corpus of *intentional*
#: violations (each rule's positive/negative test vectors) and is
#: analyzed by the test suite with the fixture directory as its own
#: root.
EXCLUDE = (
    "tests/analysis/fixtures/",
    "build/",
)

#: Directory names skipped during file discovery.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis", ".ruff_cache",
    "node_modules", ".benchmarks",
})

#: Default analysis targets, relative to the root.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: Default baseline location, relative to the root.
BASELINE_FILE = ".dvmlint-baseline.json"

#: Default incremental-cache location, relative to the root (under
#: ``build/`` so ``make clean`` and the discovery excludes cover it).
CACHE_FILE = "build/dvmlint-cache.json"

#: Per-rule severity overrides (rule id -> "error" | "warning").  Rules
#: default to the severity declared on their class; entries here let the
#: repo soften or harden a rule without touching its implementation.
SEVERITY_OVERRIDES: dict[str, str] = {}

# -- scope helpers used by the rule modules ---------------------------------

DETERMINISM = Scope(include=SIMULATION_SCOPE)
WALL_CLOCK = Scope(include=SIMULATION_SCOPE, exclude=WALL_CLOCK_EXEMPT)
ALL_SOURCE = Scope(include=("src/", "examples/"))
SRC_ONLY = Scope(include=("src/",))
LIBRARY_AND_DRIVERS = Scope(include=("src/", "examples/", "benchmarks/"))
HOT_PATH = Scope(include=HOT_MODULES, exclude=("src/repro/obs/",))
ENV_READS = Scope(include=("src/",), exclude=(ENV_OWNER,))
IOMMU = Scope(include=IOMMU_SCOPE)
POOLS = Scope(include=("src/",), exclude=(POOL_OWNER,))
GEN = Scope(include=GEN_SCOPE)
GEN_DRAWS = Scope(include=GEN_SCOPE, exclude=(GEN_RNG_OWNER,))
SWEEP = Scope(include=SWEEP_SCOPE)
SWEEP_WRITES = Scope(include=SWEEP_SCOPE, exclude=SWEEP_WRITE_OWNERS)
TAINT = Scope(include=("src/",), exclude=TAINT_SCOPE_EXCLUDE)
RACES = Scope(include=("src/",), exclude=RACE_SANCTIONED_PATHS)
#: The scheduler, whose state transitions (anything bumping a
#: ``...report.<counter>``) must narrate themselves onto the event bus
#: (OBS002) — a silent transition is invisible to ``repro top`` and the
#: streaming consumers.
SCHED_TRANSITIONS = Scope(include=("src/repro/sweep/scheduler*.py",))
