"""Execution-context classification: parent / worker / both / library.

The supervised sweep forks worker processes (`spawn`d from
``_sweep_worker_main``); the scheduler parent and those workers share
*code* but not *memory*, and several invariant families hinge on which
side a function can execute on:

* RACE0xx needs to know which functions can touch a module-level name
  from the parent **and** from a worker (lost updates, fork-captured
  snapshots),
* EXN0xx verifies never-raise contracts that matter precisely because
  they run on the scheduler's supervision path,
* DET1xx cares most about flows that end in durable artifacts written
  by workers.

Classification is reachability over the whole-program call graph
(:mod:`.graph`):

* **worker roots** — the configured worker entry names
  (:data:`~repro.analysis.config.WORKER_ENTRY_NAMES`) plus anything the
  graph saw spawned (``Process(target=...)``, ``pool.submit(...)``),
* **parent roots** — top-level functions and methods defined in the
  scheduler and CLI modules (:data:`~repro.analysis.config.CONTEXT_PARENT_PATHS`).

Both traversals follow call edges and reference edges, with one
asymmetry: the parent-side walk does **not** descend into worker entry
functions — the parent *references* ``_sweep_worker_main`` when it
builds a ``Process``, but never executes it.  Functions reachable from
neither side are labeled ``library`` (utilities, dead code, read-side
tooling) and get the benefit of the doubt from the race rules.
"""

from __future__ import annotations

from repro.analysis import config
from repro.analysis.graph import (ProjectGraph, project_graph,
                                  project_state)
from repro.analysis.core import ProjectContext

#: Context labels, from most to least specific.
PARENT = "parent"
WORKER = "worker"
BOTH = "both"
LIBRARY = "library"


def worker_roots(graph: ProjectGraph) -> list[str]:
    """Qualnames seeding worker-side reachability, sorted."""
    roots = set(graph.spawn_targets)
    for name in sorted(config.WORKER_ENTRY_NAMES):
        roots.update(info.qualname for info in graph.functions_named(name))
    return sorted(roots)


def parent_roots(graph: ProjectGraph) -> list[str]:
    """Qualnames seeding parent-side reachability, sorted."""
    entries = {name for name in config.WORKER_ENTRY_NAMES}
    roots = []
    for qual, info in sorted(graph.functions.items()):
        if info.relpath in config.CONTEXT_PARENT_PATHS \
                and info.name not in entries:
            roots.append(qual)
    return roots


def _reach(graph: ProjectGraph, roots: list[str], *,
           blocked: frozenset[str] = frozenset()) -> set[str]:
    """Everything reachable from ``roots`` over call + reference edges,
    never *entering* a blocked function (roots are never blocked)."""
    seen: set[str] = set()
    queue = list(roots)
    while queue:
        qual = queue.pop(0)
        if qual in seen:
            continue
        seen.add(qual)
        for nxt in graph.callees(qual) + graph.references(qual):
            if nxt in seen:
                continue
            info = graph.functions.get(nxt)
            if info is not None and info.name in blocked:
                continue
            queue.append(nxt)
    return seen


def classify(graph: ProjectGraph) -> dict[str, str]:
    """Label every function qualname parent/worker/both/library."""
    workers = _reach(graph, worker_roots(graph))
    blocked = frozenset(config.WORKER_ENTRY_NAMES)
    parents = _reach(graph, parent_roots(graph), blocked=blocked)
    labels: dict[str, str] = {}
    for qual in sorted(graph.functions):
        in_worker = qual in workers
        in_parent = qual in parents
        if in_worker and in_parent:
            labels[qual] = BOTH
        elif in_worker:
            labels[qual] = WORKER
        elif in_parent:
            labels[qual] = PARENT
        else:
            labels[qual] = LIBRARY
    return labels


def context_labels(project: ProjectContext) -> dict[str, str]:
    """The (memoized) context labeling for one ProjectContext."""
    state = project_state(project)
    if "contexts" not in state:
        state["contexts"] = classify(project_graph(project))
    return state["contexts"]
