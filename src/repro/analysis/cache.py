"""Content-hash incremental cache for analysis results.

Repeat ``make analyze`` runs over an unchanged tree should be
near-instant: every finding dvmlint produces is a pure function of

* the file's bytes (module rules, suppressions),
* every file's bytes (project rules see the whole tree),
* the analyzer's own source (a rule edit must invalidate everything),
* and the selected ruleset.

So the cache keys per-file entries by content hash and the project-rule
entry by a *tree fingerprint* over every file's hash, both salted with
an engine fingerprint (a hash of the ``repro.analysis`` package source)
and the ruleset signature.  Entries store post-suppression findings —
the cache replays exactly what the rules produced, and the baseline is
re-applied fresh (it's cheap and may change independently).

The file is JSON under ``build/`` (swept by ``make clean``, excluded
from discovery), written atomically (tmp + ``os.replace``); a corrupt
or version-skewed cache is ignored and rebuilt, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis import config
from repro.analysis.core import Finding

#: Cache format version; bump on schema changes.
CACHE_VERSION = 3

_FINDING_FIELDS = ("rule", "severity", "path", "line", "col", "message",
                   "snippet")


def file_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:24]


def engine_fingerprint() -> str:
    """Hash of the analyzer's own source: any rule/engine edit
    invalidates every cached result."""
    package_dir = Path(__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:24]


def ruleset_signature(rules) -> str:
    """Hash of the selected rules and their effective severities."""
    blob = json.dumps([(r.id, r.severity) for r in rules],
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def tree_fingerprint(shas: dict[str, str], engine: str,
                     ruleset: str) -> str:
    """Fingerprint over every discovered file's content hash."""
    blob = json.dumps([engine, ruleset, sorted(shas.items())],
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def finding_to_entry(finding: Finding) -> dict:
    return {name: getattr(finding, name) for name in _FINDING_FIELDS}


def entry_to_finding(entry: dict) -> Finding:
    return Finding(**{name: entry[name] for name in _FINDING_FIELDS})


class Cache:
    """One loaded cache file plus the write-back state for this run."""

    def __init__(self, path: Path, engine: str, ruleset: str):
        self.path = path
        self.engine = engine
        self.ruleset = ruleset
        self.hits = 0
        self.misses = 0
        #: Sections for *other* rulesets, carried through save() so the
        #: default run and a ``--select``-narrowed run (CI's relaxed
        #: tests/ pass) don't clobber each other's entries.
        self._others: dict = {}
        self._old = self._load(path, engine, ruleset)
        self._new: dict = {"files": {}, "project": None}

    def _load(self, path: Path, engine: str, ruleset: str) -> dict:
        empty = {"files": {}, "project": None}
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return empty
        if not isinstance(raw, dict) \
                or raw.get("version") != CACHE_VERSION \
                or raw.get("engine") != engine \
                or not isinstance(raw.get("caches"), dict):
            return empty
        self._others = {sig: section
                        for sig, section in raw["caches"].items()
                        if sig != ruleset and isinstance(section, dict)}
        section = raw["caches"].get(ruleset)
        if not isinstance(section, dict):
            return empty
        files = section.get("files")
        return {"files": files if isinstance(files, dict) else {},
                "project": section.get("project")}

    # -- per-file entries --

    def lookup_file(self, relpath: str, sha: str) -> dict | None:
        """The cached entry for this exact content, or ``None``."""
        entry = self._old["files"].get(relpath)
        if isinstance(entry, dict) and entry.get("sha") == sha:
            self.hits += 1
            self._new["files"][relpath] = entry
            return entry
        self.misses += 1
        return None

    def store_file(self, relpath: str, sha: str, *, parsed: bool,
                   findings, suppressed) -> None:
        self._new["files"][relpath] = {
            "sha": sha, "parsed": parsed,
            "findings": [finding_to_entry(f) for f in findings],
            "suppressed": [finding_to_entry(f) for f in suppressed],
        }

    # -- the project-rule entry --

    def lookup_project(self, tree_fp: str) -> dict | None:
        entry = self._old["project"]
        if isinstance(entry, dict) and entry.get("tree") == tree_fp:
            self._new["project"] = entry
            return entry
        return None

    def store_project(self, tree_fp: str, findings, suppressed) -> None:
        self._new["project"] = {
            "tree": tree_fp,
            "findings": [finding_to_entry(f) for f in findings],
            "suppressed": [finding_to_entry(f) for f in suppressed],
        }

    def save(self) -> None:
        caches = dict(self._others)
        caches[self.ruleset] = {"files": self._new["files"],
                                "project": self._new["project"]}
        doc = {"version": CACHE_VERSION, "engine": self.engine,
               "caches": caches}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        os.replace(tmp, self.path)


def open_cache(root: Path, rules) -> Cache:
    return Cache(root / config.CACHE_FILE, engine_fingerprint(),
                 ruleset_signature(rules))
