"""Finding reporters: human text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import TextIO

FORMATS = ("text", "json", "github")


def summary_counts(result) -> dict:
    return {
        "files": result.files,
        "errors": sum(1 for f in result.findings if f.severity == "error"),
        "warnings": sum(1 for f in result.findings
                        if f.severity == "warning"),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
    }


def render_text(result, stream: TextIO) -> None:
    for finding in result.findings:
        stream.write(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"{finding.rule} {finding.severity}: "
                     f"{finding.message}\n")
    counts = summary_counts(result)
    parts = [f"{counts['files']} files",
             f"{counts['errors']} errors",
             f"{counts['warnings']} warnings"]
    if counts["suppressed"]:
        parts.append(f"{counts['suppressed']} suppressed")
    if counts["baselined"]:
        parts.append(f"{counts['baselined']} baselined")
    stream.write(f"dvmlint: {', '.join(parts)}\n")


def render_json(result, stream: TextIO) -> None:
    doc = {
        "version": 1,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": summary_counts(result),
    }
    json.dump(doc, stream, indent=1, sort_keys=True)
    stream.write("\n")


def render_github(result, stream: TextIO) -> None:
    """GitHub Actions workflow-command annotations, one per finding."""
    for finding in result.findings:
        level = "error" if finding.severity == "error" else "warning"
        message = finding.message.replace("%", "%25") \
            .replace("\r", "%0D").replace("\n", "%0A")
        stream.write(f"::{level} file={finding.path},line={finding.line},"
                     f"col={finding.col},title={finding.rule}::{message}\n")
    counts = summary_counts(result)
    stream.write(f"dvmlint: {counts['errors']} errors, "
                 f"{counts['warnings']} warnings across "
                 f"{counts['files']} files\n")


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
