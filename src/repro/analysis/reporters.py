"""Finding reporters: human text, machine JSON, GitHub, SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import TextIO

FORMATS = ("text", "json", "github", "sarif")

#: SARIF schema constants.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def summary_counts(result) -> dict:
    return {
        "files": result.files,
        "errors": sum(1 for f in result.findings if f.severity == "error"),
        "warnings": sum(1 for f in result.findings
                        if f.severity == "warning"),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
    }


def render_text(result, stream: TextIO) -> None:
    for finding in result.findings:
        stream.write(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"{finding.rule} {finding.severity}: "
                     f"{finding.message}\n")
    counts = summary_counts(result)
    parts = [f"{counts['files']} files",
             f"{counts['errors']} errors",
             f"{counts['warnings']} warnings"]
    if counts["suppressed"]:
        parts.append(f"{counts['suppressed']} suppressed")
    if counts["baselined"]:
        parts.append(f"{counts['baselined']} baselined")
    if counts["cache_hits"] or counts["cache_misses"]:
        parts.append(f"cache {counts['cache_hits']}h/"
                     f"{counts['cache_misses']}m")
    stream.write(f"dvmlint: {', '.join(parts)}\n")


def render_json(result, stream: TextIO) -> None:
    doc = {
        "version": 1,
        "rules": list(result.rules),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": summary_counts(result),
    }
    json.dump(doc, stream, indent=1, sort_keys=True)
    stream.write("\n")


def _escape_property(value: str) -> str:
    """GitHub workflow-command *property* escaping: beyond the message
    escapes, property values must escape ``:`` and ``,`` (the command's
    own delimiters)."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def render_github(result, stream: TextIO) -> None:
    """GitHub Actions workflow-command annotations, one per finding."""
    for finding in result.findings:
        level = "error" if finding.severity == "error" else "warning"
        message = finding.message.replace("%", "%25") \
            .replace("\r", "%0D").replace("\n", "%0A")
        path = _escape_property(finding.path)
        title = _escape_property(finding.rule)
        stream.write(f"::{level} file={path},line={finding.line},"
                     f"col={finding.col},title={title}::{message}\n")
    counts = summary_counts(result)
    stream.write(f"dvmlint: {counts['errors']} errors, "
                 f"{counts['warnings']} warnings across "
                 f"{counts['files']} files\n")


def _sarif_rules(result) -> list[dict]:
    from repro.analysis.core import all_rules
    catalog = {rule.id: rule for rule in all_rules()}
    descriptors = []
    for rule_id in result.rules:
        rule = catalog.get(rule_id)
        descriptor = {"id": rule_id}
        if rule is not None:
            descriptor["shortDescription"] = {"text": rule.title}
            if rule.rationale:
                descriptor["fullDescription"] = {"text": rule.rationale}
            descriptor["defaultConfiguration"] = {
                "level": "error" if rule.severity == "error"
                else "warning"}
        descriptors.append(descriptor)
    return descriptors


def _sarif_result(finding, suppressions: list[dict] | None = None) -> dict:
    entry = {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == "error" else "warning",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col},
            },
        }],
        "partialFingerprints": {
            "dvmlint/v1": finding.fingerprint,
        },
    }
    if suppressions is not None:
        entry["suppressions"] = suppressions
    return entry


def render_sarif(result, stream: TextIO) -> None:
    """SARIF 2.1.0: one run, rule metadata, suppressed/baselined results
    carried with explicit ``suppressions`` so code-scanning shows them
    as resolved rather than dropping them."""
    results = [_sarif_result(f) for f in result.findings]
    results += [_sarif_result(f, [{"kind": "inSource"}])
                for f in result.suppressed]
    results += [_sarif_result(f, [{"kind": "external",
                                   "justification": "baselined"}])
                for f in result.baselined]
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "dvmlint",
                "rules": _sarif_rules(result),
            }},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    json.dump(doc, stream, indent=1, sort_keys=True)
    stream.write("\n")


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
    "sarif": render_sarif,
}
