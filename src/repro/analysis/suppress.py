"""Inline suppressions: ``# dvmlint: disable=RULE[,RULE...]``.

A suppression comment on the violating line — or on a comment-only line
immediately above it — silences the named rules for that line.  A
``# dvmlint: disable-file=RULE[,RULE...]`` comment anywhere in the file
silences the named rules for the whole file.  ``all`` matches every
rule.  Suppressed findings are still counted and reported in the
summary, so a suppression is visible in review rather than silent.
"""

from __future__ import annotations

import re

from repro.analysis.core import Finding, ModuleContext

_DIRECTIVE = re.compile(
    r"#\s*dvmlint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


class Suppressions:
    """Parsed suppression directives for one module."""

    def __init__(self, ctx: ModuleContext):
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, text in enumerate(ctx.lines, start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("kind") == "disable-file":
                self.file_wide |= rules
            else:
                self.by_line.setdefault(lineno, set()).update(rules)
                # A standalone comment line suppresses the line below it.
                if text.lstrip().startswith("#"):
                    self.by_line.setdefault(lineno + 1, set()).update(rules)

    @staticmethod
    def _hits(rules: set[str], rule_id: str) -> bool:
        return "all" in rules or rule_id in rules

    def covers(self, finding: Finding) -> bool:
        if self._hits(self.file_wide, finding.rule):
            return True
        rules = self.by_line.get(finding.line)
        return rules is not None and self._hits(rules, finding.rule)
