"""Baseline file: grandfathered findings, reviewable in diffs.

The baseline is a checked-in JSON file mapping finding *fingerprints*
(rule + path + normalized source line — no line numbers, so unrelated
edits don't invalidate entries) to allowed occurrence counts.  Findings
matched by the baseline are demoted to informational; new findings fail
the run.  ``--baseline-update`` rewrites the file from the current
findings so an intentional new violation shows up as a reviewable
baseline diff rather than an opaque override.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.core import Finding

VERSION = 1


def load(path: Path) -> Counter:
    """Fingerprint -> allowed count.  A missing file is an empty baseline."""
    if not path.is_file():
        return Counter()
    doc = json.loads(path.read_text())
    if doc.get("version") != VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}")
    allowed: Counter = Counter()
    for entry in doc.get("findings", ()):
        allowed[entry["fingerprint"]] += int(entry.get("count", 1))
    return allowed


def partition(findings: list[Finding], allowed: Counter
              ) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined), consuming baseline budget."""
    budget = Counter(allowed)
    fresh: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        if budget[finding.fingerprint] > 0:
            budget[finding.fingerprint] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered


def save(path: Path, findings: list[Finding]) -> None:
    """Write a baseline covering exactly ``findings`` (sorted, counted)."""
    counts: Counter = Counter()
    meta: dict[str, Finding] = {}
    for finding in findings:
        counts[finding.fingerprint] += 1
        meta.setdefault(finding.fingerprint, finding)
    entries = [
        {
            "rule": meta[fp].rule,
            "path": meta[fp].path,
            "snippet": meta[fp].snippet.strip(),
            "fingerprint": fp,
            "count": counts[fp],
        }
        for fp in sorted(counts, key=lambda fp: (meta[fp].path, meta[fp].rule,
                                                 fp))
    ]
    path.write_text(json.dumps({"version": VERSION, "findings": entries},
                               indent=1) + "\n")
