"""Analysis primitives: findings, rules, the registry, path scoping.

A *rule* inspects one parsed module (or, for :class:`ProjectRule`, the
whole tree at once) and yields :class:`Finding`\\ s.  Rules are
registered by class with :func:`register` and instantiated fresh per
run, so they may keep per-run state.  Each rule carries an id
(``DET001``), a severity, a one-line rationale for the catalog, and a
:class:`Scope` restricting which repo-relative paths it inspects.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: Finding severities.  Errors fail the run; warnings are reported but
#: only fail under ``--strict``.
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``snippet`` is the stripped source line; the baseline fingerprint is
    derived from it (not from the line number), so baselined findings
    survive unrelated edits that shift the file.
    """

    rule: str
    severity: str
    path: str          # repo-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        blob = f"{self.rule}|{self.path}|{self.snippet.strip()}"
        return hashlib.sha1(blob.encode()).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class Scope:
    """Which repo-relative paths a rule inspects.

    Entries ending in ``/`` are directory prefixes; entries containing
    glob characters are matched with :func:`fnmatch.fnmatch`; anything
    else is an exact path.  An empty ``include`` means every scanned
    file.  ``exclude`` wins over ``include``.
    """

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    @staticmethod
    def _entry_matches(entry: str, relpath: str) -> bool:
        if entry.endswith("/"):
            return relpath.startswith(entry)
        if any(c in entry for c in "*?["):
            return fnmatch(relpath, entry)
        return relpath == entry

    def matches(self, relpath: str) -> bool:
        if any(self._entry_matches(e, relpath) for e in self.exclude):
            return False
        if not self.include:
            return True
        return any(self._entry_matches(e, relpath) for e in self.include)


class ModuleContext:
    """One parsed module plus the lookup tables rules share.

    ``imports`` maps local aliases to dotted module/object paths
    (``obs_core`` -> ``repro.obs.core``); ``parents`` links every AST
    node to its parent so rules can test lexical enclosure (is this
    raise under an ``if self.fault_path is None:`` guard?).
    """

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.imports = self._import_table(self.tree)
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    @staticmethod
    def _import_table(tree: ast.AST) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    table[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{node.module}.{alias.name}"
        return table

    def dotted(self, node: ast.AST) -> str | None:
        """The import-resolved dotted path of a Name/Attribute chain.

        ``obs_core.REGISTRY.counter`` with ``from repro.obs import core
        as obs_core`` resolves to ``repro.obs.core.REGISTRY.counter``.
        Returns ``None`` for expressions that are not plain chains or
        whose root name was never imported (locals, builtins).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def ancestors(self, node: ast.AST):
        """Every enclosing node, innermost first."""
        seen = self.parents.get(node)
        while seen is not None:
            yield seen
            seen = self.parents.get(seen)

    def enclosing_function(self, node: ast.AST):
        """The nearest enclosing function def, or None at module level."""
        for parent in self.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule.id, severity=rule.severity,
                       path=self.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message,
                       snippet=self.line_text(getattr(node, "lineno", 1)))


@dataclass
class ProjectContext:
    """Whole-tree view handed to :class:`ProjectRule`\\ s."""

    root: Path
    modules: list[ModuleContext] = field(default_factory=list)


class Rule:
    """Base class: one named, scoped invariant check."""

    id: str = ""
    title: str = ""
    severity: str = ERROR
    rationale: str = ""
    scope: Scope = Scope()

    def check_module(self, ctx: ModuleContext):
        """Yield findings for one module.  Default: none."""
        return ()


class ProjectRule(Rule):
    """A rule needing the whole tree (cross-file consistency checks)."""

    def check_project(self, project: ProjectContext):
        return ()


#: Registered rule classes by id.
_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id} has invalid severity "
                         f"{cls.severity!r}")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def get_rule(rule_id: str) -> type[Rule]:
    return _REGISTRY[rule_id]


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id.

    Importing :mod:`repro.analysis.rules` populates the registry; done
    here so ``core`` stays import-cycle-free.
    """
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]
