"""Command line for dvmlint: ``python -m repro.analysis`` / ``make analyze``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import config
from repro.analysis.core import all_rules
from repro.analysis.engine import restrict_to_paths, run_analysis
from repro.analysis.reporters import FORMATS, RENDERERS


def changed_paths(root: Path) -> set[str]:
    """Repo-relative paths changed vs HEAD, plus untracked files."""
    import subprocess
    paths: set[str] = set()
    for args in (("git", "diff", "--name-only", "HEAD"),
                 ("git", "ls-files", "--others", "--exclude-standard")):
        try:
            out = subprocess.run(args, cwd=root, capture_output=True,
                                 text=True, check=True).stdout
        except (OSError, subprocess.CalledProcessError) as exc:
            raise RuntimeError(
                f"--changed needs a git checkout: {exc}") from exc
        paths.update(line.strip() for line in out.splitlines()
                     if line.strip())
    return paths


def _find_root(start: Path) -> Path:
    """The repo root: nearest ancestor holding ``pyproject.toml``."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="dvmlint: repo-aware static analysis enforcing the "
                    "simulator's determinism, fault-path and "
                    "observability invariants.")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to analyze, relative to "
                             "--root (default: "
                             f"{' '.join(config.DEFAULT_PATHS)})")
    parser.add_argument("--root", default=None,
                        help="repository root (default: nearest ancestor "
                             "of the working directory with a "
                             "pyproject.toml)")
    parser.add_argument("--format", "-f", choices=FORMATS, default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULES",
                        help="only run these comma-separated rule ids or "
                             "family prefixes (e.g. DET,FAULT002)")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="RULES",
                        help="skip these comma-separated rule ids or "
                             "family prefixes")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: "
                             f"<root>/{config.BASELINE_FILE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--baseline-update", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0; the baseline diff is the review "
                             "artifact for intentional new findings")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental result cache "
                             f"(<root>/{config.CACHE_FILE})")
    parser.add_argument("--changed", action="store_true",
                        help="report only findings in files changed vs "
                             "git HEAD (plus untracked files); the "
                             "analysis still runs over the full tree so "
                             "whole-program rules stay sound")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _split(values: list[str] | None) -> tuple[str, ...] | None:
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(v.strip() for v in value.split(",") if v.strip())
    return tuple(out)


def list_rules(stream) -> None:
    for rule in all_rules():
        severity = config.SEVERITY_OVERRIDES.get(rule.id, rule.severity)
        stream.write(f"{rule.id}  [{severity}]  {rule.title}\n")
        stream.write(f"    {rule.rationale}\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        list_rules(sys.stdout)
        return 0
    root = Path(args.root) if args.root else _find_root(Path.cwd())
    paths = tuple(args.paths) if args.paths else config.DEFAULT_PATHS
    try:
        result = run_analysis(
            root, paths,
            select=_split(args.select), ignore=_split(args.ignore),
            baseline_path=args.baseline,
            use_baseline=not args.no_baseline,
            update_baseline=args.baseline_update,
            use_cache=not args.no_cache)
        if args.changed:
            restrict_to_paths(result, changed_paths(root))
    except FileNotFoundError as exc:
        print(f"dvmlint: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"dvmlint: {exc}", file=sys.stderr)
        return 2
    RENDERERS[args.format](result, sys.stdout)
    if args.baseline_update:
        print(f"dvmlint: baseline updated with "
              f"{len(result.baselined)} finding(s)")
        return 0
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
