"""Partial sweep results while the sweep is still running.

ROADMAP item 5 asks for a streaming results API so downstream consumers
— figure renderers, dashboards, the fuzz matrix — can act on completed
pairs *during* a multi-minute sweep instead of waiting for the final
merge.  :class:`SweepWatch` is that API.  It owns no state of its own;
it tails the two crash-consistent streams the sweep already writes:

* the **event bus** (:mod:`repro.obs.bus`) for lifecycle transitions —
  ``iter_events()`` yields every validated bus record as it lands;
* the **journal** (:mod:`repro.sweep.journal`) for completed results —
  ``iter_results()`` yields ``(task key, entries)`` as each durable
  journal record appears, applying the journal's own validation rules
  incrementally: self-digest per line, header ``sweep_key`` hygiene,
  zombie-generation drop, and the torn-tail rule (an unterminated final
  line is "still being written", never yielded).

Both iterators are pure readers over append-only files, so a consumer
can run in a different process — or on a different machine over a
shared filesystem — with no coordination with the sweep.  A consumer
rendering partial Figure 8 rows is four lines::

    watch = SweepWatch(journal_path=out / "sweep.journal",
                       sweep_key=key)
    for task_key, entries in watch.iter_results():
        workload, dataset = task_key.split("/", 1)
        figure.update_row(workload, dataset, entries)

Polling is bounded (``poll`` seconds per probe, ``timeout``/``stop``
to end the watch), never blocking-forever: the sweep owns completion,
the watcher merely observes it.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.obs import bus as obs_bus
from repro.sweep import journal as journal_mod


class SweepWatch:
    """Tail a running sweep's bus and journal for live consumption.

    ``bus_path`` defaults to the configured bus stream
    (:func:`repro.obs.bus.bus_path`); ``journal_path`` has no default —
    results can only be watched where the sweep journals.  ``run_id``
    filters bus events to one sweep when several share a stream file;
    ``sweep_key`` enforces the journal-header hygiene the journal's own
    ``load()`` applies (a journal written for a different sweep yields
    nothing rather than mixing results).
    """

    def __init__(self, bus_path: str | os.PathLike | None = None,
                 journal_path: str | os.PathLike | None = None, *,
                 run_id: str | None = None, sweep_key: str | None = None,
                 poll: float = 0.2, sleep=time.sleep,
                 clock=time.monotonic):
        if bus_path is None:
            bus_path = obs_bus.bus_path()
        self.bus_path = Path(bus_path) if bus_path is not None else None
        self.journal_path = (Path(journal_path)
                             if journal_path is not None else None)
        self.run_id = run_id
        self.sweep_key = sweep_key
        self.poll = poll
        self._sleep = sleep
        self._clock = clock

    # -- events ---------------------------------------------------------------

    def iter_events(self, *, follow: bool = True,
                    timeout: float | None = None, stop=None):
        """Yield validated bus records as the scheduler appends them.

        Torn or corrupt lines are skipped and an unterminated tail is
        never yielded (see :func:`repro.obs.bus.tail_events`).  With
        ``follow`` the iterator polls until ``stop()`` returns true or
        ``timeout`` seconds elapse; ``follow=False`` drains what exists
        and returns.
        """
        if self.bus_path is None:
            return
        yield from obs_bus.tail_events(
            self.bus_path, run_id=self.run_id, follow=follow,
            poll=self.poll, stop=stop, timeout=timeout,
            sleep=self._sleep, clock=self._clock)

    # -- results --------------------------------------------------------------

    def iter_results(self, *, follow: bool = True,
                     timeout: float | None = None, stop=None):
        """Yield ``(task key, entries)`` per durable journal record.

        Incremental replay of the journal with the same trust rules as
        :meth:`repro.sweep.journal.SweepJournal.load`: every line must
        self-validate, the header must name this watch's ``sweep_key``
        (when one is set), zombie-generation records are dropped, and a
        torn tail is treated as not-yet-written.  Each key is yielded at
        most once — a re-journaled key after a torn-tail repair is a
        recompute of the same result, not news.

        The iterator ends when the journal disappears after having been
        seen (the sweep merged and called ``complete()``), when
        ``stop()`` returns true, or when ``timeout`` elapses.
        """
        if self.journal_path is None:
            return
        path = self.journal_path
        offset = 0
        buffer = b""
        seen_file = False
        seen_header = False
        header_ok = self.sweep_key is None
        high_gen = 0
        yielded: set[str] = set()
        deadline = (self._clock() + timeout
                    if timeout is not None else None)
        while True:
            chunk = b""
            if path.exists():
                seen_file = True
                try:
                    with open(path, "rb") as handle:
                        handle.seek(0, os.SEEK_END)
                        size = handle.tell()
                        if size < offset:
                            # Torn-tail truncation by the writer: replay
                            # from the top (``yielded`` dedups).
                            offset = 0
                            buffer = b""
                            seen_header = False
                            header_ok = self.sweep_key is None
                            high_gen = 0
                        handle.seek(offset)
                        chunk = handle.read()
                        offset += len(chunk)
                except OSError:
                    chunk = b""
            elif seen_file:
                return      # journal merged and removed: sweep complete
            if chunk:
                buffer += chunk
                *lines, buffer = buffer.split(b"\n")
                for line in lines:
                    if not line:
                        continue
                    record = journal_mod._open_record(line)
                    if record is None:
                        continue
                    if not seen_header:
                        seen_header = True
                        if record.get("kind") == "sweep-journal":
                            header_ok = (
                                self.sweep_key is None
                                or record.get("sweep_key") == self.sweep_key)
                            high_gen = record.get("gen", 0) or 0
                            continue
                    if not header_ok:
                        continue
                    gen = record.get("gen", 0) or 0
                    if gen < high_gen:
                        continue        # fenced-off zombie writer
                    high_gen = max(high_gen, gen)
                    key = record.get("key")
                    if key is None or key in yielded:
                        continue
                    yielded.add(key)
                    yield key, record.get("entries")
            if not follow or (stop is not None and stop()):
                return
            if deadline is not None and self._clock() >= deadline:
                return
            self._sleep(self.poll)
