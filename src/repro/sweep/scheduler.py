"""The supervised sweep service: work stealing under a liveness supervisor.

This replaces the PR-2 process-*pool* tiers in ``sim/runner.py`` with a
scheduler the parent fully owns.  A ``ProcessPoolExecutor`` cannot kill
a wedged worker (the only lever is abandoning the future and waiting out
the pair timeout), shares one task/result queue a dying worker can
corrupt for everyone, and rebuilds the *whole* pool when one process
breaks.  At 10k-pair scale those three costs dominate; the service fixes
each structurally:

**Per-worker deques + stealing.**  Every worker slot has a parent-side
deque; tasks are assigned by shard affinity (same shard → same slot, so
memmapped traces and graph surrogates stay warm) and an idle worker
steals from the *tail* of the longest deque — locality for the owner,
cold tasks for the thief.

**Liveness supervision.**  Workers beat a timestamp into a shared slot
array (:class:`repro.obs.progress.Pulse`); the supervisor declares a
worker hung when its slot is staler than ``2 x REPRO_SWEEP_HEARTBEAT``
and SIGKILLs it immediately — detection in a couple of heartbeat
intervals (sub-second by default), not the full ``REPRO_PAIR_TIMEOUT``.
Until a worker's *first* beat lands the supervisor applies the longer
``REPRO_SWEEP_STARTUP_GRACE`` instead, so a slow process boot (forking
a large parent, spawn-context reimports) is never mistaken for a hang.
Each worker owns a private task/result queue pair, so killing it mid-\
``put`` can corrupt only queues that die with it.

**Failure domains.**  Slots are grouped into domains of
``REPRO_SWEEP_DOMAIN``; a dead worker triggers a rebuild of *its domain
only* (bounded by ``max_pool_rebuilds`` per domain), and a domain that
exhausts its budget is fenced off with its queued work redistributed.
The PR-2 ladder survives intact, one level finer: retry → steal →
rebuild domain → in-process serial degradation (which cannot break and
therefore always completes the sweep).

**Hedged retries.**  A task in flight past ``1.5 x`` the
``REPRO_SWEEP_HEDGE_QUANTILE`` completion quantile is speculatively
re-dispatched to an idle worker; the first finisher wins and the
loser's entire payload — entries, counters, obs events — is discarded
by content-key dedup, so hedging (and the ``steal_race`` /
``heartbeat_loss`` chaos duplicates) can never double-count anything.

**Backpressure.**  At most ``REPRO_SWEEP_QUEUE_BOUND`` tasks are
resident in deques + flight; the rest wait in a backlog with a
deadline — if the scheduler cannot admit for ``REPRO_SWEEP_ADMIT_TIMEOUT``
seconds (every domain wedged), the backlog degrades to the serial tier
rather than waiting forever.

Results merge exactly as before: the caller's ``on_done`` journals each
completion and the final merge iterates the task list in submission
order, so however chaotic the execution, the merged output is
bit-identical to a fault-free serial run.
"""

from __future__ import annotations

import collections
import hashlib
import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field

from repro.common import env, faults
from repro.common.errors import PageFault, ProtectionFault, TransientError
from repro.obs import bus as obs_bus
from repro.obs import core as obs_core
from repro.obs import trace as obs_trace
from repro.sim.resilience import ResilienceReport, RetryPolicy
from repro.sweep.tasks import TaskSpec, _sweep_worker_main

#: Environment knobs (documented in docs/configuration.md).
HEARTBEAT_ENV_VAR = "REPRO_SWEEP_HEARTBEAT"
HEDGE_QUANTILE_ENV_VAR = "REPRO_SWEEP_HEDGE_QUANTILE"
DOMAIN_ENV_VAR = "REPRO_SWEEP_DOMAIN"
QUEUE_BOUND_ENV_VAR = "REPRO_SWEEP_QUEUE_BOUND"
ADMIT_TIMEOUT_ENV_VAR = "REPRO_SWEEP_ADMIT_TIMEOUT"
STARTUP_GRACE_ENV_VAR = "REPRO_SWEEP_STARTUP_GRACE"

#: Hedge only once a task runs this multiple past the quantile.
HEDGE_MULTIPLIER = 1.5
#: Completed-duration samples required before the quantile is trusted.
HEDGE_MIN_SAMPLES = 5
#: A worker is hung when its beat is staler than this many intervals.
LIVENESS_GRACE_INTERVALS = 2.0


def _stable_slot(shard: str, nslots: int) -> int:
    """Deterministic shard → slot assignment (never builtin ``hash``,
    which is salted per process and would scatter affinity per run)."""
    digest = hashlib.sha256(shard.encode()).digest()
    return int.from_bytes(digest[:4], "big") % nslots


@dataclass
class _Worker:
    """Parent-side state for one worker slot."""

    slot: int
    process: object = None
    task_q: object = None
    result_q: object = None
    busy: str | None = None          # key of the task in flight
    started: float = 0.0             # dispatch time of the in-flight task
    spawned: float = 0.0             # process start time (boot grace)
    deadline: float | None = None    # wall-clock budget expiry
    dead: bool = False
    attempt: int = 0                 # dispatch seq of the in-flight task
    trace_started: float = 0.0       # dispatch time on the trace clock

    @property
    def idle(self) -> bool:
        return not self.dead and self.busy is None


@dataclass
class SweepService:
    """One supervised execution of a task set across worker slots.

    The caller supplies the policy surface — what to do on completion
    (``on_done``, which typically journals and may raise, e.g. the
    ``sweep_abort`` chaos hook), how to run a task in-parent for the
    serial tier (``serial_fn``), how to contain a deterministic guest
    violation (``on_violation``), and how to fold a worker payload's
    counters/observations into the sweep (``absorb``).  The service owns
    scheduling, liveness, hedging, domains and requeueing, and reports
    everything it did through the shared
    :class:`~repro.sim.resilience.ResilienceReport`.
    """

    tasks: list
    runner_spec: dict
    report: ResilienceReport
    on_done: object                  # (task, entries) -> None
    serial_fn: object                # (task) -> entries
    on_violation: object             # (task, exc) -> None
    absorb: object                   # (payload) -> entries
    workers: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    pair_timeout: float | None = None
    max_pool_rebuilds: int = 2
    sleep: object = time.sleep

    def __post_init__(self):
        self.heartbeat = max(
            env.floating(HEARTBEAT_ENV_VAR, 0.25), 0.01)
        self.hedge_quantile = min(
            max(env.floating(HEDGE_QUANTILE_ENV_VAR, 0.95), 0.5), 1.0)
        self.domain_size = max(env.integer(DOMAIN_ENV_VAR, 4), 1)
        self.queue_bound = max(env.integer(QUEUE_BOUND_ENV_VAR, 64), 1)
        self.admit_timeout = env.floating(ADMIT_TIMEOUT_ENV_VAR, 30.0)
        self.grace = LIVENESS_GRACE_INTERVALS * self.heartbeat
        # Until a worker's *first* beat lands, the tight beat grace
        # would race process startup: forking a large parent (or a
        # spawn-context numpy reimport) can take far longer than
        # 2 x heartbeat, and killing a worker that is still booting
        # collapses the whole sweep to the serial tier for no reason.
        self.startup_grace = max(
            env.floating(STARTUP_GRACE_ENV_VAR, 10.0), self.grace)
        self.by_key = {task.key: task for task in self.tasks}
        self.done: set[str] = set()      # completed, violated, or absorbed
        self.shelved: set[str] = set()   # left for the serial tier
        self.inflight: dict[str, set[int]] = {}
        self.attempts: dict[str, int] = {}   # failed/killed dispatches
        self.seq: dict[str, int] = {}        # dispatch counter (scopes)
        self.hedged: set[str] = set()
        self.durations: list[float] = []
        self.detection_latencies: list[float] = []
        self._ctx = multiprocessing.get_context("fork")
        self._mp_pool_rebuilds = 0
        # The streaming telemetry bus (obs/bus.py).  Content-derived
        # run id, so re-running the same task set is attributable; the
        # bus is the NULL_BUS unless observability is on, making every
        # _emit below one no-op method call in production sweeps.
        self.run_id = hashlib.sha256(
            "\n".join(sorted(self.by_key)).encode()).hexdigest()[:12]
        self.bus = obs_bus.sweep_bus(self.run_id)
        self._bus_on = self.bus is not obs_bus.NULL_BUS
        self._stolen: set[str] = set()
        self._queued_at: dict[str, float] = {}
        self._tick_every = max(self.heartbeat, 0.25)
        self._last_tick = 0.0

    # -- telemetry ------------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        """Narrate one lifecycle transition onto the event bus."""
        self.bus.emit(kind, **fields)

    def queue_depth(self) -> int:
        """Tasks waiting in the backlog plus the per-worker deques
        (live consumers: the heartbeat line and ``repro top``)."""
        backlog = len(getattr(self, "backlog", ()))
        deques = getattr(self, "deques", None)
        queued = sum(len(d) for d in deques) if deques else 0
        return backlog + queued

    # -- public entry ---------------------------------------------------------

    def run(self) -> None:
        """Execute every task; raises only what the caller's hooks raise
        (plus ``KeyboardInterrupt``).  On normal return every task is
        done, violated, or finished by the serial tier."""
        nslots = max(1, min(self.workers, len(self.tasks)))
        self._emit("sweep-begin", tasks=len(self.tasks),
                   workers=self.workers, slots=nslots)
        try:
            if nslots > 1 and len(self.tasks) > 1:
                self._run_supervised(nslots)
            self._run_serial_tier()
            self._emit("sweep-end", done=len(self.done),
                       shelved=len(self.shelved))
        finally:
            self.bus.close()

    # -- supervised (parallel) tier -------------------------------------------

    def _run_supervised(self, nslots: int) -> None:
        # lock=False: beats must stay readable after a worker is
        # SIGKILLed — a lock the victim died holding would wedge the
        # supervisor.  Torn reads of a double are harmless here (any
        # plausible value is "recent enough" for liveness).
        self.beats = self._ctx.Array("d", nslots, lock=False)
        self.slots = [_Worker(slot=i) for i in range(nslots)]
        self.deques = [collections.deque() for _ in range(nslots)]
        ndomains = -(-nslots // self.domain_size)
        self.domain_rebuilds = [0] * ndomains
        self.domain_dead = [False] * ndomains
        self.backlog = collections.deque(self.tasks)
        self._admit_progress = time.monotonic()
        for worker in self.slots:
            self._spawn(worker)
        try:
            self._supervise()
        except BaseException:
            self._shutdown(graceful=False)
            raise
        self._shutdown(graceful=True)

    def _domain(self, slot: int) -> int:
        return slot // self.domain_size

    def _healthy_slots(self) -> list[_Worker]:
        return [w for w in self.slots
                if not w.dead and not self.domain_dead[self._domain(w.slot)]]

    def _spawn(self, worker: _Worker) -> None:
        """(Re)start one worker slot with fresh private queues."""
        worker.task_q = self._ctx.Queue()
        worker.result_q = self._ctx.Queue()
        worker.busy = None
        worker.deadline = None
        worker.dead = False
        # 0.0 = "no beat yet": liveness applies the startup grace until
        # the worker's Pulse stamps its first real (nonzero) timestamp.
        self.beats[worker.slot] = 0.0
        worker.spawned = time.monotonic()
        spec, seed = self._fault_config()
        worker.process = self._ctx.Process(
            target=_sweep_worker_main, name=f"sweep-worker-{worker.slot}",
            args=(worker.slot, worker.task_q, worker.result_q, self.beats,
                  self.heartbeat, self.runner_spec, spec, seed),
            daemon=True)
        worker.process.start()

    @staticmethod
    def _fault_config() -> tuple[str | None, int]:
        """The active fault spec as shippable (spec string, seed)."""
        inj = faults.injector()
        if inj is None or not inj.specs:
            return None, 0
        spec = ",".join(
            f"{s.site}:{s.probability:g}"
            + (f":{s.max_fires}" if s.max_fires is not None else "")
            for s in inj.specs.values())
        return spec, inj.seed

    def _supervise(self) -> None:
        """The supervisor loop: admit, dispatch, drain, check liveness,
        hedge — until no live work remains or every domain is dead."""
        tick = self.heartbeat / 2.0
        while True:
            if faults.should_fire("scheduler_stall"):
                # A wedged scheduler must not cost correctness: workers
                # keep beating and computing; on wake the supervisor
                # sees fresh beats (no spurious kills) and drains
                # everything that completed meanwhile.
                self.report.scheduler_stalls += 1
                self._emit("stalled", grace=self.grace)
                self.sleep(self.grace)
            self._tick()
            self._admit()
            healthy = self._healthy_slots()
            if not healthy:
                break
            for worker in healthy:
                if worker.idle:
                    self._dispatch(worker)
            progressed = self._drain_results()
            self._check_liveness()
            self._maybe_hedge()
            if not self._live_work_remains():
                break
            if not progressed:
                self.sleep(tick)

    def _tick(self) -> None:
        """Rate-limited scheduler snapshot for live dashboards.

        Gated on the bus being real so a production (unobserved) sweep
        never pays the resident-count scan.
        """
        if not self._bus_on:
            return
        now = time.monotonic()
        if now - self._last_tick < self._tick_every:
            return
        self._last_tick = now
        self._emit("tick", resident=self._resident(),
                   backlog=len(self.backlog), done=len(self.done),
                   idle=sum(1 for w in self.slots if w.idle),
                   dead=sum(1 for w in self.slots if w.dead))

    # -- admission ------------------------------------------------------------

    def _resident(self) -> int:
        queued = sum(1 for d in self.deques for key in d
                     if key not in self.done and key not in self.shelved)
        return queued + len([k for k, s in self.inflight.items() if s])

    def _admit(self) -> None:
        """Feed the backlog into shard-affine deques within the bound.

        If the scheduler makes no admission progress for
        ``admit_timeout`` seconds while a backlog waits (every domain
        wedged or dead), the backlog's deadline expires and it degrades
        to the serial tier instead of waiting forever.
        """
        now = time.monotonic()
        admitted = False
        while self.backlog and self._resident() < self.queue_bound:
            task = self.backlog.popleft()
            if task.key in self.done or task.key in self.shelved:
                continue
            self._enqueue(task.key)
            admitted = True
        if admitted or not self.backlog:
            self._admit_progress = now
        elif now - self._admit_progress > self.admit_timeout:
            while self.backlog:
                key = self.backlog.popleft().key
                self.shelved.add(key)
                self._emit("shelved", key=key, reason="admit-timeout")

    def _enqueue(self, key: str, *, front: bool = False) -> None:
        """Queue one task key on its (healthy) affinity slot's deque."""
        healthy = self._healthy_slots()
        if not healthy:
            self.shelved.add(key)
            self._emit("shelved", key=key, reason="no-healthy-domain")
            return
        task = self.by_key[key]
        home = self._stable_worker(task, healthy)
        if front:
            self.deques[home.slot].appendleft(key)
        else:
            self.deques[home.slot].append(key)
        if obs_core.ENABLED:
            self._queued_at[key] = obs_trace.now()
        self._emit("admitted", key=key, slot=home.slot,
                   shard=task.shard or task.key)

    def _stable_worker(self, task: TaskSpec, healthy: list) -> _Worker:
        index = _stable_slot(task.shard or task.key, len(healthy))
        return healthy[index]

    # -- dispatch and stealing ------------------------------------------------

    def _dispatch(self, worker: _Worker) -> None:
        key = self._next_key(worker)
        if key is None:
            return
        task = self.by_key[key]
        self.seq[key] = self.seq.get(key, 0) + 1
        attempt = self.seq[key]
        try:
            worker.task_q.put((key, task.kind, task.payload, attempt),
                              timeout=self.heartbeat)
        except (queue_mod.Full, ValueError, OSError):
            # Slot's queue is wedged or torn down: treat as a dead
            # worker; the task goes back to a healthy domain.
            self._enqueue(key, front=True)
            self._worker_died(worker, hung=True)
            return
        worker.busy = key
        worker.started = time.monotonic()
        worker.deadline = (worker.started + self.pair_timeout
                           if self.pair_timeout is not None else None)
        worker.attempt = attempt
        worker.trace_started = obs_trace.now() if obs_core.ENABLED else 0.0
        self.inflight.setdefault(key, set()).add(worker.slot)
        self._emit("started", key=key, slot=worker.slot, attempt=attempt,
                   stolen=key in self._stolen)
        self._stolen.discard(key)

    def _next_key(self, worker: _Worker) -> str | None:
        """The worker's next task: own deque first, then steal."""
        own = self.deques[worker.slot]
        while own:
            key = own.popleft()
            if key not in self.done and key not in self.shelved:
                return key
        victim = max((d for i, d in enumerate(self.deques)
                      if i != worker.slot), key=len, default=None)
        while victim:
            key = victim.pop()          # steal cold end, keep owner's warm
            if key in self.done or key in self.shelved:
                continue
            self.report.steals += 1
            self._stolen.add(key)
            self._emit("stolen", key=key, slot=worker.slot)
            obs_trace.instant("steal", cat="sched", key=key,
                              slot=worker.slot)
            if faults.should_fire("steal_race"):
                # Chaos: the steal "raced" and left a duplicate behind —
                # two workers will run this task; completion-side dedup
                # must keep exactly one result.
                victim.append(key)
                self.report.steal_races += 1
            return key
        return None

    # -- results --------------------------------------------------------------

    def _drain_results(self) -> bool:
        progressed = False
        for worker in list(self.slots):
            if worker.dead or worker.result_q is None:
                continue
            while True:
                try:
                    payload = worker.result_q.get_nowait()
                except queue_mod.Empty:
                    break
                except (EOFError, OSError):
                    break
                progressed = True
                self._complete(worker, payload)
                # Hedge checks are event-driven, not just polled: a
                # completion is exactly when a twin slot frees up while
                # another worker may still be mid-straggle.  Checking
                # here closes the race where the supervisor sleeps
                # through near-simultaneous finishes and never observes
                # the busy/idle split the hedge needs.
                self._maybe_hedge()
        return progressed

    def _complete(self, worker: _Worker, payload: dict) -> None:
        key = payload.get("key")
        if worker.busy == key:
            duration = time.monotonic() - worker.started
            worker.busy = None
            worker.deadline = None
        else:
            duration = None
        holders = self.inflight.get(key)
        if holders is not None:
            holders.discard(worker.slot)
        if key in self.done:
            # A hedge loser, a steal-race duplicate, or a requeued task
            # whose "hung" original finished after all: discard the
            # payload *wholesale* — entries, counters, and obs events —
            # so nothing is ever double-counted.
            self.report.duplicate_results += 1
            self._emit("duplicate", key=key, slot=worker.slot)
            return
        error = payload.get("error")
        if isinstance(error, (PageFault, ProtectionFault)):
            self.done.add(key)
            self.attempts.pop(key, None)
            self._emit("quarantined", key=key, slot=worker.slot,
                       error=type(error).__name__)
            self.on_violation(self.by_key[key], error)
            return
        if error is not None:
            self._emit("failed", key=key, slot=worker.slot,
                       error=type(error).__name__)
            self._task_failed(key, transient=isinstance(error,
                                                        TransientError))
            return
        if duration is not None:
            self.durations.append(duration)
        self.done.add(key)
        self.hedged.discard(key)
        if obs_core.ENABLED:
            self._stitch(worker, key, payload.get("attempt"), duration)
        entries = self.absorb(payload)
        self._emit("completed", key=key, slot=worker.slot,
                   attempt=payload.get("attempt"),
                   duration=round(duration, 4) if duration else None)
        self.on_done(self.by_key[key], entries)

    def _stitch(self, worker: _Worker, key: str, attempt,
                duration: float | None) -> None:
        """Emit the scheduler-side half of the stitched cross-worker
        trace: queue-time and dispatch spans on the parent track, plus
        the flow *start* whose matching finish the worker recorded
        inside its ``task`` span — Perfetto draws the arrow between
        them, so one trace shows where sweep wall-clock actually went.
        """
        end = obs_trace.now()
        queued_at = self._queued_at.pop(key, None)
        started = worker.trace_started
        if not started or duration is None:
            return      # completion raced a kill/requeue; no clean span
        if queued_at is not None and queued_at <= started:
            obs_trace.complete("task-queued", "sched", queued_at, started,
                               key=key, slot=worker.slot)
        obs_trace.complete("task-run", "sched", started, end, key=key,
                           slot=worker.slot, attempt=attempt)
        obs_trace.flow("s", "task-flow", "sched",
                       obs_trace.flow_id(f"{key}#a{attempt}"), ts=started)

    def _task_failed(self, key: str, *, transient: bool) -> None:
        """One attempt failed; retry with backoff or shelve for serial."""
        if transient:
            self.report.worker_crashes += 1
        if key in self.done or key in self.shelved:
            return
        if self.inflight.get(key):
            return      # a hedge twin is still running; let it decide
        attempt = self.attempts.get(key, 0) + 1
        self.attempts[key] = attempt
        if attempt < self.retry.max_attempts:
            if transient:
                self.report.retries += 1
                delay = self.retry.delay(attempt, tag=key)
                if delay > 0:
                    self.sleep(delay)
            self._emit("retried", key=key, attempt=attempt)
            self._enqueue(key)
        else:
            self.shelved.add(key)
            self._emit("shelved", key=key, reason="retries-exhausted")

    # -- liveness and domains -------------------------------------------------

    def _check_liveness(self) -> None:
        """Kill workers whose heartbeat went stale or deadline passed.

        A stale beat means the *process* is wedged (or its telemetry
        died — indistinguishable from outside, and treated the same:
        kill and requeue, dedup protects against the race where the
        work actually finishes).  Detection latency is bounded by the
        grace period plus one poll tick — a couple of heartbeat
        intervals — independent of the much larger pair timeout.
        """
        now = time.monotonic()
        for worker in self.slots:
            if worker.dead:
                continue
            alive = worker.process is not None and worker.process.is_alive()
            if worker.busy is None:
                if not alive:
                    self._worker_died(worker, hung=False)
                continue
            beat = self.beats[worker.slot]
            if beat:
                hung = now - beat > self.grace
            else:
                # Still booting (never beat): only the generous startup
                # grace applies — a slow fork is not a hung worker.
                hung = now - worker.spawned > self.startup_grace
            timed_out = worker.deadline is not None and now > worker.deadline
            if not alive:
                self._worker_died(worker, hung=False)
            elif hung or timed_out:
                latency = now - worker.started
                self.detection_latencies.append(latency)
                if obs_core.ENABLED:
                    obs_core.histogram("sweep.hang_detection_ms").observe(
                        int(latency * 1000))
                self.report.pair_timeouts += 1
                if hung:
                    self.report.hung_workers += 1
                self._emit("beat-stale", key=worker.busy, slot=worker.slot,
                           hung=hung, latency=round(latency, 3))
                self._worker_died(worker, hung=True)

    def _worker_died(self, worker: _Worker, *, hung: bool) -> None:
        """Contain one worker death: kill, requeue its task, heal the
        domain."""
        key = worker.busy
        worker.busy = None
        worker.deadline = None
        worker.dead = True
        process = worker.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        self._emit("killed", key=key, slot=worker.slot, hung=hung)
        self._discard_queues(worker)
        if key is not None:
            holders = self.inflight.get(key)
            if holders is not None:
                holders.discard(worker.slot)
            if key not in self.done and not self.inflight.get(key):
                if not hung:
                    self.report.worker_crashes += 1
                attempt = self.attempts.get(key, 0) + 1
                self.attempts[key] = attempt
                if attempt < self.retry.max_attempts:
                    self._emit("retried", key=key, attempt=attempt)
                    self._enqueue(key, front=True)
                else:
                    self.shelved.add(key)
                    self._emit("shelved", key=key,
                               reason="retries-exhausted")
        self._heal_domain(self._domain(worker.slot))

    def _discard_queues(self, worker: _Worker) -> None:
        """Drop a dead worker's private queues (possibly mid-``put``
        corrupt — which is exactly why they are private)."""
        for q in (worker.task_q, worker.result_q):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        worker.task_q = None
        worker.result_q = None

    def _heal_domain(self, domain: int) -> None:
        """Rebuild a domain's dead slots, or fence the domain off.

        One crashing worker costs its domain a rebuild — never the whole
        pool; sibling domains keep streaming results throughout.  A
        domain past its rebuild budget is marked dead and its queued
        work redistributed to healthy domains (or the serial tier).
        """
        if self.domain_dead[domain]:
            return
        members = [w for w in self.slots if self._domain(w.slot) == domain]
        dead = [w for w in members if w.dead]
        if not dead:
            return
        if self.domain_rebuilds[domain] < self.max_pool_rebuilds:
            self.domain_rebuilds[domain] += 1
            self.report.pool_rebuilds += 1
            self._emit("domain-rebuilt", domain=domain,
                       rebuilds=self.domain_rebuilds[domain],
                       slots=[w.slot for w in dead])
            for worker in dead:
                self._spawn(worker)
            return
        # Fence the domain: its alive slots stop taking new work (only
        # healthy-domain slots are dispatched to), though tasks already
        # in flight on them are left to finish — their results count.
        self.domain_dead[domain] = True
        self._emit("domain-fenced", domain=domain)
        orphaned = []
        for worker in members:
            orphaned.extend(self.deques[worker.slot])
            self.deques[worker.slot].clear()
        for key in orphaned:
            if key not in self.done and key not in self.shelved:
                self._enqueue(key)

    # -- hedging --------------------------------------------------------------

    def _hedge_threshold(self) -> float | None:
        if len(self.durations) < HEDGE_MIN_SAMPLES:
            return None
        ordered = sorted(self.durations)
        index = min(len(ordered) - 1,
                    int(self.hedge_quantile * len(ordered)))
        return ordered[index] * HEDGE_MULTIPLIER

    def _maybe_hedge(self) -> None:
        """Speculatively duplicate stragglers onto idle workers.

        First finisher wins; the loser is discarded by the dedup in
        :meth:`_complete`.  The ``hedge_race`` chaos site forces an
        immediate hedge (no quantile, no minimum samples) so the test
        suite can exercise near-simultaneous twin completions.
        """
        threshold = self._hedge_threshold()
        now = time.monotonic()
        for worker in self.slots:
            key = worker.busy
            if key is None or worker.dead or key in self.hedged \
                    or key in self.done:
                continue
            elapsed = now - worker.started
            forced = faults.should_fire("hedge_race")
            if not forced and (threshold is None or elapsed < threshold):
                continue
            twin = next((w for w in self._healthy_slots()
                         if w.idle and not self.deques[w.slot]), None)
            if twin is None:
                return
            self.hedged.add(key)
            self.report.hedges += 1
            self._emit("hedged", key=key, slot=twin.slot, forced=forced)
            obs_trace.instant("hedge", cat="sched", key=key,
                              slot=twin.slot)
            task = self.by_key[key]
            self.seq[key] = self.seq.get(key, 0) + 1
            try:
                twin.task_q.put((key, task.kind, task.payload,
                                 self.seq[key]), timeout=self.heartbeat)
            except (queue_mod.Full, ValueError, OSError):
                self._worker_died(twin, hung=True)
                continue
            twin.busy = key
            twin.started = now
            twin.deadline = (now + self.pair_timeout
                             if self.pair_timeout is not None else None)
            twin.attempt = self.seq[key]
            twin.trace_started = (obs_trace.now() if obs_core.ENABLED
                                  else 0.0)
            self.inflight.setdefault(key, set()).add(twin.slot)

    # -- loop bookkeeping ------------------------------------------------------

    def _live_work_remains(self) -> bool:
        if self.backlog:
            return True
        if any(slots for slots in self.inflight.values()):
            return True
        return any(key not in self.done and key not in self.shelved
                   for d in self.deques for key in d)

    def _shutdown(self, *, graceful: bool) -> None:
        """Stop every worker; never blocks unboundedly.

        Graceful shutdown sends sentinels and joins briefly; either way
        stragglers are killed — an abandoned sweep's in-flight work is
        worthless, and the journal already holds everything completed.
        """
        for worker in self.slots:
            if worker.dead or worker.process is None:
                continue
            if graceful and worker.task_q is not None:
                try:
                    worker.task_q.put(None, timeout=0.5)
                except (queue_mod.Full, ValueError, OSError):
                    pass
        for worker in self.slots:
            process = worker.process
            if process is None:
                continue
            if graceful:
                process.join(timeout=2.0 if not worker.dead else 0.1)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            self._discard_queues(worker)
            worker.process = None

    # -- serial tier ----------------------------------------------------------

    def _run_serial_tier(self) -> None:
        """Finish every unfinished task in-process, in submission order.

        The tier of last resort: no pool, no queues, nothing left to
        break.  Each task counts one ``serial_degradation`` — the
        signal that the parallel tiers gave up on it.
        """
        for task in self.tasks:
            if task.key in self.done:
                continue
            self.report.serial_degradations += 1
            self._emit("serial", key=task.key)
            try:
                entries = self.serial_fn(task)
            except (PageFault, ProtectionFault) as exc:
                self.done.add(task.key)
                self._emit("quarantined", key=task.key, slot=None,
                           error=type(exc).__name__)
                self.on_violation(task, exc)
                continue
            self.done.add(task.key)
            self._emit("completed", key=task.key, slot=None,
                       attempt=None, duration=None, tier="serial")
            self.on_done(task, entries)
