"""Crash-consistent sweep checkpointing: a fenced, fsynced journal.

The PR-2 :class:`~repro.sim.resilience.SweepCheckpoint` rewrote the whole
checkpoint file after every completed pair — O(n²) bytes over a sweep,
no fsync (a crash could lose or tear the entire journal), and no defense
against a *zombie writer*: a wedged sweep process from a previous
incarnation waking up and clobbering the journal a resumed sweep is
appending to.  At the 10k-pair scale the sweep service targets, all
three matter.  :class:`SweepJournal` replaces it with:

**Append-only records.**  One line per completed task::

    {"gen": 2, "seq": 5, "key": "bfs/FR", "entries": [...], "sha": "..."}

``sha`` is the SHA-256 of the record's canonical form (sans ``sha``), so
every record self-validates.  The first record is a header carrying the
``sweep_key`` (everything that determines the merged result); a journal
written for a different sweep is ignored, never trusted.

**Durability.**  Every append is flushed and ``fsync``’d before
:meth:`append` returns, and the generation file is fsync’d through a
tmp-file + ``os.replace`` + directory-fsync sequence, so a record the
caller saw acknowledged survives a crash at any instant.

**Torn-write recovery.**  A crash mid-append leaves a partial trailing
line.  :meth:`load` validates records in order and *truncates* the file
back to the last good record — one recomputed task — instead of
discarding the journal (the pre-PR-8 behaviour trusted the tail
outright; the ``checkpoint_torn`` fault site regression-tests this).

**Generation fencing.**  Opening a journal for writing bumps a
generation counter in a ``.gen`` sidecar; every append re-reads it and
raises :class:`StaleWriterError` if another writer has taken over.  A
zombie writer therefore cannot interleave records into — or truncate —
a journal a newer incarnation owns.  Records from a superseded
generation appearing *after* a newer generation's records (a zombie that
raced the fence check) are dropped at load time and counted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.common import faults, integrity
from repro.common.errors import InjectedFault, ReproError

#: Format tag carried by every record; bumping it invalidates old journals.
JOURNAL_SCHEMA = 1


class StaleWriterError(ReproError):
    """This journal writer has been fenced off by a newer generation."""


def _digest(record: dict) -> str:
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _seal(record: dict) -> bytes:
    record = dict(record)
    record["sha"] = _digest(record)
    return (json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def _open_record(line: bytes) -> dict | None:
    """Parse and validate one journal line; ``None`` when torn/corrupt."""
    try:
        record = json.loads(line.decode())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    sha = record.pop("sha", None)
    if sha != _digest(record):
        return None
    return record


def _fsync_dir(path: Path) -> None:
    """Make a rename in ``path`` durable (best effort on odd filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SweepJournal:
    """A resumable, crash-consistent journal of completed sweep tasks.

    Drop-in successor to the PR-2 ``SweepCheckpoint``: same
    ``load()`` / ``record()`` / ``complete()`` surface and the same
    sweep-key hygiene, with append-only fsynced records, torn-tail
    truncation and generation fencing as described in the module
    docstring.  ``torn_records`` and ``fenced_records`` report what
    :meth:`load` had to repair; the runner folds them into the
    :class:`~repro.sim.resilience.ResilienceReport`.
    """

    def __init__(self, path: Path, sweep_key: str):
        self.path = Path(path)
        self.sweep_key = sweep_key
        self.generation: int | None = None     # set on first append
        self.torn_records = 0
        self.fenced_records = 0
        self._entries: dict[str, list] = {}

    @staticmethod
    def pair_key(workload: str, dataset: str) -> str:
        return f"{workload}/{dataset}"

    # -- generation fencing ---------------------------------------------------

    @property
    def gen_path(self) -> Path:
        return self.path.with_name(self.path.name + ".gen")

    def _read_generation(self) -> int:
        try:
            return int(self.gen_path.read_text().strip() or "0")
        except (OSError, ValueError):
            return 0

    def _write_generation(self, generation: int) -> None:
        tmp = integrity.tmp_path(self.gen_path)
        with open(tmp, "w") as handle:
            handle.write(f"{generation}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.gen_path)
        _fsync_dir(self.path.parent)

    def fence(self) -> int:
        """Claim the journal for writing, fencing off older writers."""
        self.generation = self._read_generation() + 1
        self._write_generation(self.generation)
        return self.generation

    def _check_fence(self) -> None:
        if self.generation is None:
            self.fence()
            return
        current = self._read_generation()
        if current != self.generation:
            raise StaleWriterError(
                f"journal {self.path} is owned by generation {current}; "
                f"this writer (generation {self.generation}) has been "
                f"fenced off — a newer sweep incarnation resumed it")

    # -- read side ------------------------------------------------------------

    def load(self) -> dict[str, list]:
        """Replay the journal, repairing a torn tail and dropping
        zombie-generation records.

        Returns ``{task key: entries}`` for every valid record whose
        header matches this journal's ``sweep_key``.  A torn trailing
        record is truncated away (the sweep recomputes that one task); a
        journal whose header belongs to a different sweep is left
        untouched and ignored; a journal whose *header* is unreadable is
        quarantined wholesale.
        """
        self._entries = {}
        self.torn_records = 0
        self.fenced_records = 0
        if not self.path.exists():
            return self._entries
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        # A well-formed journal ends with a newline, so the final split
        # element is empty; a non-empty final element is a torn trailing
        # record, and a record whose digest fails is treated the same —
        # everything from the first bad byte on is untrustworthy.
        good_bytes = 0
        records: list[dict] = []
        torn = False
        for index, line in enumerate(lines):
            terminated = index < len(lines) - 1
            if not line:
                if terminated:          # stray blank line; tolerate
                    good_bytes += 1
                continue
            record = _open_record(line) if terminated else None
            if record is None:
                torn = True
                break
            records.append(record)
            good_bytes += len(line) + 1
        if not records:
            if torn:
                # Even the header is unreadable: nothing to salvage.
                integrity.quarantine(self.path)
                self.torn_records += 1
            return self._entries
        header = records[0]
        if header.get("kind") != "sweep-journal" \
                or header.get("schema") != JOURNAL_SCHEMA:
            integrity.quarantine(self.path)
            return self._entries
        if header.get("sweep_key") != self.sweep_key:
            # A different sweep's journal at the same path: not corrupt,
            # merely inapplicable.  Start fresh without destroying it.
            return self._entries
        if torn:
            self.torn_records += 1
            self._truncate(good_bytes)
        high_gen = header.get("gen", 0)
        for record in records[1:]:
            gen = record.get("gen", 0)
            if gen < high_gen:
                # Zombie writer from a fenced-off generation raced its
                # final append past the takeover: drop, never trust.
                self.fenced_records += 1
                continue
            high_gen = max(high_gen, gen)
            key = record.get("key")
            if key is not None:
                self._entries[key] = record.get("entries")
        return self._entries

    def _truncate(self, size: int) -> None:
        with open(self.path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    # -- write side -----------------------------------------------------------

    def record(self, workload: str, dataset: str, entries: list) -> None:
        """Append one completed pair (compat shim over :meth:`append`)."""
        self.append(self.pair_key(workload, dataset),
                    [[name, payload] for name, payload in entries])

    def append(self, key: str, entries) -> None:
        """Durably append one completed task's entries.

        The record is on disk (written, flushed, fsynced) before this
        returns; a crash at any later instant cannot lose it.  Raises
        :class:`StaleWriterError` if a newer writer has fenced this one
        off — the record is *not* written in that case.
        """
        self._check_fence()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        payload = _seal({"gen": self.generation, "seq": len(self._entries),
                         "key": key, "entries": entries})
        if fresh:
            header = _seal({"kind": "sweep-journal",
                            "schema": JOURNAL_SCHEMA, "gen": self.generation,
                            "sweep_key": self.sweep_key})
            payload = header + payload
        if faults.should_fire("checkpoint_torn"):
            # Simulate a crash mid-append: persist a prefix of the record
            # and die.  Resume must truncate the torn tail and recompute
            # exactly this task.
            with open(self.path, "ab") as handle:
                handle.write(payload[: max(1, len(payload) * 2 // 3)])
                handle.flush()
                os.fsync(handle.fileno())
            raise InjectedFault("injected torn checkpoint write "
                                f"(key {key!r})")
        with open(self.path, "ab") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[key] = entries

    def complete(self) -> None:
        """Remove the journal (and its generation fence) after a fully
        merged sweep."""
        for path in (self.path, self.gen_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
