"""Shard-aware content-addressed artifact cache layout.

PR 1's cache dropped every artifact flat into one directory.  At the
10k+ pair scale the sweep service targets (ROADMAP items 1–4 multiply
configs × workloads × tenants × tiers × fuzz seeds), a flat directory
makes every ``readdir`` — tmp reaping, cache inspection, backup tooling
— scan tens of thousands of entries.  :class:`ShardedCache` fans
artifacts into 256 shard directories keyed by the first content-key
byte, git-object style::

    <root>/ab/metrics-ab12....json
    <root>/ab/trace-ab12....npz
    <root>/sweep-....ckpt.json          # journals stay at the root

Because the key is a content hash, the fan-out is uniform by
construction, and because the shard is *derived from the key*, every
process (parent, pool workers, a resumed sweep) computes the same path
with no coordination.  Sweep journals deliberately stay at the root:
they are few, they are the first thing a resuming human looks for, and
existing tooling discovers them by the ``sweep-`` prefix.

Legacy flat-layout artifacts are still honored on read (one ``exists``
check) so a pre-sharding cache keeps its hits; new writes always land
in shards.
"""

from __future__ import annotations

from pathlib import Path

from repro.common import integrity

#: Artifact kinds that live at the cache root rather than in a shard.
UNSHARDED_KINDS = frozenset({"sweep"})


class ShardedCache:
    """Path authority for one cache root; reaps dead writers' tmp once."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._swept = False
        self.reaped = 0

    def sweep_tmp(self) -> int:
        """Reap stale tmp droppings (recursively) once per instance."""
        if not self._swept:
            self.root.mkdir(parents=True, exist_ok=True)
            self.reaped += len(integrity.reap_stale_tmp(self.root))
            self._swept = True
        return self.reaped

    def path(self, kind: str, key: str, suffix: str) -> Path:
        """The canonical (sharded) location of one artifact.

        Creates the shard directory; prefers an existing legacy
        flat-layout file so pre-sharding caches keep their hits.
        """
        self.sweep_tmp()
        if kind in UNSHARDED_KINDS:
            return self.root / f"{kind}-{key}{suffix}"
        flat = self.root / f"{kind}-{key}{suffix}"
        sharded = self.root / key[:2] / f"{kind}-{key}{suffix}"
        if flat.exists() and not sharded.exists():
            return flat
        sharded.parent.mkdir(exist_ok=True)
        return sharded
