"""The supervised sweep service (ROADMAP item 5).

One scheduler for every experiment matrix the repo runs — figure pairs,
the fault-model ablation, nightly fuzz seed shards, chaos probes — with
work stealing, heartbeat liveness supervision, failure-domain isolation,
hedged retries, a crash-consistent fsynced journal, a sharded
content-addressed cache and zero-copy (memmap) trace sharing.  See
``docs/sweep.md`` for the architecture and recovery semantics.

Submodules (imported directly to keep import-time dependencies narrow —
``journal`` is imported by :mod:`repro.sim.resilience`, so this package
``__init__`` must not pull in the scheduler, which imports the reverse
direction):

* :mod:`repro.sweep.journal` — fenced append-only checkpoint journal
* :mod:`repro.sweep.cache` — sharded content-addressed artifact layout
* :mod:`repro.sweep.tracestore` — memmapped symbolic-trace publication
* :mod:`repro.sweep.tasks` — task model, executors, worker entry
* :mod:`repro.sweep.scheduler` — the supervisor (:class:`SweepService`)
* :mod:`repro.sweep.cli` — ``python -m repro sweep``
"""
