"""``python -m repro sweep`` — the supervised sweep service entry point.

Usage::

    python -m repro sweep pairs [--bench] [--workers N]
                                [--pairs w/d,w/d] [--configs a,b]
    python -m repro sweep probes [--count N] [--spin S] [--workers N]
    python -m repro sweep --chaos-smoke [--count N] [--workers N]

``pairs`` runs a (workload, dataset) matrix through
:meth:`~repro.sim.runner.ExperimentRunner.run_pairs` — the same path the
figure artifacts use — honoring ``REPRO_CACHE_DIR`` / ``REPRO_WORKERS``
/ ``REPRO_PAIR_TIMEOUT`` and printing the resilience report.

``probes`` runs synthetic deterministic tasks (see
:func:`repro.sweep.tasks._execute_probe`): cheap enough for
hundreds-of-task scheduler exercises, strict enough that any lost,
duplicated, or double-counted task changes the merged digest.

``--chaos-smoke`` is the CI gate: it computes a fault-free serial
reference for a probe sweep, then re-runs the sweep once per scheduler
fault site — worker hangs, exits, crashes, torn checkpoint appends,
lost heartbeats, steal and hedge races, supervisor stalls — and fails
unless every run's merged output is bit-identical to the reference and
hang detection beat the pair timeout by a wide margin.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from repro.common import env, faults
from repro.common.errors import InjectedFault

#: Probe cost knob making one task outlast the liveness grace window
#: (~120 ms vs 0.1 s) — required for a suppressed heartbeat to be
#: *observable*, not merely injected.
SLOW_SPIN = 1_000_000
#: Task count for slow-probe rounds (keeps the serial reference cheap).
SLOW_COUNT = 60

#: Scheduler fault sites exercised by ``--chaos-smoke``: (site, spec,
#: overrides).  Probabilities are tuned so a ~200-probe sweep sees a
#: handful of firings without the wall clock exploding; heartbeat-family
#: sites run fewer, slower probes so tasks outlive the grace window.
CHAOS_SITES = (
    ("worker_hang", "worker_hang:0.02:2", {}),
    ("worker_exit", "worker_exit:0.02:2", {}),
    ("worker_crash", "worker_crash:0.05:4", {}),
    ("scheduler_stall", "scheduler_stall:0.01:2", {}),
    ("steal_race", "steal_race:0.5:4", {}),
    ("checkpoint_torn", "checkpoint_torn:0.05:1", {}),
    ("heartbeat_loss", "heartbeat_loss:0.1:3",
     {"count": SLOW_COUNT, "spin": SLOW_SPIN}),
    ("hedge_race", "hedge_race:0.05:3", {}),
    # The acceptance gate: every scheduler fault site live in ONE sweep.
    ("all-sites", "worker_hang:0.01:1,worker_exit:0.01:1,"
                  "worker_crash:0.03:2,scheduler_stall:0.01:1,"
                  "steal_race:0.2:2,checkpoint_torn:0.03:1,"
                  "heartbeat_loss:0.05:2,hedge_race:0.03:2",
     {"count": SLOW_COUNT, "spin": SLOW_SPIN}),
)

#: Environment pinned during the chaos smoke so hangs resolve in tens of
#: milliseconds instead of the production defaults.
CHAOS_ENV = {
    "REPRO_SWEEP_HEARTBEAT": "0.05",
    "REPRO_HANG_SECONDS": "2.0",
}


def run_probe_sweep(count: int, workers: int, *, spin: int = 200,
                    report=None, journal_path: str | Path | None = None,
                    pair_timeout: float | None = None):
    """Run ``count`` probe tasks through the sweep service.

    Returns ``(results, service)`` where ``results`` maps seed to the
    probe's deterministic value and ``service`` exposes the scheduler's
    internals (``detection_latencies``, ``durations``) for tests.  With
    ``journal_path`` set, completions stream into a crash-consistent
    :class:`~repro.sweep.journal.SweepJournal` and a re-run resumes from
    it — the exact ``run_pairs`` checkpoint discipline.
    """
    from repro.sim.resilience import ResilienceReport
    from repro.sweep.journal import SweepJournal
    from repro.sweep.scheduler import SweepService
    from repro.sweep.tasks import TaskSpec, _execute_probe

    report = report if report is not None else ResilienceReport()
    sweep_key = f"probe-sweep-{count}-{spin}"
    journal = SweepJournal(Path(journal_path), sweep_key) \
        if journal_path is not None else None
    results: dict[int, int] = {}
    if journal is not None:
        for _key, entries in journal.load().items():
            payload = entries[0][1]
            results[payload["seed"]] = payload["value"]
        report.resumed_pairs += len(results)
        report.torn_records += journal.torn_records
        report.fenced_records += journal.fenced_records

    def on_done(task, entries) -> None:
        payload = entries[0][1]
        results[payload["seed"]] = payload["value"]
        if journal is not None:
            journal.append(task.key, [[name, dict(value)]
                                      for name, value in entries])

    def serial(task) -> list:
        entries, _report = _execute_probe({}, task.payload)
        return entries

    def absorb(payload: dict) -> list:
        # Fold the worker's shipped observations (its task span and the
        # flow finish) into the parent collector, so the flushed trace
        # stitches the scheduler's dispatch spans to the workers'.
        from repro.obs import core as obs_core
        from repro.obs import trace as obs_trace
        shipped = payload.get("obs")
        if shipped:
            obs_core.REGISTRY.merge(shipped.get("registry") or {})
            obs_trace.COLLECTOR.absorb(shipped.get("events") or [])
        return payload["entries"]

    service = SweepService(
        tasks=[TaskSpec(key=f"probe/{seed}", kind="probe",
                        payload=dict(seed=seed, spin=spin),
                        shard=str(seed % 8))
               for seed in range(count) if seed not in results],
        runner_spec={},
        report=report,
        on_done=on_done,
        serial_fn=serial,
        on_violation=lambda task, exc: None,    # probes cannot violate
        absorb=absorb,
        workers=workers,
        pair_timeout=pair_timeout,
    )
    service.run()
    return results, service


def merged_digest(results: dict[int, int]) -> str:
    """Order-independent content digest of a probe sweep's merged output."""
    blob = json.dumps(sorted(results.items()), separators=(",", ":"),
                      sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _chaos_round(site, spec, overrides, *, count, workers, pair_timeout,
                 reference_digest):
    """One chaos-smoke round; returns the failed-site list (0 or 1)."""
    site_count = overrides.get("count", count)
    spin = overrides.get("spin", 200)
    want = reference_digest(site_count, spin)
    t0 = time.time()
    faults.reset()
    faults.configure(spec, seed=7)
    detail = ""
    fired = 0
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "sweep.ckpt.jsonl"
        try:
            results, service = run_probe_sweep(
                site_count, workers=workers, spin=spin,
                journal_path=journal_path,
                pair_timeout=pair_timeout)
        except InjectedFault:
            # A torn checkpoint append killed the sweep mid-flight; a
            # fresh incarnation must truncate the torn tail and resume
            # to the identical merge.
            fired += sum(faults.injector().fire_counts().values())
            faults.reset()
            results, service = run_probe_sweep(
                site_count, workers=workers, spin=spin,
                journal_path=journal_path,
                pair_timeout=pair_timeout)
            detail = (f" (resumed past torn tail: "
                      f"{service.report.resumed_pairs} replayed, "
                      f"{service.report.torn_records} truncated)")
    got = merged_digest(results)
    ok = got == want and len(results) == site_count
    # Parent-side firings only: worker-side sites (hangs, exits) show
    # up through the report's repair counters instead.
    fired += sum(faults.injector().fire_counts().values()) \
        if faults.injector() else 0
    repairs = {k: v for k, v in asdict(service.report).items()
               if isinstance(v, int) and v
               and k not in ("resumed_pairs", "torn_records")
               and k not in service.report._INFORMATIONAL}
    if repairs:
        detail += " [" + " ".join(f"{k}={v}" for k, v
                                  in sorted(repairs.items())) + "]"
    if service.detection_latencies:
        worst = max(service.detection_latencies)
        detail += f" (hang detected in {worst:.2f}s" \
                  f" vs {pair_timeout:.0f}s timeout)"
        if worst > pair_timeout / 5:
            ok = False
            detail += " TOO SLOW"
    status = "ok" if ok else "MISMATCH"
    print(f"chaos-smoke: {site:<16} fired x{fired} -> {got} "
          f"{status} [{time.time() - t0:.1f}s]{detail}")
    return [] if ok else [site]


def chaos_smoke(count: int = 220, workers: int = 4) -> int:
    """The CI chaos gate; returns a process exit code.

    Reference first (fault-free, serial), then one sweep per scheduler
    fault site.  Every sweep must merge bit-identical to the reference;
    the ``checkpoint_torn`` sweep must crash on the injected torn append
    and *resume* to the identical result; the ``worker_hang`` sweep must
    detect the hang in a small fraction of the pair timeout.
    """
    failures: list[str] = []
    references: dict[tuple[int, int], str] = {}

    def reference_digest(ref_count: int, spin: int) -> str:
        shape = (ref_count, spin)
        if shape not in references:
            ref, _ = run_probe_sweep(ref_count, workers=1, spin=spin)
            references[shape] = merged_digest(ref)
            print(f"chaos-smoke: reference {ref_count} probes "
                  f"(spin {spin}) -> {references[shape]}")
        return references[shape]

    pair_timeout = 30.0
    try:
        with env.override(CHAOS_ENV):
            faults.reset()
            for site, spec, overrides in CHAOS_SITES:
                failures.extend(_chaos_round(
                    site, spec, overrides, count=count, workers=workers,
                    pair_timeout=pair_timeout,
                    reference_digest=reference_digest))
    finally:
        faults.reset()
    if failures:
        print(f"chaos-smoke: FAILED sites: {', '.join(failures)}")
        return 1
    print(f"chaos-smoke: all {len(CHAOS_SITES)} scheduler fault sites "
          f"recovered bit-identically")
    return 0


def _run_pairs_cmd(opts: dict) -> int:
    from repro.graphs import datasets
    from repro.sim.runner import ExperimentRunner, workers_from_env
    from repro.core.config import HardwareScale

    profile = "bench" if opts["bench"] else "full"
    scale = HardwareScale.bench() if opts["bench"] else HardwareScale()
    runner = ExperimentRunner.from_env(profile=profile, scale=scale)
    pairs = None
    if opts["pairs"]:
        pairs = [tuple(item.split("/", 1)) for item in opts["pairs"]]
        unknown = [p for p in pairs if p not in
                   {tuple(q) for q in datasets.WORKLOAD_PAIRS}]
        if unknown:
            raise SystemExit(f"unknown pair(s): {unknown}; see "
                             f"'python -m repro list'")
    workers = opts["workers"] or workers_from_env()
    out = runner.run_pairs(pairs=pairs, config_names=opts["configs"],
                           workers=workers)
    print(f"sweep: {len(out)} (workload, dataset, config) results "
          f"with {workers} worker(s)")
    print(runner.resilience.render())
    return 0


def _run_probes_cmd(opts: dict) -> int:
    from repro.sim.runner import workers_from_env

    workers = opts["workers"] or workers_from_env()
    t0 = time.time()
    results, service = run_probe_sweep(opts["count"], workers=workers,
                                       spin=opts["spin"])
    print(f"sweep: {len(results)} probes x {workers} worker(s) -> "
          f"{merged_digest(results)} [{time.time() - t0:.1f}s]")
    print(service.report.render())
    return 0


def main(argv: list[str]) -> int:
    """Entry point for ``python -m repro sweep``."""
    opts = {"mode": None, "count": 220, "spin": 200, "workers": None,
            "bench": False, "pairs": None, "configs": None}
    i = 0
    while i < len(argv):
        a = argv[i]
        if a in ("pairs", "probes"):
            opts["mode"] = a
        elif a == "--chaos-smoke":
            opts["mode"] = "chaos-smoke"
        elif a == "--bench":
            opts["bench"] = True
        elif a in ("--count", "--spin", "--workers", "--pairs",
                   "--configs"):
            if i + 1 >= len(argv):
                raise SystemExit(f"{a} needs a value")
            v = argv[i + 1]
            i += 1
            if a == "--count":
                opts["count"] = max(int(v), 1)
            elif a == "--spin":
                opts["spin"] = max(int(v), 0)
            elif a == "--workers":
                opts["workers"] = max(int(v), 1)
            elif a == "--pairs":
                opts["pairs"] = v.split(",")
            else:
                opts["configs"] = v.split(",")
        elif a in ("help", "-h", "--help"):
            print(__doc__)
            return 0
        else:
            raise SystemExit(f"unknown sweep option {a!r} "
                             f"(see docs/sweep.md)")
        i += 1
    if opts["mode"] == "chaos-smoke":
        workers = opts["workers"] or 4
        return chaos_smoke(opts["count"], workers=workers)
    if opts["mode"] == "pairs":
        return _run_pairs_cmd(opts)
    if opts["mode"] in (None, "probes"):
        return _run_probes_cmd(opts)
    raise SystemExit(f"unknown sweep mode {opts['mode']!r}")
