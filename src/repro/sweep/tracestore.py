"""Zero-copy symbolic-trace sharing for pool workers.

The functional half of a run — executing a workload on the accelerator
model — produces a :class:`~repro.accel.trace.SymbolicTrace` of three
numpy columns that every timing configuration then consumes.  PR 1
cached it as compressed ``.npz``, which is the right *archival* format
but the wrong *sharing* format: every pool worker that loads it inflates
a private copy of all three columns, so an N-worker sweep holds N copies
of a multi-million-access trace in anonymous memory.

This store publishes the same trace as a directory of raw uncompressed
``.npy`` files::

    trace-<key>.mm/
        streams.npy      offsets.npy      writes.npy
        streams.npy.sha256   ...                      (integrity sidecars)

Workers open the columns with ``np.load(..., mmap_mode="r")``: the pages
are file-backed and read-only, so all workers on a host share one
physical copy under the page cache, exactly like the paper's shared
page-cache argument for devirtualized buffers — zero-copy across the
pool, and the columns never materialize at all for accesses the timing
model skips.  The mapped arrays are read-only; code that tried to
mutate a shared trace would fault immediately rather than corrupt a
neighbor's run.

Integrity follows the repo's sidecar discipline: each column is hashed,
publication is tmp + ``os.replace`` per file with a final ``.ok`` marker
making the directory's completeness atomic, and any mismatch quarantines
the whole directory for recomputation.  The ``.npz`` remains the
portable fallback (``REPRO_SWEEP_MEMMAP=0`` disables the memmap tier).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.accel.trace import SymbolicTrace
from repro.common import integrity
from repro.common.errors import CacheIntegrityError

#: The three trace columns, in canonical order.
COLUMNS = ("streams", "offsets", "writes")

#: Completeness marker: the last file published, so a directory with it
#: present is guaranteed to contain every column and sidecar.
OK_MARKER = "complete.ok"


def publish(path: Path, trace: SymbolicTrace) -> None:
    """Publish ``trace`` as a memmappable column directory at ``path``.

    Safe against concurrent publishers (per-file tmp + rename) and
    against crashes (a directory without its ``.ok`` marker is treated
    as absent and republished).
    """
    path.mkdir(parents=True, exist_ok=True)
    for name in COLUMNS:
        column = np.ascontiguousarray(getattr(trace, name))
        target = path / f"{name}.npy"
        tmp = integrity.tmp_path(target, suffix=".npy")
        with open(tmp, "wb") as handle:
            np.save(handle, column)
        integrity.write_sidecar(target, content_of=tmp)
        os.replace(tmp, target)
    marker = path / OK_MARKER
    tmp = integrity.tmp_path(marker)
    tmp.write_text("ok\n")
    os.replace(tmp, marker)


def is_published(path: Path) -> bool:
    """Whether a complete column directory exists at ``path``."""
    return (path / OK_MARKER).exists()


def open_trace(path: Path, *, verify: bool = True) -> SymbolicTrace:
    """Open a published trace with memory-mapped, read-only columns.

    Raises :class:`CacheIntegrityError` for an incomplete directory, a
    missing column, a sidecar mismatch, or an undecodable file — the
    caller quarantines and falls back to recomputation (or the ``.npz``
    tier), never crashes.
    """
    if not is_published(path):
        raise CacheIntegrityError(f"incomplete trace store {path}")
    columns = {}
    for name in COLUMNS:
        target = path / f"{name}.npy"
        if verify:
            integrity.verify_sidecar(target)
        try:
            columns[name] = np.load(target, mmap_mode="r")
        except (OSError, ValueError, EOFError) as exc:
            raise CacheIntegrityError(
                f"undecodable trace column {target}: {exc}") from exc
    lengths = {len(columns[name]) for name in COLUMNS}
    if len(lengths) != 1:
        raise CacheIntegrityError(
            f"trace store {path} has ragged columns {sorted(lengths)}")
    return SymbolicTrace(**columns)
