"""Sweep task model: what a unit of work is and how a worker runs one.

The sweep service schedules opaque :class:`TaskSpec` units; what a task
*means* is delegated to a small executor registry so every matrix the
repo runs — figure pairs, the fault-model ablation, nightly fuzz seed
shards, the chaos-smoke synthetic probes — flows through one scheduler,
one cache, one journal, and one resilience report:

``pair``
    one (workload, dataset) pair across a set of configurations — the
    classic ``run_pairs`` unit.  Entries are
    ``[(config_name, metrics_dict), ...]``.
``fuzz``
    one generated-scenario seed checked by the differential oracle
    (:mod:`repro.gen.oracle`).  Entries are a single
    ``[("fuzz", verdict_dict)]`` row.
``probe``
    a tiny deterministic self-test unit used by the chaos tests and the
    CI chaos-smoke sweep: cheap enough to run hundreds of, heavy enough
    to exercise every scheduler path.

Workers are long-lived processes (one per scheduler slot) running
:func:`_sweep_worker_main`: pull a task, re-key fault injection for the
attempt, reset observability, execute, ship
``{"key", "attempt", "entries"|"error", "report", "obs"}`` back on the
slot's private result queue.  Chaos hooks for ``worker_exit`` /
``worker_hang`` / ``worker_crash`` / ``heartbeat_loss`` live at the top
of the task loop, exactly where the pool-based ``_pair_worker`` had
them, so the existing chaos suites keep their semantics.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import asdict, dataclass, field

from repro.common import env, faults
from repro.obs import core as obs_core
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace
from repro import obs
from repro.common.errors import (PageFault, ProtectionFault, TransientError,
                                 WorkerCrashError)


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of sweep work.

    ``key`` is the task's identity for journaling, dedup and resume
    (``workload/dataset`` for pairs, ``fuzz/seed<N>`` for fuzz seeds);
    ``shard`` is a locality hint — tasks sharing a shard are assigned to
    the same worker's deque so its memmapped traces and graph surrogates
    stay warm (a stolen task merely loses the warmth, never the result).
    """

    key: str
    kind: str
    payload: dict = field(default_factory=dict)
    shard: str = ""


# -- executors ----------------------------------------------------------------
#
# Each executor maps (runner_spec, payload) -> (entries, report): the
# journal entries the parent merges, plus the worker-side resilience
# counters (cache hits/misses, quarantines, perturbation reruns, ...)
# accumulated while computing them.

def _execute_pair(runner_spec: dict, payload: dict) -> tuple[list, dict]:
    """Run one pair's configurations; returns journal entries."""
    from repro.sim.runner import ExperimentRunner
    runner = ExperimentRunner(**runner_spec)
    configs = runner.configs()
    selected = {name: configs[name] for name in payload["config_names"]}
    entries = runner._run_pair_serial(
        (payload["workload"], payload["dataset"]), selected)
    report = {key: value
              for key, value in asdict(runner.resilience).items()
              if isinstance(value, int) and value}
    return entries, report


def _execute_fuzz(runner_spec: dict, payload: dict) -> tuple[list, dict]:
    """Check one generated scenario seed against the oracle."""
    from repro.gen.oracle import check_scenario, scenario_from_seed
    seed = payload["seed"]
    names = tuple(payload["config_names"]) \
        if payload.get("config_names") else None
    with obs_trace.span("fuzz.scenario", cat="fuzz", seed=seed):
        result = check_scenario(scenario_from_seed(seed), configs=names)
    return [["fuzz", {"seed": seed, "ok": result.ok,
                      "accesses": result.accesses,
                      "mismatches": list(result.mismatches)}]], {}


def _execute_probe(runner_spec: dict, payload: dict) -> tuple[list, dict]:
    """A deterministic synthetic unit for chaos/scale tests.

    Computes a pure function of the probe's seed (a seeded LCG mixing
    loop) so a 200-task sweep costs milliseconds yet any lost,
    duplicated, reordered, or double-counted task changes the merged
    output.  ``spin`` adds bounded busy work to give the supervisor
    realistic in-flight durations to hedge against.
    """
    seed = int(payload.get("seed", 0))
    spin = int(payload.get("spin", 0))
    value = (seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
    for _ in range(1000 + spin):
        value = (value * 6364136223846793005 + 1442695040888963407) \
            & 0xFFFFFFFFFFFFFFFF
    return [["probe", {"seed": seed, "value": value}]], {}


#: kind -> executor(runner_spec, payload) -> journal entries.
EXECUTORS = {
    "pair": _execute_pair,
    "fuzz": _execute_fuzz,
    "probe": _execute_probe,
}


# -- worker process entry -----------------------------------------------------

def _sweep_worker_main(slot: int, task_q, result_q, beats,
                       heartbeat_interval: float, runner_spec: dict,
                       fault_spec: str | None, fault_seed: int) -> None:
    """Long-lived sweep worker: pull tasks, execute, ship results.

    The fault spec is configured explicitly from shipped arguments (not
    inherited fork state) so spawn-style contexts and chaos determinism
    agree; each task then re-keys the injector with its
    ``key#a<attempt>`` scope exactly like the pool-based worker did, so
    fault patterns are a pure function of (seed, task, attempt), never
    of which worker slot the task landed in.

    Every task ships its own observability payload and worker-side
    resilience counters back with its result; state is reset per task so
    nothing is double-shipped.  The worker exits on a ``None`` sentinel
    or a closed task queue.
    """
    # A fork-context worker inherits the parent's whole heap; a gen-2
    # collection here would traverse millions of inherited objects with
    # the GIL held — a multi-hundred-ms pause that starves the Pulse
    # thread and reads, from the supervisor's side, exactly like a hang.
    # Freezing moves the inherited heap to the permanent generation, so
    # worker collections only ever walk worker-allocated objects (and
    # copy-on-write pages stay shared instead of being dirtied by
    # refcount/GC-header writes during traversal).
    gc.freeze()
    faults.reset()
    faults.configure(fault_spec, fault_seed)
    pulse = obs_progress.Pulse(beats, slot, heartbeat_interval).start()
    while True:
        try:
            task = task_q.get(timeout=60.0)
        # Queue closed / timeout: the parent is gone; exit quietly.
        # dvmlint: disable=FAULT002
        except Exception:
            break
        if task is None:
            break
        key, kind, payload, attempt = task
        pulse.resume()
        faults.configure(fault_spec, fault_seed)
        faults.rescope(f"{key}#a{attempt}")
        obs_core.refresh_from_env()
        obs.reset()
        result = {"key": key, "attempt": attempt}
        try:
            if faults.should_fire("worker_exit"):
                os._exit(13)    # simulate a hard worker death
            if faults.should_fire("worker_hang"):
                # A frozen worker beats no heartbeat; the supervisor
                # must detect the stale slot and kill this process long
                # before the pair wall-clock budget expires.
                pulse.suppress()
                time.sleep(env.floating("REPRO_HANG_SECONDS", 30.0))
                pulse.resume()
            if faults.should_fire("heartbeat_loss"):
                # Telemetry dies but the work continues: the supervisor
                # will kill and requeue, possibly racing this task's own
                # completion — content-key dedup keeps exactly one.
                pulse.suppress()
            faults.maybe_raise(
                "worker_crash",
                lambda: WorkerCrashError(f"injected worker crash on {key}"))
            # The worker half of the stitched cross-process trace: the
            # flow *finish* binds to this task span, and its id matches
            # the flow start the scheduler emits for the same
            # ``key#a<attempt>`` dispatch — Perfetto draws the arrow.
            with obs_trace.span("task", cat="sched", key=key,
                                attempt=attempt):
                obs_trace.flow("f", "task-flow", "sched",
                               obs_trace.flow_id(f"{key}#a{attempt}"))
                entries, report = EXECUTORS[kind](runner_spec, payload)
            result["entries"] = entries
            result["report"] = report
        except (PageFault, ProtectionFault) as exc:
            result["error"] = exc           # picklable via __reduce__
        except TransientError as exc:
            result["error"] = exc
        # Worker entries ship failures back to the supervisor instead of
        # dying with an unclassified traceback (ship, don't die).
        # dvmlint: disable=FAULT002
        except BaseException as exc:        # noqa: BLE001
            result["error"] = WorkerCrashError(
                f"worker failed on {key}: {exc!r}")
        if obs_core.ENABLED:
            result["obs"] = {"registry": obs_core.REGISTRY.to_dict(),
                             "events": obs_trace.COLLECTOR.drain()}
        try:
            result_q.put(result)
        # The parent tore the queue down mid-ship; nothing to report to.
        # dvmlint: disable=FAULT002
        except Exception:
            break
    pulse.stop()
