"""Weighted access-stream generation.

Streams are generated *abstractly* — (region index, byte offset, is
write) triples — and concretized against a realization's per-config
virtual addresses, so one generated stream drives every configuration
even though identity and demand mappings place regions differently.

Burst patterns are weighted toward the shapes that stress the timing
fastpath's page-run machinery: sequential walks (long same-page runs),
page-boundary hoppers (runs of length one), strided scans that straddle
analog-huge-page boundaries, hot sets that pin TLB/AVC entries, and
uniform sprays that overflow them.  Writes are confined to writable
regions — a benign stream must never violate, so the differential
oracle can attribute every violation to the scenario's explicit
:class:`~repro.gen.perms.ViolationPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.consts import PAGE_SIZE
from repro.gen.perms import (GAP_PROBE_BASE, GAP_PROBE_REGION,
                             ViolationPlan, readable, writable)
from repro.gen.layout import LayoutPlan

#: Burst pattern palette and weights.
_PATTERNS = ("sequential", "strided", "random", "boundary", "hotset")
_PATTERN_WEIGHTS = (0.3, 0.2, 0.2, 0.15, 0.15)

#: Strides (bytes) for the strided pattern: cache-line-ish hops, page
#: hops, and analog-2M hops that land on page-run boundaries.
_STRIDES = (16, 64, 256, PAGE_SIZE, 16 * 1024)


@dataclass(frozen=True)
class StreamPlan:
    """One abstract access stream over a layout's regions."""

    region: np.ndarray      # int16, GAP_PROBE_REGION for gap probes
    offset: np.ndarray      # int64 byte offset within the region
    write: np.ndarray       # int8

    def __len__(self) -> int:
        return int(self.region.size)


def _burst(rng: np.random.Generator, size: int, length: int) -> np.ndarray:
    """One burst of offsets inside a region of ``size`` bytes."""
    pattern = _PATTERNS[int(rng.choice(len(_PATTERNS),
                                       p=_PATTERN_WEIGHTS))]
    top = max(size // 8, 1)
    if pattern == "sequential":
        start = int(rng.integers(0, top))
        offs = (start + np.arange(length)) % top * 8
    elif pattern == "strided":
        stride = int(_STRIDES[int(rng.integers(0, len(_STRIDES)))])
        start = int(rng.integers(0, top)) * 8
        offs = (start + np.arange(length) * stride) % size
        offs &= ~np.int64(7)
    elif pattern == "boundary":
        # Hop across page boundaries: offsets within ±2 words of a page
        # edge, producing page runs of length one either side.
        pages = max(size // PAGE_SIZE, 1)
        edge = rng.integers(0, pages, length) * PAGE_SIZE
        jitter = rng.integers(-2, 3, length) * 8
        offs = np.clip(edge + jitter, 0, size - 8)
    elif pattern == "hotset":
        hot = rng.integers(0, top, max(int(rng.integers(2, 9)), 2)) * 8
        offs = hot[rng.integers(0, hot.size, length)]
    else:  # random spray
        offs = rng.integers(0, top, length) * 8
    return offs.astype(np.int64)


def gen_stream(rng: np.random.Generator, plan: LayoutPlan,
               violation: ViolationPlan | None,
               write_frac: float = 0.3) -> StreamPlan:
    """Generate one access stream for ``plan``, weaving in ``violation``."""
    benign = [i for i, r in enumerate(plan.regions)
              if readable(r.perm) and i != plan.unmap_region]
    sizes = [r.pages * PAGE_SIZE for r in plan.regions]
    weights = np.array([sizes[i] for i in benign], dtype=np.float64)
    weights /= weights.sum()
    total = int(rng.integers(96, 769))
    regions: list[np.ndarray] = []
    offsets: list[np.ndarray] = []
    writes: list[np.ndarray] = []
    produced = 0
    while produced < total:
        target = benign[int(rng.choice(len(benign), p=weights))]
        length = min(int(rng.integers(16, 97)), total - produced)
        offs = _burst(rng, sizes[target], length)
        regions.append(np.full(length, target, dtype=np.int16))
        offsets.append(offs)
        frac = write_frac if writable(plan.regions[target].perm) else 0.0
        writes.append((rng.random(length) < frac).astype(np.int8))
        produced += length
    stream = StreamPlan(region=np.concatenate(regions),
                        offset=np.concatenate(offsets),
                        write=np.concatenate(writes))
    if violation is not None:
        stream = inject_violation(stream, violation, sizes)
    return stream


def inject_violation(stream: StreamPlan, violation: ViolationPlan,
                     sizes: list[int]) -> StreamPlan:
    """Retarget one access at the planned violation."""
    k = int(violation.frac * (len(stream) - 1))
    region = np.array(stream.region, copy=True)
    offset = np.array(stream.offset, copy=True)
    write = np.array(stream.write, copy=True)
    region[k] = violation.region
    if violation.region == GAP_PROBE_REGION:
        offset[k] = violation.offset
    else:
        offset[k] = min(violation.offset,
                        max(sizes[violation.region] - 8, 0))
    write[k] = 1 if violation.write else 0
    return StreamPlan(region=region, offset=offset, write=write)


def concretize_stream(stream: StreamPlan, region_vas: list[int]
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Bind an abstract stream to one realization's region addresses."""
    vas = np.asarray(region_vas, dtype=np.int64)
    probe = stream.region == GAP_PROBE_REGION
    base = np.where(probe, np.int64(GAP_PROBE_BASE),
                    vas[np.where(probe, 0, stream.region)])
    addrs = base + stream.offset
    return addrs, np.array(stream.write, copy=True)
