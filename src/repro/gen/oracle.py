"""Differential oracle: generated scenarios vs the scalar ground truth.

For one :class:`Scenario`, :func:`check_scenario` realizes every MMU
configuration twice, runs the access stream through the scalar loops on
one twin and the vectorized fastpath on the other, and asserts:

(a) **identical permission/violation outcomes** — same
    :class:`~repro.common.errors.AccessViolation` (index, va, access,
    kind) or same clean completion, engine for engine, plus a
    cross-configuration check that every protection-checking config
    refuses the same access;
(b) **bit-identical timing** — ``asdict(TimingStats)`` equality
    (energy events included), fault-machinery counters, and hardware
    structure state;
(c) **fault-accounting invariants** — faults serviced by the handler
    equal the faults the layout injected (an independent pure model of
    the kernel's paging semantics predicts major/swap counts), the
    fault queue drains, and no spurious services appear.

A failing scenario shrinks (:func:`shrink`) by delta-debugging the
access stream and simplifying the layout, and is reported with a
one-line ``python -m repro fuzz --repro <seed>`` command.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.common.consts import PAGE_SHIFT, PAGE_SIZE
from repro.common.errors import AccessViolation
from repro.common.perms import Perm, allows
from repro.core.config import scenario_configs
from repro.gen import seeds
from repro.gen.layout import LayoutPlan, RegionSpec, gen_layout, realize
from repro.gen.perms import ViolationPlan, gen_violation
from repro.gen.streams import StreamPlan, concretize_stream, gen_stream
from repro.obs import core as obs_core

#: Base configuration names every scenario is checked under.
CONFIG_NAMES = ("conv_4k", "conv_2m", "conv_1g", "dvm_bm", "dvm_pe",
                "dvm_pe_plus", "ideal")


@dataclass(frozen=True)
class Scenario:
    """One generated scenario: layout + stream + planned violation."""

    seed: int
    plan: LayoutPlan
    stream: StreamPlan
    violation: ViolationPlan | None


def scenario_from_seed(seed: int) -> Scenario:
    """Generate the scenario for ``seed``.

    Layout, violation and stream generation draw from independent
    per-purpose RNG streams (:mod:`repro.gen.seeds`), so extending one
    generator never perturbs the others for existing seeds.
    """
    plan = gen_layout(seeds.rng_for(seed, "layout"))
    sizes = [r.pages * PAGE_SIZE for r in plan.regions]
    violation = gen_violation(seeds.rng_for(seed, "violation"),
                              [r.perm for r in plan.regions], sizes,
                              plan.unmap_region)
    stream = gen_stream(seeds.rng_for(seed, "stream"), plan, violation)
    return Scenario(seed=int(seed), plan=plan, stream=stream,
                    violation=violation)


# -- serialization (quarantined artifacts) --------------------------------


def scenario_to_dict(s: Scenario) -> dict:
    """JSON-serializable form of a scenario (shrunk ones included)."""
    plan = asdict(s.plan)
    plan["regions"] = [[r.pages, int(r.perm)] for r in s.plan.regions]
    return {
        "seed": s.seed,
        "plan": plan,
        "violation": None if s.violation is None else asdict(s.violation),
        "stream": {"region": s.stream.region.tolist(),
                   "offset": s.stream.offset.tolist(),
                   "write": s.stream.write.tolist()},
    }


def scenario_from_dict(d: dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    plan_d = dict(d["plan"])
    plan_d["regions"] = tuple(RegionSpec(pages=p, perm=Perm(perm))
                              for p, perm in plan_d["regions"])
    violation = (None if d["violation"] is None
                 else ViolationPlan(**d["violation"]))
    stream = StreamPlan(
        region=np.array(d["stream"]["region"], dtype=np.int16),
        offset=np.array(d["stream"]["offset"], dtype=np.int64),
        write=np.array(d["stream"]["write"], dtype=np.int8))
    return Scenario(seed=int(d["seed"]), plan=LayoutPlan(**plan_d),
                    stream=stream, violation=violation)


# -- reference model -------------------------------------------------------


@dataclass(frozen=True)
class Expected:
    """Outcome predicted by the pure paging-semantics model."""

    violation_index: int | None
    major: int
    swap: int
    checked: bool       # False for the ideal config (no protection)


def reference_outcome(realized, addrs: np.ndarray,
                      writes: np.ndarray) -> Expected:
    """Predict a run's outcome from kernel state alone.

    An independent re-statement of ``kernel/fault.py`` semantics over
    the *pre-run* page table: walk each first-touched page, simulate
    chunk population for demand allocations and per-page swap-in for
    reclaimed pages, and apply the 2-bit permission check — no IOMMU
    structures involved, so agreement is meaningful.
    """
    cfg = realized.config
    if cfg.mech == "ideal":
        return Expected(None, 0, 0, checked=False)
    page_table = realized.process.page_table
    vmm = realized.process.vmm
    reclaimer = realized.kernel.reclaimer
    demand_faulting = cfg.policy.demand_faulting
    chunk_size = cfg.policy.page_size
    known: dict[int, Perm | None] = {}      # page -> perm (None: unmapped)
    major = swap = 0
    for i, (va, w) in enumerate(zip(addrs.tolist(), writes.tolist())):
        access = "w" if w else "r"
        page = va >> PAGE_SHIFT
        if page in known:
            perm = known[page]
            if perm is None or not allows(perm, access):
                return Expected(i, major, swap, checked=True)
            continue
        result = page_table.walk(va)
        if result.ok:
            known[page] = result.perm
            if not allows(result.perm, access):
                return Expected(i, major, swap, checked=True)
            continue
        if result.swapped:
            if reclaimer is None or not allows(result.perm, access):
                return Expected(i, major, swap, checked=True)
            swap += 1                        # swap-in heals one 4 KB page
            known[page] = result.perm
            continue
        alloc = vmm.allocation_at(va)
        if alloc is None or alloc.identity or not demand_faulting:
            known[page] = None
            return Expected(i, major, swap, checked=True)
        # Mirror VMM.populate_for_fault's chunk extent exactly.
        chunk_start = max(va & ~(chunk_size - 1), alloc.va)
        chunk = min(chunk_size, alloc.va + alloc.size - chunk_start)
        if chunk_start % chunk_size or chunk < chunk_size:
            chunk = PAGE_SIZE
            chunk_start = va & ~(PAGE_SIZE - 1)
        perm = alloc.vma.perm
        for healed in range(chunk_start >> PAGE_SHIFT,
                            (chunk_start + chunk) >> PAGE_SHIFT):
            known[healed] = perm
        if not allows(perm, access):
            # The handler populates, re-walks, then refuses: a violation,
            # not a counted major fault.
            return Expected(i, major, swap, checked=True)
        major += 1
    return Expected(None, major, swap, checked=True)


# -- differential check ----------------------------------------------------


@dataclass
class SelfTestCorruption:
    """Deterministic fast-engine corruption for oracle self-tests.

    Bumps one counter on the fast twin's stats for clean runs of
    ``config`` with at least ``threshold`` accesses — so the oracle
    must both *catch* it and *shrink* the stream down to the threshold.
    """

    config: str = "conv_4k"
    threshold: int = 32

    def apply(self, name: str, stats, n_accesses: int) -> None:
        """Corrupt ``stats`` in place when the trigger condition holds."""
        if (name == self.config and stats is not None
                and n_accesses >= self.threshold):
            stats.sram_stall_cycles += 1


@dataclass
class ScenarioResult:
    """Verdict for one scenario across all checked configurations."""

    seed: int
    configs: tuple[str, ...]
    accesses: int
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every configuration passed every check."""
        return not self.mismatches


def _structure_counters(iommu) -> dict:
    """Observable hit/miss/walk/DRAM counters of the MMU structures."""
    s: dict = {}
    if iommu.tlb is not None:
        s["tlb"] = (iommu.tlb.stats.hits, iommu.tlb.stats.misses)
    if iommu.walker is not None:
        s["wc"] = (iommu.walker.cache.stats.hits,
                   iommu.walker.cache.stats.misses)
        s["walks"] = iommu.walker.walks
    if iommu.perm_bitmap is not None:
        s["bm"] = (iommu.perm_bitmap.cache.stats.hits,
                   iommu.perm_bitmap.cache.stats.misses)
    s["dram"] = asdict(iommu.dram.stats)
    return s


def _structure_contents(iommu) -> dict:
    """Full contents of the MMU structures (clean runs only)."""
    s: dict = {}
    if iommu.tlb is not None:
        s["tlb"] = [list(d.items()) for d in iommu.tlb._sets]
    if iommu.walker is not None:
        s["wc"] = [list(d.items()) for d in iommu.walker.cache._sets]
    if iommu.perm_bitmap is not None:
        s["bm"] = [list(d.items()) for d in iommu.perm_bitmap.cache._sets]
    return s


def _fault_state(realized) -> dict:
    return {"queue": vars(realized.queue.stats).copy(),
            "pending": realized.queue.pending(),
            "handler": vars(realized.handler.stats).copy()}


def _run_one(realized, addrs, writes, engine):
    stats = exc = None
    try:
        stats = realized.iommu.run_trace(addrs, writes, engine=engine)
    except AccessViolation as e:
        exc = (e.record.index, e.record.va, e.record.access, e.record.kind)
    return stats, exc


def _observable(stats, exc, realized) -> dict:
    obs = {"stats": None if stats is None else asdict(stats),
           "exc": exc,
           "fault": _fault_state(realized),
           "counters": _structure_counters(realized.iommu)}
    if exc is None:
        # Aborted runs legitimately leave different in-flight dict
        # contents (see the hand-written equivalence suite); clean runs
        # must match structure for structure.
        obs["contents"] = _structure_contents(realized.iommu)
    return obs


def _diff_keys(a: dict, b: dict) -> str:
    keys = [k for k in a if a.get(k) != b.get(k)]
    return ",".join(keys) or "?"


def check_scenario(scenario: Scenario,
                   configs: tuple[str, ...] | None = None,
                   corrupt: SelfTestCorruption | None = None,
                   ) -> ScenarioResult:
    """Differentially check one scenario; returns the verdict."""
    plan = scenario.plan
    names = configs or CONFIG_NAMES
    result = ScenarioResult(seed=scenario.seed, configs=tuple(names),
                            accesses=len(scenario.stream))
    config_set = scenario_configs(plan.scale, demand=plan.demand,
                                  names=tuple(names))
    mism = result.mismatches
    violations: dict[str, tuple | None] = {}
    for name, cfg in config_set.items():
        try:
            scalar = realize(plan, cfg)
            fast = realize(plan, cfg)
            if scalar.region_vas != fast.region_vas:
                mism.append(f"{name}: non-deterministic realization: "
                            f"{scalar.region_vas} != {fast.region_vas}")
                continue
            addrs, writes = concretize_stream(scenario.stream,
                                              scalar.region_vas)
            expected = reference_outcome(scalar, addrs, writes)
            s_stats, s_exc = _run_one(scalar, addrs, writes, "scalar")
            f_stats, f_exc = _run_one(fast, addrs, writes, "fast")
        except Exception as e:  # noqa: BLE001  # dvmlint: disable=FAULT002
            # Deliberately broad: the oracle's job is to *report* any
            # escape — taxonomy errors included — as a finding, never to
            # crash the fuzz sweep.
            mism.append(f"{name}: crashed: {type(e).__name__}: {e}")
            continue
        if corrupt is not None:
            corrupt.apply(name, f_stats, len(addrs))
        s_obs = _observable(s_stats, s_exc, scalar)
        f_obs = _observable(f_stats, f_exc, fast)
        if s_obs != f_obs:
            mism.append(f"{name}: scalar/fast divergence in "
                        f"{_diff_keys(s_obs, f_obs)}")
        # (a) permission/violation outcome vs the reference model.  The
        # scalar loops leave record.index at -1 (position unknown), so
        # violations are matched by (va, access): the model names the
        # refusing access, and the raised record must carry its address.
        if not expected.checked:
            if s_exc is not None:
                mism.append(f"{name}: ideal config raised {s_exc}")
        else:
            idx = expected.violation_index
            violations[name] = (None if s_exc is None
                                else (idx, s_exc[2]))
            if (s_exc is None) != (idx is None):
                mism.append(f"{name}: violation {s_exc}, model predicts "
                            f"index {idx}")
            elif s_exc is not None:
                want = (int(addrs[idx]), "w" if writes[idx] else "r")
                if (s_exc[1], s_exc[2]) != want:
                    mism.append(f"{name}: violation at va "
                                f"{s_exc[1]:#x}/{s_exc[2]}, model predicts "
                                f"{want[0]:#x}/{want[1]} (index {idx})")
            if (scenario.violation is not None) != (expected.violation_index
                                                   is not None):
                mism.append(f"{name}: planned violation "
                            f"{scenario.violation} but model predicts "
                            f"index {expected.violation_index}")
        # (c) fault-accounting invariants (clean, checked runs).
        if expected.checked and s_exc is None and s_stats is not None:
            fstate = _fault_state(scalar)
            checks = {
                "major_faults==model": (s_stats.major_faults, expected.major),
                "swap_faults==model": (s_stats.swap_faults, expected.swap),
                "faults==queue.serviced": (s_stats.faults,
                                           fstate["queue"]["serviced"]),
                "queue drained": (fstate["pending"], 0),
                "handler.major==stats": (fstate["handler"]["major"],
                                         s_stats.major_faults),
                "handler.swap==stats": (fstate["handler"]["swap"],
                                        s_stats.swap_faults),
                "no spurious services": (fstate["handler"]["spurious"], 0),
                "fault energy==faults": (
                    s_stats.energy.events.get("fault_service", 0),
                    s_stats.faults),
            }
            for what, (got, want) in checks.items():
                if got != want:
                    mism.append(f"{name}: {what} failed: {got} != {want}")
    distinct = set(violations.values())
    if len(distinct) > 1:
        mism.append(f"violation outcome differs across configs: {violations}")
    if obs_core.ENABLED:
        obs_core.REGISTRY.counter("fuzz.scenarios").inc()
        if mism:
            obs_core.REGISTRY.counter("fuzz.mismatches").inc()
    return result


# -- shrinking -------------------------------------------------------------


def _subset_stream(stream: StreamPlan, idx: np.ndarray) -> StreamPlan:
    return StreamPlan(region=stream.region[idx], offset=stream.offset[idx],
                      write=stream.write[idx])


def _shrink_stream(scenario, failing, budget) -> Scenario:
    """ddmin over the access stream: remove chunks while still failing."""
    chunk = max(len(scenario.stream) // 2, 1)
    while chunk >= 1 and budget.left > 0:
        i = 0
        while i < len(scenario.stream) and budget.left > 0:
            n = len(scenario.stream)
            keep = np.concatenate([np.arange(0, i),
                                   np.arange(min(i + chunk, n), n)])
            if keep.size == 0:
                i += chunk
                continue
            candidate = replace(scenario,
                                stream=_subset_stream(scenario.stream, keep))
            budget.left -= 1
            if failing(candidate):
                scenario = candidate
            else:
                i += chunk
        chunk //= 2
    return scenario


def _drop_region(scenario: Scenario, index: int) -> Scenario:
    """Remove one region, remapping stream/violation/unmap indices."""
    plan = scenario.plan
    regions = tuple(r for i, r in enumerate(plan.regions) if i != index)
    unmap = plan.unmap_region
    if unmap is not None and unmap > index:
        unmap -= 1
    new_plan = replace(plan, regions=regions, unmap_region=unmap)
    region = np.array(scenario.stream.region, copy=True)
    region[region > index] -= 1
    stream = replace(scenario.stream, region=region)
    violation = scenario.violation
    if violation is not None and violation.region > index:
        violation = replace(violation, region=violation.region - 1)
    return replace(scenario, plan=new_plan, stream=stream,
                   violation=violation)


def _layout_candidates(scenario: Scenario):
    plan = scenario.plan
    if plan.pressure != "none":
        yield replace(scenario, plan=replace(plan, pressure="none"))
    if plan.demand:
        yield replace(scenario, plan=replace(plan, demand=False))
    if plan.scale != "default":
        yield replace(scenario, plan=replace(plan, scale="default"))
    used = set(np.unique(scenario.stream.region).tolist())
    if scenario.violation is not None:
        used.add(scenario.violation.region)
    if plan.unmap_region is not None and plan.unmap_region not in used:
        yield replace(scenario, plan=replace(plan, unmap_region=None))
    if len(plan.regions) > 1:
        for i in reversed(range(len(plan.regions))):
            if i not in used and plan.unmap_region != i:
                yield _drop_region(scenario, i)


@dataclass
class _Budget:
    left: int


def shrink(scenario: Scenario, failing, max_evals: int = 80,
           ) -> tuple[Scenario, int]:
    """Minimize a failing scenario; returns (smaller scenario, evals).

    ``failing(candidate)`` must return True while the candidate still
    reproduces the mismatch.  Stream ddmin runs before and after the
    layout-simplification passes, all under one evaluation budget.
    """
    budget = _Budget(left=max_evals)
    scenario = _shrink_stream(scenario, failing, budget)
    progress = True
    while progress and budget.left > 0:
        progress = False
        for candidate in _layout_candidates(scenario):
            if budget.left <= 0:
                break
            budget.left -= 1
            if failing(candidate):
                scenario = candidate
                progress = True
                break
    scenario = _shrink_stream(scenario, failing, budget)
    return scenario, max_evals - budget.left


def repro_command(seed: int, self_test: bool = False) -> str:
    """The one-line command reproducing a mismatch for ``seed``."""
    extra = " --self-test" if self_test else ""
    return f"PYTHONPATH=src python -m repro fuzz --repro {seed}{extra}"
