"""Seed discipline for the scenario generator.

This module is the **only** place in :mod:`repro.gen` that turns a
scenario seed into RNG state (dvmlint GEN001 enforces it): every
generator function *receives* a ``numpy.random.Generator`` — none
constructs one.  Purpose strings partition one seed into independent,
stable streams, so adding draws to (say) the layout generator never
shifts the stream generator's values for the same seed — the property
that keeps ``--repro <seed>`` reproducing old artifacts across code
that appends new constraint knobs.
"""

from __future__ import annotations

import zlib

import numpy as np


def rng_for(seed: int, purpose: str) -> np.random.Generator:
    """A deterministic per-purpose RNG stream for one scenario seed."""
    tag = zlib.crc32(purpose.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence([int(seed), tag]))
