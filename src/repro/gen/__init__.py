"""Constrained-random scenario generation + differential oracle.

Hand-written tests cover only the scenario shapes we thought of; this
package (ROADMAP item 4, Riescue-style) generates *arbitrary* ones from
a seed and checks every MMU configuration against the scalar ground
truth:

* :mod:`repro.gen.seeds` — the one place scenario seeds become RNGs
  (every generator function *receives* its ``rng``; none creates one).
* :mod:`repro.gen.layout` — seeded VMA layouts: region counts/sizes,
  physical-memory sizing, hog allocations and reclaim preludes that
  force identity→demand degradation, mid-mosaic unmaps.
* :mod:`repro.gen.perms` — PE sub-region permission mosaics and the
  violation/alias patterns (store-to-read-only, no-permission touches,
  unmapped-gap probes).
* :mod:`repro.gen.streams` — access streams weighted toward page-run
  boundaries, hot sets, strides and cross-region interleave.
* :mod:`repro.gen.oracle` — realizes a scenario under each
  configuration, runs both timing engines, and asserts (a) identical
  permission/violation outcomes, (b) bit-identical
  :class:`~repro.hw.iommu.TimingStats`, (c) fault-accounting
  invariants; mismatches shrink to a minimal scenario and emit a
  ``python -m repro fuzz --repro <seed>`` command plus a quarantined
  artifact.
* :mod:`repro.gen.cli` — the ``python -m repro fuzz`` entry point.

See ``docs/fuzzing.md`` for constraint knobs and the shrink/repro
workflow.
"""

from repro.gen.oracle import Scenario, check_scenario, scenario_from_seed

__all__ = ["Scenario", "check_scenario", "scenario_from_seed"]
