"""Permission mosaics and violation/alias patterns.

Region permissions are drawn from the paper's 2-bit encoding
(:class:`~repro.common.perms.Perm`) with weights biased toward the
shapes that stress the PE sub-region machinery: mostly writable heap
beside read-only tables, with occasional execute-only and no-permission
guard regions.  Violation plans pick *one* access in the stream and
retarget it at a pattern the MMU must refuse — the oracle then checks
that every configuration (and both timing engines) refuses it
identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.perms import Perm

#: Weighted region-permission palette.  At least one region is always
#: forced to READ_WRITE so benign write traffic has a home.
REGION_PERMS = (Perm.READ_WRITE, Perm.READ_ONLY, Perm.READ_EXECUTE,
                Perm.NONE)
REGION_PERM_WEIGHTS = (0.55, 0.25, 0.12, 0.08)

#: Violation/alias patterns the generator knows how to plan.
VIOLATION_KINDS = (
    "store_to_readonly",   # write into a READ_ONLY / READ_EXECUTE region
    "touch_no_access",     # any access into a Perm.NONE guard region
    "gap_probe",           # access a VA no VMA has ever covered
    "use_after_unmap",     # access a region munmapped mid-mosaic
)

#: VA used for gap probes: far above both identity space (bounded by
#: physical memory) and the ASLR'd top-down mmap area, so it is
#: unmapped under every configuration.
GAP_PROBE_REGION = -1
GAP_PROBE_BASE = 1 << 44


@dataclass(frozen=True)
class ViolationPlan:
    """One deliberate violation woven into an access stream.

    ``region`` indexes the layout's regions (:data:`GAP_PROBE_REGION`
    for gap probes), ``page`` / ``offset`` place the access inside it,
    ``frac`` places it within the stream, and ``write`` picks the
    access kind.
    """

    kind: str
    region: int
    offset: int
    frac: float
    write: bool


def gen_region_perms(rng: np.random.Generator, count: int) -> list[Perm]:
    """Draw a permission mosaic for ``count`` regions (≥ 1 writable)."""
    picks = rng.choice(len(REGION_PERMS), size=count,
                       p=REGION_PERM_WEIGHTS)
    perms = [REGION_PERMS[int(i)] for i in picks]
    if Perm.READ_WRITE not in perms:
        perms[int(rng.integers(0, count))] = Perm.READ_WRITE
    return perms


def writable(perm: Perm) -> bool:
    """Whether benign stream writes may target a region of ``perm``."""
    return perm == Perm.READ_WRITE


def readable(perm: Perm) -> bool:
    """Whether benign stream reads may target a region of ``perm``."""
    return perm in (Perm.READ_ONLY, Perm.READ_WRITE, Perm.READ_EXECUTE)


def gen_violation(rng: np.random.Generator, perms: list[Perm],
                  sizes: list[int], unmap_region: int | None,
                  rate: float = 0.45) -> ViolationPlan | None:
    """Plan at most one violation against a mosaic, or None.

    Only kinds whose preconditions hold in this layout are candidates
    (a store-to-read-only needs a read-only region to exist, a
    use-after-unmap needs the layout to unmap one, ...), so every plan
    returned is realizable.
    """
    if rng.random() >= rate:
        return None
    candidates: list[tuple[str, int]] = [("gap_probe", GAP_PROBE_REGION)]
    for i, perm in enumerate(perms):
        if i == unmap_region:
            continue
        if perm in (Perm.READ_ONLY, Perm.READ_EXECUTE):
            candidates.append(("store_to_readonly", i))
        if perm == Perm.NONE:
            candidates.append(("touch_no_access", i))
    if unmap_region is not None:
        candidates.append(("use_after_unmap", unmap_region))
    kind, region = candidates[int(rng.integers(0, len(candidates)))]
    if region == GAP_PROBE_REGION:
        offset = int(rng.integers(0, 1 << 20)) * 8
    else:
        offset = int(rng.integers(0, max(sizes[region] // 8, 1))) * 8
    write = kind == "store_to_readonly" or bool(rng.random() < 0.5)
    return ViolationPlan(kind=kind, region=region, offset=offset,
                         frac=float(rng.random()), write=write)
