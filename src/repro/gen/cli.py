"""``python -m repro fuzz`` — the differential fuzz driver.

Usage::

    python -m repro fuzz                     # smoke: 64 scenarios
    python -m repro fuzz --seed-matrix       # CI matrix: 224 scenarios
    python -m repro fuzz --seeds N           # explicit scenario count
    python -m repro fuzz --base-seed B       # rotate the seed window
    python -m repro fuzz --configs a,b       # restrict the config set
    python -m repro fuzz --repro SEED        # re-run one seed verbosely
    python -m repro fuzz --self-test         # inject a known corruption
    python -m repro fuzz --out DIR           # artifact dir (build/fuzz)

Every scenario is derived from its seed alone, so a failure anywhere
reproduces with ``--repro <seed>`` — no artifact file needed.  The
artifact (written under ``--out``) additionally carries the *shrunken*
scenario, the mismatch list and the repro command, for post-mortems
where re-shrinking would be wasteful.

``--self-test`` deterministically corrupts the fast engine's stats
(:class:`~repro.gen.oracle.SelfTestCorruption`) and inverts the exit
code: the run passes only if the oracle catches the corruption and the
shrinker minimizes it, proving the pipeline would catch a real bug.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.gen.oracle import (
    CONFIG_NAMES,
    ScenarioResult,
    SelfTestCorruption,
    check_scenario,
    repro_command,
    scenario_from_seed,
    scenario_to_dict,
    shrink,
)
from repro.obs import trace as obs_trace

#: Scenario counts for the two CI profiles.  The matrix count clears the
#: 200-scenario acceptance floor with headroom for future skips.
SMOKE_SEEDS = 64
MATRIX_SEEDS = 224

DEFAULT_OUT = Path("build/fuzz")


def _mismatching_configs(result: ScenarioResult) -> tuple[str, ...]:
    """Config names implicated by a verdict's mismatch lines."""
    names = [n for n in result.configs
             if any(m.startswith(f"{n}:") for m in result.mismatches)]
    return tuple(names) or result.configs


def _shrink_and_report(scenario, result, out_dir: Path,
                       corrupt: SelfTestCorruption | None) -> Path:
    """Shrink a failing scenario and quarantine the artifact."""
    focus = _mismatching_configs(result)

    def failing(candidate) -> bool:
        return not check_scenario(candidate, configs=focus,
                                  corrupt=corrupt).ok

    with obs_trace.span("fuzz.shrink", cat="fuzz", seed=scenario.seed):
        small, evals = shrink(scenario, failing)
    final = check_scenario(small, configs=focus, corrupt=corrupt)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact = out_dir / f"mismatch-seed{scenario.seed}.json"
    artifact.write_text(json.dumps({
        "repro": repro_command(scenario.seed,
                               self_test=corrupt is not None),
        "mismatches": result.mismatches,
        "shrunk_mismatches": final.mismatches,
        "shrink_evals": evals,
        "original_accesses": len(scenario.stream),
        "shrunk_accesses": len(small.stream),
        "configs": list(focus),
        "scenario": scenario_to_dict(small),
    }, indent=2))
    print(f"  shrunk {len(scenario.stream)} -> {len(small.stream)} "
          f"accesses in {evals} evals; artifact: {artifact}")
    print(f"  repro: {repro_command(scenario.seed, corrupt is not None)}")
    return artifact


def _parse(argv: list[str]) -> dict:
    opts = {"seeds": None, "base_seed": 0, "configs": None, "repro": None,
            "self_test": False, "out": DEFAULT_OUT, "seed_matrix": False}
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--seed-matrix":
            opts["seed_matrix"] = True
        elif a == "--smoke":
            opts["seeds"] = SMOKE_SEEDS
        elif a == "--self-test":
            opts["self_test"] = True
        elif a in ("--seeds", "--base-seed", "--configs", "--repro",
                   "--out"):
            if i + 1 >= len(argv):
                raise SystemExit(f"{a} needs a value")
            v = argv[i + 1]
            i += 1
            if a == "--seeds":
                opts["seeds"] = int(v)
            elif a == "--base-seed":
                opts["base_seed"] = int(v)
            elif a == "--configs":
                opts["configs"] = tuple(v.split(","))
            elif a == "--repro":
                opts["repro"] = int(v)
            else:
                opts["out"] = Path(v)
        else:
            raise SystemExit(f"unknown fuzz option {a!r} (see "
                             f"'python -m repro fuzz --help' in docs/"
                             f"fuzzing.md)")
        i += 1
    if opts["seeds"] is None:
        opts["seeds"] = MATRIX_SEEDS if opts["seed_matrix"] else SMOKE_SEEDS
    return opts


def main(argv: list[str]) -> int:
    """Entry point for ``python -m repro fuzz``."""
    opts = _parse(argv)
    corrupt = SelfTestCorruption() if opts["self_test"] else None
    configs = opts["configs"] or CONFIG_NAMES
    if opts["repro"] is not None:
        seeds = [opts["repro"]]
    else:
        seeds = list(range(opts["base_seed"],
                           opts["base_seed"] + opts["seeds"]))
    t0 = time.time()
    failures: list[int] = []
    checked = 0
    for seed in seeds:
        scenario = scenario_from_seed(seed)
        with obs_trace.span("fuzz.scenario", cat="fuzz", seed=seed,
                            accesses=len(scenario.stream)):
            result = check_scenario(scenario, configs=configs,
                                    corrupt=corrupt)
        checked += 1
        if result.ok:
            if opts["repro"] is not None:
                print(f"seed {seed}: ok ({result.accesses} accesses x "
                      f"{len(result.configs)} configs)")
            continue
        failures.append(seed)
        print(f"seed {seed}: MISMATCH "
              f"({result.accesses} accesses, {len(scenario.plan.regions)} "
              f"regions, pressure={scenario.plan.pressure})")
        for m in result.mismatches:
            print(f"    {m}")
        _shrink_and_report(scenario, result, opts["out"], corrupt)
    dt = time.time() - t0
    label = "self-test " if corrupt else ""
    print(f"fuzz: {checked} {label}scenarios x {len(configs)} configs, "
          f"{len(failures)} mismatching, {dt:.1f}s")
    if corrupt is not None and opts["repro"] is None:
        # Self-test inverts the verdict: the corruption MUST be caught.
        if failures:
            print("self-test: corruption caught and shrunk (pipeline ok)")
            return 0
        print("self-test: injected corruption was NOT caught")
        return 1
    return 1 if failures else 0
