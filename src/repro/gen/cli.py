"""``python -m repro fuzz`` — the differential fuzz driver.

Usage::

    python -m repro fuzz                     # smoke: 64 scenarios
    python -m repro fuzz --seed-matrix       # CI matrix: 224 scenarios
    python -m repro fuzz --seeds N           # explicit scenario count
    python -m repro fuzz --base-seed B       # rotate the seed window
    python -m repro fuzz --configs a,b       # restrict the config set
    python -m repro fuzz --repro SEED        # re-run one seed verbosely
    python -m repro fuzz --self-test         # inject a known corruption
    python -m repro fuzz --out DIR           # artifact dir (build/fuzz)
    python -m repro fuzz --workers N         # fan seeds across the sweep
                                             # service (default REPRO_WORKERS)

Every scenario is derived from its seed alone, so a failure anywhere
reproduces with ``--repro <seed>`` — no artifact file needed.  The
artifact (written under ``--out``) additionally carries the *shrunken*
scenario, the mismatch list and the repro command, for post-mortems
where re-shrinking would be wasteful.

``--self-test`` deterministically corrupts the fast engine's stats
(:class:`~repro.gen.oracle.SelfTestCorruption`) and inverts the exit
code: the run passes only if the oracle catches the corruption and the
shrinker minimizes it, proving the pipeline would catch a real bug.

With ``--workers > 1`` the seed checks fan out through the supervised
sweep service (:mod:`repro.sweep.scheduler`) — the same scheduler,
liveness supervision and resilience reporting the figure sweeps use —
while shrinking (rare) and ``--self-test`` / ``--repro`` (stateful or
verbose by design) stay in-parent.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.gen.oracle import (
    CONFIG_NAMES,
    ScenarioResult,
    SelfTestCorruption,
    check_scenario,
    repro_command,
    scenario_from_seed,
    scenario_to_dict,
    shrink,
)
from repro.obs import trace as obs_trace

#: Scenario counts for the two CI profiles.  The matrix count clears the
#: 200-scenario acceptance floor with headroom for future skips.
SMOKE_SEEDS = 64
MATRIX_SEEDS = 224

DEFAULT_OUT = Path("build/fuzz")


def _mismatching_configs(result: ScenarioResult) -> tuple[str, ...]:
    """Config names implicated by a verdict's mismatch lines."""
    names = [n for n in result.configs
             if any(m.startswith(f"{n}:") for m in result.mismatches)]
    return tuple(names) or result.configs


def _shrink_and_report(scenario, result, out_dir: Path,
                       corrupt: SelfTestCorruption | None) -> Path:
    """Shrink a failing scenario and quarantine the artifact."""
    focus = _mismatching_configs(result)

    def failing(candidate) -> bool:
        return not check_scenario(candidate, configs=focus,
                                  corrupt=corrupt).ok

    with obs_trace.span("fuzz.shrink", cat="fuzz", seed=scenario.seed):
        small, evals = shrink(scenario, failing)
    final = check_scenario(small, configs=focus, corrupt=corrupt)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact = out_dir / f"mismatch-seed{scenario.seed}.json"
    artifact.write_text(json.dumps({
        "repro": repro_command(scenario.seed,
                               self_test=corrupt is not None),
        "mismatches": result.mismatches,
        "shrunk_mismatches": final.mismatches,
        "shrink_evals": evals,
        "original_accesses": len(scenario.stream),
        "shrunk_accesses": len(small.stream),
        "configs": list(focus),
        "scenario": scenario_to_dict(small),
    }, indent=2))
    print(f"  shrunk {len(scenario.stream)} -> {len(small.stream)} "
          f"accesses in {evals} evals; artifact: {artifact}")
    print(f"  repro: {repro_command(scenario.seed, corrupt is not None)}")
    return artifact


def _parse(argv: list[str]) -> dict:
    opts = {"seeds": None, "base_seed": 0, "configs": None, "repro": None,
            "self_test": False, "out": DEFAULT_OUT, "seed_matrix": False,
            "workers": None}
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--seed-matrix":
            opts["seed_matrix"] = True
        elif a == "--smoke":
            opts["seeds"] = SMOKE_SEEDS
        elif a == "--self-test":
            opts["self_test"] = True
        elif a in ("--seeds", "--base-seed", "--configs", "--repro",
                   "--out", "--workers"):
            if i + 1 >= len(argv):
                raise SystemExit(f"{a} needs a value")
            v = argv[i + 1]
            i += 1
            if a == "--seeds":
                opts["seeds"] = int(v)
            elif a == "--base-seed":
                opts["base_seed"] = int(v)
            elif a == "--configs":
                opts["configs"] = tuple(v.split(","))
            elif a == "--repro":
                opts["repro"] = int(v)
            elif a == "--workers":
                opts["workers"] = max(int(v), 1)
            else:
                opts["out"] = Path(v)
        else:
            raise SystemExit(f"unknown fuzz option {a!r} (see "
                             f"'python -m repro fuzz --help' in docs/"
                             f"fuzzing.md)")
        i += 1
    if opts["seeds"] is None:
        opts["seeds"] = MATRIX_SEEDS if opts["seed_matrix"] else SMOKE_SEEDS
    return opts


def _check_seeds_supervised(seeds: list[int], configs,
                            workers: int) -> dict[int, dict]:
    """Fan seed checks through the supervised sweep service.

    Returns ``{seed: verdict}`` where a verdict carries ``ok``,
    ``accesses`` and ``mismatches``.  Worker observability and
    resilience counters fold into the parent exactly as in a pair
    sweep; anything the scheduler had to repair is printed so a chaotic
    nightly run is never silently "clean".
    """
    from repro.obs import core as obs_core
    from repro.sim.resilience import ResilienceReport
    from repro.sweep.scheduler import SweepService
    from repro.sweep.tasks import TaskSpec

    verdicts: dict[int, dict] = {}

    def absorb(payload: dict) -> list:
        shipped = payload.get("obs")
        if shipped:
            obs_core.REGISTRY.merge(shipped.get("registry") or {})
            obs_trace.COLLECTOR.absorb(shipped.get("events") or [])
        return payload["entries"]

    def on_done(task, entries) -> None:
        verdicts[task.payload["seed"]] = dict(entries[0][1])

    def serial(task) -> list:
        seed = task.payload["seed"]
        with obs_trace.span("fuzz.scenario", cat="fuzz", seed=seed):
            result = check_scenario(scenario_from_seed(seed),
                                    configs=tuple(configs))
        return [["fuzz", {"seed": seed, "ok": result.ok,
                          "accesses": result.accesses,
                          "mismatches": list(result.mismatches)}]]

    report = ResilienceReport()
    SweepService(
        tasks=[TaskSpec(key=f"fuzz/seed{seed}", kind="fuzz",
                        payload=dict(seed=seed,
                                     config_names=list(configs)),
                        shard=str(seed))
               for seed in seeds],
        runner_spec={},
        report=report,
        on_done=on_done,
        serial_fn=serial,
        on_violation=lambda task, exc: verdicts.__setitem__(
            task.payload["seed"],
            dict(seed=task.payload["seed"], ok=False, accesses=0,
                 mismatches=[f"guest violation in worker: {exc}"])),
        absorb=absorb,
        workers=workers,
    ).run()
    if report.events():
        print(report.render())
    return verdicts


def main(argv: list[str]) -> int:
    """Entry point for ``python -m repro fuzz``."""
    opts = _parse(argv)
    corrupt = SelfTestCorruption() if opts["self_test"] else None
    configs = opts["configs"] or CONFIG_NAMES
    if opts["repro"] is not None:
        seeds = [opts["repro"]]
    else:
        seeds = list(range(opts["base_seed"],
                           opts["base_seed"] + opts["seeds"]))
    workers = opts["workers"]
    if workers is None:
        from repro.common import env
        workers = max(env.integer("REPRO_WORKERS", 1), 1)
    supervised = (workers > 1 and len(seeds) > 1
                  and opts["repro"] is None and corrupt is None)
    t0 = time.time()
    failures: list[int] = []
    checked = 0
    verdicts = _check_seeds_supervised(seeds, configs, workers) \
        if supervised else None
    for seed in seeds:
        if verdicts is not None:
            verdict = verdicts.get(seed)
            if verdict is not None and verdict["ok"]:
                checked += 1
                continue
            # Mismatch (or a seed the scheduler quarantined): recompute
            # in-parent — scenario checks are pure functions of the
            # seed — for the verbose report and the shrink.
        scenario = scenario_from_seed(seed)
        with obs_trace.span("fuzz.scenario", cat="fuzz", seed=seed,
                            accesses=len(scenario.stream)):
            result = check_scenario(scenario, configs=configs,
                                    corrupt=corrupt)
        checked += 1
        if result.ok:
            if opts["repro"] is not None:
                print(f"seed {seed}: ok ({result.accesses} accesses x "
                      f"{len(result.configs)} configs)")
            continue
        failures.append(seed)
        print(f"seed {seed}: MISMATCH "
              f"({result.accesses} accesses, {len(scenario.plan.regions)} "
              f"regions, pressure={scenario.plan.pressure})")
        for m in result.mismatches:
            print(f"    {m}")
        _shrink_and_report(scenario, result, opts["out"], corrupt)
    dt = time.time() - t0
    label = "self-test " if corrupt else ""
    print(f"fuzz: {checked} {label}scenarios x {len(configs)} configs, "
          f"{len(failures)} mismatching, {dt:.1f}s")
    if corrupt is not None and opts["repro"] is None:
        # Self-test inverts the verdict: the corruption MUST be caught.
        if failures:
            print("self-test: corruption caught and shrunk (pipeline ok)")
            return 0
        print("self-test: injected corruption was NOT caught")
        return 1
    return 1 if failures else 0
