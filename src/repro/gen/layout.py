"""Seeded VMA-layout generation and realization.

A :class:`LayoutPlan` is the abstract, configuration-independent half of
a scenario: how many regions, their page counts and permission mosaic,
whether one is munmapped mid-mosaic, whether backing is lazy
(``demand_faulting``) and which memory-pressure prelude runs.
:func:`realize` turns a plan into a live system under one
:class:`~repro.core.config.MMUConfig` — kernel, process, VMAs, IOMMU
and fault path — using the same wiring as the hand-written equivalence
suites.

Pressure preludes
-----------------
``fragment``
    Checkerboard the physical allocator (many single-page allocations,
    free every other one) and pin the large contiguous tail with a hog
    allocation.  A DVM identity mapping of ≥ 2 pages then fails
    contiguous allocation and degrades to a demand mapping — the
    identity→demand transition of paper Section 4.3.1 — while
    single-page regions still identity-map into the holes.
``reclaim``
    After the mosaic is mapped, swap out a fraction of the process's
    identity allocations through the real
    :class:`~repro.kernel.reclaim.Reclaimer` and shoot down the IOMMU's
    translation structures (Section 4.3.2); streams then swap-fault
    their way back in.

Only identity-mapping policies get the ``fragment`` prelude: it exists
to force identity degradation, and conventional policies (which never
identity-map) would only gain an out-of-memory crash risk from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from repro.common.consts import PAGE_SIZE
from repro.common.perms import Perm
from repro.core.config import MMUConfig
from repro.gen.perms import gen_region_perms
from repro.hw.bitmap import PermissionBitmap
from repro.hw.dram import DRAMModel
from repro.hw.fault_queue import FaultPath, FaultQueue
from repro.hw.iommu import IOMMU
from repro.kernel.fault import FaultHandler
from repro.kernel.kernel import Kernel
from repro.kernel.reclaim import Reclaimer

MB = 1 << 20

#: Page counts biased toward page-run boundary shapes: single pages,
#: powers of two, and off-by-one sizes that straddle analog-huge-page
#: boundaries when rounded.
REGION_PAGE_CHOICES = (1, 2, 3, 4, 7, 8, 16, 17, 32, 64)
REGION_PAGE_WEIGHTS = (0.14, 0.12, 0.1, 0.12, 0.1, 0.12, 0.1, 0.08,
                       0.07, 0.05)

PRESSURE_KINDS = ("none", "fragment", "reclaim")


@dataclass(frozen=True)
class RegionSpec:
    """One mosaic region: size in 4 KB pages and its permission."""

    pages: int
    perm: Perm


@dataclass(frozen=True)
class LayoutPlan:
    """Configuration-independent description of a generated layout."""

    regions: tuple[RegionSpec, ...]
    phys_mb: int
    pressure: str                 # one of PRESSURE_KINDS
    reclaim_fraction: float       # only meaningful for "reclaim"
    frag_holes: int               # only meaningful for "fragment"
    unmap_region: int | None      # munmapped after the mosaic is built
    demand: bool                  # lazy backing (demand_faulting policies)
    scale: str                    # "default" | "fuzz" hardware scale

    @property
    def total_pages(self) -> int:
        """Mosaic footprint in 4 KB pages (the hog excluded)."""
        return sum(r.pages for r in self.regions)


def gen_layout(rng: np.random.Generator) -> LayoutPlan:
    """Draw one constrained-random layout plan."""
    count = int(rng.integers(2, 7))
    perms = gen_region_perms(rng, count)
    picks = rng.choice(len(REGION_PAGE_CHOICES), size=count,
                       p=REGION_PAGE_WEIGHTS)
    regions = tuple(RegionSpec(pages=REGION_PAGE_CHOICES[int(i)], perm=p)
                    for i, p in zip(picks, perms))
    unmap_region = None
    if count >= 3 and rng.random() < 0.3:
        unmap_region = int(rng.integers(0, count))
    roll = rng.random()
    if roll < 0.3:
        pressure = "fragment"
    elif roll < 0.55:
        pressure = "reclaim"
    else:
        pressure = "none"
    return LayoutPlan(
        regions=regions,
        # Sized for the worst-case config: conv_1g populates one scaled
        # 1G chunk per region, the kernel keeps half of phys, and the
        # mosaic can draw six regions — 64 MB fits all of it under every
        # scale profile (tests/gen pin this envelope).  The fragment
        # prelude hogs whatever is free, so pressure does not need a
        # smaller machine to bite.
        phys_mb=64,
        pressure=pressure,
        reclaim_fraction=float(rng.uniform(0.25, 1.0)),
        frag_holes=sum(r.pages for r in regions) + 16,
        unmap_region=unmap_region,
        demand=bool(rng.random() < 0.4),
        scale="fuzz" if rng.random() < 0.35 else "default",
    )


def invalidate_translation_structures(iommu: IOMMU) -> None:
    """The OS-style IOTLB shootdown that follows page-table surgery."""
    for tlb in (iommu.tlb, iommu.tlb_l2):
        if tlb is not None:
            tlb.invalidate_all()
    if iommu.walker is not None:
        iommu.walker.invalidate()
        iommu.walker.cache.invalidate_all()
    if iommu.perm_bitmap is not None:
        iommu.perm_bitmap.cache.invalidate_all()


#: Contiguous runs up to this buddy order survive the fragment prelude,
#: so single-digit-page regions can still identity-map into the leftovers
#: while anything larger must degrade to demand paging.
_FRAG_SLACK_ORDER = 3


def _fragment_phys(kernel: Kernel, vmm, holes: int) -> None:
    """Checkerboard the buddy allocator, leaving single-page holes.

    Allocate ``2 * holes`` single pages, pin every contiguous run larger
    than the slack order with hog allocations (the pool is not one run —
    kernel reservations and page-table frames split it — so the hog
    walks ``largest_free_order`` down instead of assuming ``free_bytes``
    is allocatable in one piece), then free every other single-page
    allocation.
    """
    board = [vmm.mmap(PAGE_SIZE, Perm.READ_ONLY, name=f"board{i}")
             for i in range(2 * holes)]
    i = 0
    while kernel.phys.allocator.largest_free_order() > _FRAG_SLACK_ORDER:
        order = kernel.phys.allocator.largest_free_order()
        vmm.mmap(PAGE_SIZE << order, Perm.READ_ONLY, name=f"hog{i}")
        i += 1
    for alloc in board[1::2]:
        vmm.munmap(alloc)


def realize(plan: LayoutPlan, config: MMUConfig) -> SimpleNamespace:
    """Build one live system for ``plan`` under ``config``.

    Returns a namespace with the kernel/process/iommu/queue/handler
    wiring plus per-region addressing: ``region_vas``/``region_sizes``
    (index-aligned with ``plan.regions``; the unmapped region keeps the
    VA and size it had before munmap) and ``allocs`` (None for the
    unmapped region).  Realization is deterministic: realizing the same
    plan under the same config twice yields identical addresses.
    """
    bitmap = (PermissionBitmap(cache_blocks=config.bitmap_cache_blocks)
              if config.mech == "dvm_bm" else None)
    factory = (lambda k, p: bitmap) if bitmap is not None else None
    kernel = Kernel(phys_bytes=plan.phys_mb * MB, policy=config.policy,
                    perm_bitmap_factory=factory)
    proc = kernel.spawn()
    if plan.pressure == "fragment" and config.policy.wants_identity:
        _fragment_phys(kernel, proc.vmm, plan.frag_holes)
    allocs: list = []
    for i, region in enumerate(plan.regions):
        allocs.append(proc.vmm.mmap(region.pages * PAGE_SIZE, region.perm,
                                    name=f"region{i}"))
    region_vas = [a.va for a in allocs]
    region_sizes = [a.size for a in allocs]
    if plan.unmap_region is not None:
        proc.vmm.munmap(allocs[plan.unmap_region])
        allocs[plan.unmap_region] = None
    iommu = IOMMU(config, proc.page_table, DRAMModel(), perm_bitmap=bitmap)
    queue = FaultQueue()
    handler = FaultHandler(kernel, proc)
    iommu.attach_fault_path(FaultPath(queue, handler, config=config.name))
    if plan.pressure == "reclaim":
        if kernel.reclaimer is None:
            kernel.reclaimer = Reclaimer(kernel)
        target = int(proc.vmm.stats.total_bytes * plan.reclaim_fraction)
        kernel.reclaimer.reclaim(proc, target)
        invalidate_translation_structures(iommu)
    return SimpleNamespace(config=config, kernel=kernel, process=proc,
                           iommu=iommu, queue=queue, handler=handler,
                           allocs=allocs, region_vas=region_vas,
                           region_sizes=region_sizes)
