"""Batched page-run timing engine — the IOMMU's vectorized fast path.

The scalar loops in :mod:`repro.hw.iommu` execute a few dict operations per
access, millions of times per experiment.  This module reproduces their
results *bit-identically* from a numpy pre-pass with no per-access Python
work at all; only final-state reconstruction touches the real dicts, once
per resident entry.

Three observations make that possible (the full argument is recorded in
DESIGN.md, "Key design decisions"):

1.  **Page runs.**  Accelerator reference streams are page-grained and
    run-structured: consecutive accesses to the same 4 KB page collapse
    into a run ``(page, length, writes)``.  Within a run, every lookup
    structure sees the same keys it saw at the run's head access, with the
    keys at the MRU end of their sets — so accesses 2..k of a run are
    *guaranteed* hits whose LRU re-touches leave every dict in exactly the
    state the head left it.  Only run heads can change state.

2.  **LRU is distance-determined.**  Each set of a set-associative LRU
    structure is an independent fully-associative LRU: an access hits iff
    the number of *distinct* keys that touched its set since the key's
    previous occurrence is at most ``ways - 1`` — a pure function of the
    key stream, independent of the victims chosen along the way.  Victims
    are therefore unobservable, and the exact per-access miss mask follows
    from exact stack distances.  Distances are resolved in three vector
    tiers: an in-set reuse gap of at most ``ways`` guarantees a hit;
    small per-set alphabets are counted exactly with per-key
    ``searchsorted`` scans; large alphabets get logarithmic lower/upper
    distance bounds from tiered reuse-gap prefix sums, and the residual
    ambiguous "band" (whose windows are short by construction) is counted
    exactly with one gather.

3.  **Final state from last touches.**  An LRU set's dict is ordered by
    last touch, and its residents are exactly the ``ways``
    most-recently-touched distinct keys; a TLB entry's value is the one
    computed by the key's last *fill* (miss).  Both are per-key grouped
    reductions, so the end-of-trace dicts are rebuilt bit-identically
    without replaying the stream.

The engine refuses (returns ``False``) whenever the trace could diverge
from the pre-pass's assumptions — a possible ``ProtectionFault`` or
``PageFault``, pre-populated lookup structures, an L2 TLB, or an analysis
exceeding its vector-work budget — and the caller falls back to the
scalar loops, which remain the ground truth for exceptions and partial
state.
"""

from __future__ import annotations

import numpy as np

from repro.common import env
from repro.common.consts import PAGE_SHIFT
from repro.sim import _native

#: Environment override for the engine selection ("fast" | "scalar").
ENGINE_ENV_VAR = "REPRO_TIMING_ENGINE"

_ENGINES = ("fast", "scalar")


def default_engine() -> str:
    """The engine :meth:`IOMMU.run_trace` uses when none is requested."""
    engine = env.raw(ENGINE_ENV_VAR, "fast")
    if engine not in _ENGINES:
        raise ValueError(
            f"{ENGINE_ENV_VAR} must be one of {_ENGINES}, got {engine!r}")
    return engine


# ---------------------------------------------------------------------------
# Page-run pre-pass
# ---------------------------------------------------------------------------

class PageRunBatch:
    """A concretized VA trace compressed into page runs.

    A *run* is a maximal stretch of consecutive accesses to one 4 KB page.
    ``addrs``/``writes`` keep the raw per-access columns (the scalar
    fallback still needs them); the remaining arrays are one entry per run
    and are computed lazily on first use, so mechanisms that never look at
    runs (``ideal``) and batches restored from the artifact cache pay
    nothing.  Batches are immutable and safe to share across
    configurations simulating the same concretized trace.

    Batches come in two flavors: :meth:`from_trace` wraps an already
    concretized address column, while :meth:`from_skeleton` derives the
    per-layout columns from a layout-independent
    :class:`TraceRunSkeleton` with run-scale (not access-scale) work,
    deferring the full address column until something (the scalar
    fallback) actually needs it.
    """

    __slots__ = ("_addrs", "writes", "_runs", "_upages", "_lazy",
                 "_head_vas", "_paggs")

    def __init__(self, addrs: np.ndarray | None, writes: np.ndarray,
                 lazy=None):
        self._addrs = addrs      # int64[n] virtual address per access
        self.writes = writes     # int[n] 0/1 store flag per access
        self._runs = None
        self._upages = None
        self._lazy = lazy        # (skeleton, bases_arr) when deferred
        self._head_vas = None
        self._paggs = None

    @property
    def addrs(self) -> np.ndarray:
        """int64[n] VA column; concretized on demand for skeleton batches."""
        if self._addrs is None:
            skel, bases = self._lazy
            self._addrs = bases[skel.streams] + skel.offsets
        return self._addrs

    @property
    def num_accesses(self) -> int:
        """Accesses in the underlying trace."""
        return int(self.writes.shape[0])

    @property
    def num_runs(self) -> int:
        """Page runs after compression."""
        return int(self.starts.shape[0])

    @property
    def starts(self) -> np.ndarray:
        """int64[m] index of each run's head access."""
        return self._compress()[0]

    @property
    def lengths(self) -> np.ndarray:
        """int64[m] accesses in the run."""
        return self._compress()[1]

    @property
    def pages(self) -> np.ndarray:
        """int64[m] 4 KB page number of the run."""
        return self._compress()[2]

    @property
    def run_writes(self) -> np.ndarray:
        """int64[m] stores in the run."""
        return self._compress()[3]

    @property
    def head_writes(self) -> np.ndarray:
        """int64[m] store flag of the head access."""
        return self._compress()[4]

    @classmethod
    def from_trace(cls, addrs, writes) -> "PageRunBatch":
        """Wrap an (addrs, writes) trace for page-run simulation."""
        addrs = np.asarray(addrs, dtype=np.int64)
        writes = np.asarray(writes)
        if addrs.shape != writes.shape:
            raise ValueError("addrs and writes must have equal length")
        return cls(addrs, writes)

    @classmethod
    def from_skeleton(cls, skel: "TraceRunSkeleton",
                      bases_arr: np.ndarray) -> "PageRunBatch":
        """Bind a layout-independent skeleton to one layout's bases.

        Only run-scale gathers happen here; the caller has already
        verified (:func:`_skeleton_layout_ok`) that the layout keeps the
        skeleton's run decomposition exact.
        """
        batch = cls(None, skel.writes, lazy=(skel, bases_arr))
        pages = bases_arr[skel.head_streams] + skel.head_offsets
        pages >>= PAGE_SHIFT
        batch._runs = (skel.starts, skel.lengths, pages, skel.run_writes,
                       skel.head_writes)
        return batch

    def head_vas(self) -> np.ndarray:
        """int64[m] VA of each run's head access, memoized."""
        if self._head_vas is None:
            if self._addrs is None:
                skel, bases = self._lazy
                self._head_vas = bases[skel.head_streams] + skel.head_offsets
            else:
                self._head_vas = self._addrs[self.starts]
        return self._head_vas

    def unique_pages(self):
        """(unique pages, int32 run->unique index), memoized per batch."""
        if self._upages is None:
            self._upages = _compact(self.pages)
        return self._upages

    def page_aggregates(self):
        """Per-unique-page run aggregates, memoized per batch.

        Returns ``(run_count, access_count, write_count, written)`` —
        each indexed like :meth:`unique_pages`'s unique array.  These let
        the mechanism runners turn run-scale (m) reductions into
        unique-page-scale (u << m for degenerate traces) ones.
        """
        if self._paggs is None:
            upages, uidx = self.unique_pages()
            u = upages.shape[0]
            run_count = np.bincount(uidx, minlength=u)
            if self.num_runs == self.num_accesses:
                # Degenerate compression (every run one access): the
                # weighted reductions collapse to integer bincounts.
                access_count = run_count
                write_count = np.bincount(uidx[self.run_writes > 0],
                                          minlength=u)
            else:
                # float64 weights are exact for any count below 2**53.
                access_count = np.bincount(
                    uidx, weights=self.lengths, minlength=u).astype(np.int64)
                write_count = np.bincount(
                    uidx, weights=self.run_writes, minlength=u).astype(np.int64)
            self._paggs = (run_count, access_count, write_count,
                           write_count > 0)
        return self._paggs

    def _compress(self):
        if self._runs is not None:
            return self._runs
        addrs, writes = self.addrs, self.writes
        n = addrs.shape[0]
        if n == 0:
            empty = np.empty(0, np.int64)
            self._runs = (empty, empty, empty, empty, empty)
            return self._runs
        pages_all = addrs >> PAGE_SHIFT
        change = np.empty(n, bool)
        change[0] = True
        np.not_equal(pages_all[1:], pages_all[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        m = starts.shape[0]
        lengths = np.empty(m, np.int64)
        np.subtract(starts[1:], starts[:-1], out=lengths[:m - 1])
        lengths[m - 1] = n - starts[m - 1]
        wcum = np.empty(n + 1, np.int64)
        wcum[0] = 0
        np.cumsum(writes, dtype=np.int64, out=wcum[1:])
        run_writes = wcum[starts + lengths]
        run_writes -= wcum[starts]
        self._runs = (
            starts,
            lengths,
            pages_all[starts],
            run_writes,
            writes[starts].astype(np.int64),
        )
        return self._runs


class TraceRunSkeleton:
    """The layout-independent half of the page-run pre-pass.

    Stream allocations are page-disjoint in every eligible layout
    (:func:`_skeleton_layout_ok`), so two consecutive accesses share a
    4 KB page iff they are in the same stream *and* the same page of that
    stream — a property of the symbolic trace alone.  The skeleton
    therefore computes the run decomposition (and everything derived only
    from it) once per trace; binding to a concrete layout is a run-scale
    gather in :meth:`PageRunBatch.from_skeleton`.
    """

    __slots__ = ("streams", "offsets", "writes", "starts", "lengths",
                 "run_writes", "head_writes", "head_streams",
                 "head_offsets", "present", "max_opage")

    def __init__(self, trace):
        streams = np.asarray(trace.streams)
        offsets = np.asarray(trace.offsets, dtype=np.int64)
        writes = np.asarray(trace.writes)
        self.streams = streams
        self.offsets = offsets
        self.writes = writes
        n = streams.shape[0]
        if n == 0:
            empty = np.empty(0, np.int64)
            self.starts = self.lengths = self.run_writes = empty
            self.head_writes = self.head_offsets = empty
            self.head_streams = np.empty(0, np.intp)
            self.present = []
            self.max_opage = {}
            return
        opage = offsets >> PAGE_SHIFT
        change = np.empty(n, bool)
        change[0] = True
        np.not_equal(streams[1:], streams[:-1], out=change[1:])
        change[1:] |= opage[1:] != opage[:-1]
        starts = np.flatnonzero(change)
        m = starts.shape[0]
        lengths = np.empty(m, np.int64)
        np.subtract(starts[1:], starts[:-1], out=lengths[:m - 1])
        lengths[m - 1] = n - starts[m - 1]
        wcum = np.empty(n + 1, np.int64)
        wcum[0] = 0
        np.cumsum(writes, dtype=np.int64, out=wcum[1:])
        run_writes = wcum[starts + lengths]
        run_writes -= wcum[starts]
        self.starts = starts
        self.lengths = lengths
        self.run_writes = run_writes
        self.head_writes = writes[starts].astype(np.int64)
        # Runs never span streams, so every stream's accesses are covered
        # by heads of that stream; per-stream extrema come from heads.
        self.head_streams = streams[starts].astype(np.intp)
        self.head_offsets = offsets[starts]
        head_opage = self.head_offsets >> PAGE_SHIFT
        self.present = np.unique(self.head_streams).tolist()
        self.max_opage = {
            s: int(head_opage[self.head_streams == s].max())
            for s in self.present
        }


def _skeleton_layout_ok(skel: TraceRunSkeleton, layout) -> bool:
    """Whether ``layout`` preserves the skeleton's run decomposition.

    Requires every accessed stream to have a page-aligned base, accesses
    to stay inside their stream's allocation, and the allocations' page
    ranges to be pairwise disjoint — together these guarantee a page
    change exactly where the stream or the in-stream page changes.
    """
    page = 1 << PAGE_SHIFT
    bases = layout.stream_bases
    spans = []
    for stream in skel.present:
        base = bases.get(stream)
        size = layout.stream_sizes.get(stream, 0)
        if base is None or base % page or size <= 0:
            return False
        if skel.max_opage[stream] > (size - 1) >> PAGE_SHIFT:
            return False
        spans.append((base >> PAGE_SHIFT, (base + size - 1) >> PAGE_SHIFT))
    spans.sort()
    return all(prev_hi < lo for (_, prev_hi), (lo, _) in zip(spans, spans[1:]))


def batch_for(trace, layout, cache: dict | None = None) -> PageRunBatch:
    """The page-run batch of ``trace`` bound to ``layout``.

    Reuses two levels from ``cache`` when given: the finished per-layout
    batch (keyed by the concrete base addresses) and the per-trace
    :class:`TraceRunSkeleton` that makes a second layout's batch cost
    run-scale instead of access-scale.  Layouts the skeleton cannot serve
    exactly fall back to eager concretization.
    """
    bases = layout.stream_bases
    token = trace.content_token()
    key = (token, tuple(sorted(bases.items())))
    if cache is not None and key in cache:
        return cache[key]
    skel_key = ("skeleton", token)
    skel = cache.get(skel_key) if cache is not None else None
    if skel is None:
        skel = TraceRunSkeleton(trace)
        if cache is not None:
            cache[skel_key] = skel
    if _skeleton_layout_ok(skel, layout):
        max_stream = max(skel.present, default=-1)
        bases_arr = np.zeros(max_stream + 1, dtype=np.int64)
        for stream, base in bases.items():
            if stream <= max_stream:
                bases_arr[stream] = base
        batch = PageRunBatch.from_skeleton(skel, bases_arr)
    else:
        addrs, writes = trace.concretize(bases)
        batch = PageRunBatch.from_trace(addrs, writes)
    if cache is not None:
        cache[key] = batch
    return batch


class _WalkTable:
    """Functional walk outcomes for a batch's unique pages, as columns."""

    __slots__ = ("ok", "perm", "pa_base", "identity", "blocks", "fixed",
                 "counts")

    def __init__(self, walker, upages: np.ndarray):
        info_for = walker.info_for
        ok, perm, pa_base, identity, blocks, fixed = [], [], [], [], [], []
        for page in upages.tolist():
            info = info_for(page)
            ok.append(info[0])
            perm.append(info[1])
            pa_base.append(info[2])
            identity.append(info[3])
            blocks.append(info[4])
            fixed.append(info[5])
        self.ok = np.array(ok, dtype=bool)
        self.perm = np.array(perm, dtype=np.int64)
        self.pa_base = pa_base          # python ints, used scalar-only
        self.identity = np.array(identity, dtype=bool)
        self.blocks = blocks            # list of block-id tuples
        self.fixed = np.array(fixed, dtype=np.int64)
        self.counts = np.array([len(b) for b in blocks], dtype=np.int64)


# ---------------------------------------------------------------------------
# Exact LRU stream analysis
# ---------------------------------------------------------------------------

#: Max Σ_set (candidates × alphabet) for the per-key searchsorted scan.
_SCAN_OPS_BUDGET = 60_000_000
#: Max total gathered window elements for the ambiguous-band resolution.
_BAND_GATHER_BUDGET = 400_000_000


#: Max direct-table span for the linear-time factorization below.
_COMPACT_SPAN_BUDGET = 1 << 26


def _compact(values: np.ndarray):
    """(unique values, int32 inverse) — identical to sorted ``np.unique``.

    Page/VPN/walk-block alphabets span narrow ranges (the heap's), so a
    direct presence table factorizes the stream in linear time instead of
    ``np.unique``'s sort; the sort stays as the fallback for wide spans.
    """
    if not values.size:
        return values.astype(np.int64), np.empty(0, np.int32)
    lo = int(values.min())
    span = int(values.max()) - lo + 1
    if span <= _COMPACT_SPAN_BUDGET:
        shifted = values - lo          # only ever used as an index column
        present = np.zeros(span, bool)
        present[shifted] = True
        # Rank of each span slot among the present ones == sorted-unique id.
        rank = np.cumsum(present, dtype=np.int32)
        rank -= 1
        uniq = np.flatnonzero(present).astype(np.int64)
        uniq += lo
        return uniq, rank[shifted]
    uniq, inverse = np.unique(values, return_inverse=True)
    return uniq, inverse.astype(np.int32)


class _StreamLRU:
    """Exact LRU outcome of one compact-id key stream over nsets × ways.

    All positional attributes are in global (chronological) stream
    coordinates: ``miss`` is the exact per-access miss mask; ``last_occ``
    / ``last_fill`` hold each id's final touch and final fill position
    (-1 when absent / never filled).
    """

    __slots__ = ("miss", "k", "counts", "last_occ", "last_fill", "sid_u",
                 "nsets", "ways")


def _pcum(flags: np.ndarray) -> np.ndarray:
    """Zero-prefixed int32 prefix sum of a boolean array."""
    out = np.empty(flags.size + 1, np.int32)
    out[0] = 0
    np.cumsum(flags, dtype=np.int32, out=out[1:])
    return out


def _scan_distances(cand, prev, order, starts, k):
    """Exact stack distances for ``cand`` via per-key occurrence scans.

    For each candidate window ``(prev, cand)`` and each key of the
    alphabet, one binary search decides whether the key occurs in the
    window; summing the indicators is the distinct count.  Exact, and
    cheap whenever the alphabet is small (AVC blocks, bitmap words,
    walk-cache blocks).
    """
    p = prev[cand]
    t = cand
    d = np.zeros(cand.size, np.int64)
    for u in range(k):
        occ = order[starts[u]:starts[u + 1]]
        if occ.size == 0:
            continue
        j = np.searchsorted(occ, p, side="right")
        d += (j < occ.size) & (occ[np.minimum(j, occ.size - 1)] < t)
    return d


def _tier_decide(cand, prev, gap, ways):
    """Exact miss decisions for ``cand`` via tiered distance bounds.

    The distinct count of window ``(p, t)`` equals the number of
    ``j in (p, t)`` whose previous occurrence is at or before ``p`` —
    i.e. whose reuse gap satisfies ``gap_j >= j - p``.  Bucketing offsets
    ``o = j - p`` into power-of-two tiers gives, from one family of
    reuse-gap prefix sums, a lower bound (``gap_j`` exceeds the tier's
    upper edge) and an upper bound (``gap_j`` exceeds its lower edge).
    A candidate is decided as soon as the lower bound reaches ``ways``
    (miss) or its window is exhausted with the upper bound below
    (hit).  Undecided candidates form a *band* whose gaps hug the
    ``gap ≈ o`` diagonal — short windows by construction — and are
    counted exactly with one gather.  Returns a per-candidate miss mask,
    or ``None`` when the band exceeds the vector-work budget.
    """
    nc = cand.size
    mc = gap.shape[0]
    pa = prev[cand].astype(np.int64)
    ta = cand.astype(np.int64)
    decided_miss = np.zeros(nc, bool)
    # Exact diagonal stage: element j at offset o = j - p satisfies
    # prev_j <= p iff gap_j >= o, so the first ways+1 offsets are counted
    # exactly with one gather per offset.  The o = 1 element always lies
    # in the window (candidates have gap > ways >= 1) and always counts.
    # A prefix count reaching `ways` is already a decided miss, and a
    # window no longer than ways+1 is fully counted — for typical
    # streams this decides almost every candidate before any tier work.
    if ways <= 64:
        d = np.ones(nc, np.int32)
        for o in range(2, ways + 2):
            j = pa + o
            d += (j < ta) & (gap[np.minimum(j, mc - 1)] >= o)
        decided_miss = d >= ways
        live = ~decided_miss & (ta - pa - 1 > ways + 1)
        rem = np.flatnonzero(live)
        pa = pa[rem]
        ta = ta[rem]
        upper = d[rem].copy()
        lower = d[rem].copy()
        e_lo = ways + 1
    else:
        rem = np.arange(nc)
        upper = np.ones(nc, np.int32)
        lower = np.ones(nc, np.int32)
        e_lo = 1
    band_p, band_t, band_r = [], [], []
    cum_next = _pcum(gap > e_lo) if rem.size else None
    while rem.size:
        cum_lo = cum_next          # prefix counts of gap > e_lo
        e_hi = e_lo << 1
        cum_next = _pcum(gap > e_hi)
        lo = np.minimum(pa + (e_lo + 1), ta)
        hi = np.minimum(pa + (e_hi + 1), ta)
        upper += cum_lo[hi] - cum_lo[lo]
        lower += cum_next[hi] - cum_next[lo]
        covered = hi == ta
        is_miss = lower >= ways
        is_hit = covered & ~is_miss & (upper < ways)
        in_band = covered & ~is_miss & ~is_hit
        if is_miss.any():
            decided_miss[rem[is_miss]] = True
        if in_band.any():
            band_p.append(pa[in_band])
            band_t.append(ta[in_band])
            band_r.append(rem[in_band])
        live = ~(is_miss | is_hit | in_band)
        rem = rem[live]
        pa = pa[live]
        ta = ta[live]
        upper = upper[live]
        lower = lower[live]
        e_lo = e_hi
    if band_r:
        pb = np.concatenate(band_p)
        tb = np.concatenate(band_t)
        br = np.concatenate(band_r)
        lens = tb - pb - 1
        total = int(lens.sum())
        if total > _BAND_GATHER_BUDGET:
            return None
        off = np.concatenate(([0], np.cumsum(lens))).astype(np.int32)
        pb32 = pb.astype(np.int32)
        window = (np.arange(total, dtype=np.int32)
                  - np.repeat(off[:-1], lens)
                  + np.repeat(pb32 + 1, lens))
        in_count = prev[window] <= np.repeat(pb32, lens)
        csum = _pcum(in_count)
        d_band = csum[off[1:]] - csum[off[:-1]]
        decided_miss[br[d_band >= ways]] = True
    return decided_miss


def _simulate_lru(ids: np.ndarray, k: int, nsets: int, ways: int,
                  sid_u) -> _StreamLRU | None:
    """Exact per-access LRU hit/miss for a compact-id key stream.

    ``ids`` holds key ids in ``0..k-1``; ``sid_u`` maps each id to its set
    (``None`` when ``nsets == 1``).  Pure — touches no simulator state.
    Returns ``None`` when an exact classification would exceed the vector
    budgets (the caller then falls back to the scalar engine).
    """
    m = ids.shape[0]
    out = _StreamLRU()
    out.k = k
    out.sid_u = sid_u
    out.nsets = nsets
    out.ways = ways
    if m == 0:
        out.miss = np.zeros(0, bool)
        out.counts = np.zeros(k, np.int64)
        out.last_occ = np.full(k, -1, np.int64)
        out.last_fill = np.full(k, -1, np.int64)
        return out
    # The compiled replay kernel is the literal scalar algorithm (O(1)
    # recency lists instead of insertion-ordered dicts) and needs no
    # distance analysis at all; use it whenever the host can build it.
    native = _native.lru_sim(ids, k, nsets, ways, sid_u)
    if native is not None:
        out.miss, out.counts, out.last_occ, out.last_fill = native
        return out
    if nsets == 1:
        fa = _fa_lru(ids, k, ways)
        if fa is None:
            return None
        out.miss, out.counts, out.last_occ, out.last_fill = fa
        return out
    # Each set is an independent fully-associative LRU over its own
    # subsequence, so process sets one at a time: peak memory is one
    # set's arrays, and each set picks its own distance method.  The
    # subsequence positions (gpos) are monotone, so mapping the per-set
    # results back to global coordinates preserves occurrence order.
    sid = sid_u[ids]
    miss = np.zeros(m, bool)
    counts = np.zeros(k, np.int64)
    last_occ = np.full(k, -1, np.int64)
    last_fill = np.full(k, -1, np.int64)
    lid = np.empty(k, np.int32)
    for s in range(nsets):
        uk = np.flatnonzero(sid_u == s)
        if uk.size == 0:
            continue
        gpos = np.flatnonzero(sid == s)
        if gpos.size == 0:
            continue
        lid[uk] = np.arange(uk.size, dtype=np.int32)
        fa = _fa_lru(lid[ids[gpos]], uk.size, ways)
        if fa is None:
            return None
        miss_s, counts_s, lo_s, lf_s = fa
        miss[gpos] = miss_s
        counts[uk] = counts_s
        present = counts_s > 0
        ukp = uk[present]
        last_occ[ukp] = gpos[lo_s[present]]
        lfp = lf_s[present]
        last_fill[ukp] = np.where(
            lfp >= 0, gpos[np.maximum(lfp, 0)], -1)
    out.miss = miss
    out.counts = counts
    out.last_occ = last_occ
    out.last_fill = last_fill
    return out


def _fa_lru(ids: np.ndarray, k: int, ways: int):
    """Exact fully-associative LRU outcome for one key stream.

    Returns ``(miss, counts, last_occ, last_fill)`` in the stream's own
    coordinates, or ``None`` when exact classification would exceed the
    vector budgets.
    """
    m = ids.shape[0]
    # Consecutive-duplicate compression: a repeat of the MRU key is a
    # guaranteed hit that restores the dict to the same order, and a
    # duplicate never adds a distinct key to anyone's reuse window — so
    # distances over the deduplicated stream are unchanged, removed
    # positions are hits, and retained positions keep the ids' relative
    # last-touch order (a duplicate block is contiguous, so no other
    # id's touch can land inside it).
    keep = np.empty(m, bool)
    keep[0] = True
    np.not_equal(ids[1:], ids[:-1], out=keep[1:])
    kept = np.flatnonzero(keep)
    mc = kept.shape[0]
    dedup = mc < m
    core = ids[kept] if dedup else ids
    counts = np.bincount(core, minlength=k).astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)))
    order = np.argsort(core, kind="stable")
    prev = np.full(mc, -1, np.int32)
    follower = np.ones(mc, bool)
    follower[starts[:-1]] = False
    idx = np.flatnonzero(follower)
    oi = order[idx]
    prev[oi] = order[idx - 1]
    del oi, idx, follower
    first = prev < 0
    gap = np.arange(mc, dtype=np.int32) - prev
    gap[first] = np.iinfo(np.int32).max  # sentinel: exceeds every tier edge
    miss_core = first.copy()
    if k > ways:
        cand = np.flatnonzero(~first & (gap > ways))
        if cand.size:
            if cand.size * k <= _SCAN_OPS_BUDGET:
                d = _scan_distances(cand, prev, order, starts, k)
                miss_core[cand[d >= ways]] = True
            else:
                decided = _tier_decide(cand, prev, gap, ways)
                if decided is None:
                    return None
                miss_core[cand[decided]] = True
    nonempty = counts > 0
    last_w = order[starts[1:] - 1]
    last_occ = np.full(k, -1, np.int64)
    last_occ[nonempty] = (kept[last_w[nonempty]] if dedup
                          else last_w[nonempty])
    last_fill = np.full(k, -1, np.int64)
    if nonempty.any():
        fillpos = np.where(miss_core[order], order, -1)
        lf = np.maximum.reduceat(fillpos, starts[:-1][nonempty])
        if dedup:
            lf = np.where(lf >= 0, kept[np.maximum(lf, 0)], -1)
        last_fill[nonempty] = lf
    if dedup:
        miss = np.zeros(m, bool)
        miss[kept] = miss_core
    else:
        miss = miss_core
    return miss, counts, last_occ, last_fill


def _residents(lru: _StreamLRU) -> np.ndarray:
    """Ids resident at end of stream, ascending by last touch.

    An LRU set holds exactly its ``ways`` most-recently-touched distinct
    keys (every access promotes to MRU), and its dict iterates in
    ascending last-touch order — so the final state is a per-set top-k
    selection over last occurrences.
    """
    present = np.flatnonzero(lru.counts > 0)
    by_touch = present[np.argsort(lru.last_occ[present], kind="stable")]
    if lru.nsets == 1:
        return by_touch[-lru.ways:]
    keep = np.zeros(by_touch.size, bool)
    room = [lru.ways] * lru.nsets
    sids = lru.sid_u[by_touch].tolist()
    for i in range(by_touch.size - 1, -1, -1):
        s = sids[i]
        if room[s]:
            keep[i] = True
            room[s] -= 1
    return by_touch[keep]


def _rebuild_cache(cache, lru: _StreamLRU, ukeys: np.ndarray) -> None:
    """Recreate a block cache's end-of-trace contents (last-touch order)."""
    install = cache.install_block
    for u in _residents(lru).tolist():
        install(int(ukeys[u]))


def _rebuild_tlb(tlb, lru: _StreamLRU, u_vpns: np.ndarray,
                 head_vas: np.ndarray, page_idx: np.ndarray,
                 table: _WalkTable) -> None:
    """Recreate the TLB's contents, entries recomputed at each last fill."""
    tshift = tlb.page_shift
    install = tlb.install
    bases = table.pa_base
    for u in _residents(lru).tolist():
        vpn = int(u_vpns[u])
        h = int(lru.last_fill[u])
        pidx = int(page_idx[h])
        va = int(head_vas[h])
        install(vpn, (bases[pidx] - ((va & ~0xFFF) - (vpn << tshift)),
                      int(table.perm[pidx])))


def _region_fault_screen(region_of_page: np.ndarray, nregions: int,
                         page_perm: np.ndarray,
                         page_written: np.ndarray) -> bool:
    """True when no access can fault, judged at TLB-region granularity.

    A TLB entry's permission comes from whichever member 4 KB page was
    walked at fill time, so a conservative screen must hold for *every*
    touched page of a region: reads need min perm >= 1, and a region
    containing any store needs every page at perm == 2 (otherwise some
    interleaving faults).  All inputs are per unique page — the touched
    pages of a region are exactly its members in the unique-page table —
    so the screen never materializes the head stream.
    """
    counts = np.bincount(region_of_page, minlength=nregions)
    nonempty = counts > 0
    if not nonempty.any():
        return True
    order = np.argsort(region_of_page, kind="stable")
    rs = np.concatenate(([0], np.cumsum(counts)))[:-1][nonempty]
    min_perm = np.minimum.reduceat(page_perm[order], rs)
    any_write = np.maximum.reduceat(
        page_written[order].astype(np.int8), rs)
    if np.any(min_perm < 1):
        return False
    return not np.any((any_write > 0) & (min_perm != 2))


def _block_alphabet(table: _WalkTable):
    """(unique blocks, compact flat ids, per-page offsets) of a table.

    Ids are compacted against the table's (small) block alphabet, never
    an expanded stream; ``offsets[p]:offsets[p + 1]`` slices page ``p``'s
    ids out of the flat column.
    """
    flat_blocks = np.array(
        [b for blocks in table.blocks for b in blocks], np.int64)
    ublocks, flat_ids = _compact(flat_blocks)
    offsets = np.concatenate(
        ([0], np.cumsum(table.counts))).astype(np.int32)
    return ublocks, flat_ids, offsets


def _walk_lru(cache, table: _WalkTable, page_idx: np.ndarray):
    """Exact LRU analysis of the walk-block stream selected by ``page_idx``.

    Event ``e`` walks page ``page_idx[e]``, touching its blocks in walk
    order.  Returns ``(lru, ublocks, event_miss)`` — the stream's
    :class:`_StreamLRU` (totals come from ``event_miss``; its ``miss``
    mask may be ``None``) plus per-event miss counts — or ``None`` when
    exact classification would exceed the vector budgets.  The compiled
    indirect kernel is preferred: it replays straight from the per-page
    block table and never materializes the expanded stream.
    """
    ublocks, flat_ids, offsets = _block_alphabet(table)
    k = ublocks.shape[0]
    sid_u = ((ublocks % cache.num_sets).astype(np.int16)
             if cache.num_sets > 1 else None)
    native = _native.lru_walk(page_idx, offsets, flat_ids, k,
                              cache.num_sets, cache.ways, sid_u)
    if native is not None:
        event_miss, counts, last_occ, last_fill = native
        lru = _StreamLRU()
        lru.miss = None
        lru.k = k
        lru.counts = counts
        lru.last_occ = last_occ
        lru.last_fill = last_fill
        lru.sid_u = sid_u
        lru.nsets = cache.num_sets
        lru.ways = cache.ways
        return lru, ublocks, event_miss
    stream, out_off = _walk_block_stream(table, page_idx, flat_ids, offsets)
    lru = _simulate_lru(stream, k, cache.num_sets, cache.ways, sid_u)
    if lru is None:
        return None
    cs = np.empty(lru.miss.shape[0] + 1, np.int64)
    cs[0] = 0
    np.cumsum(lru.miss, dtype=np.int64, out=cs[1:])
    event_miss = cs[out_off[1:]]
    event_miss -= cs[out_off[:-1]]
    return lru, ublocks, event_miss


def _walk_block_stream(table: _WalkTable, page_idx: np.ndarray,
                       flat_ids: np.ndarray, block_offsets: np.ndarray):
    """(compact ids, per-event offsets) of a materialized walk stream.

    The numpy fallback behind :func:`_walk_lru`: ``page_idx`` selects the
    walked page per event, in order; the stream concatenates each page's
    walk blocks.
    """
    counts = table.counts
    starts_per = block_offsets[page_idx]
    if counts.size and counts.min() == counts.max():
        # Uniform walk depth: the stream is a dense (events x depth)
        # matrix; build it with one broadcast add, no repeats.
        depth = int(counts[0])
        out_off = np.arange(page_idx.shape[0] + 1, dtype=np.int64)
        out_off *= depth
        gather = starts_per[:, None] + np.arange(depth, dtype=np.int32)
        stream = flat_ids[gather.ravel()]
        return stream, out_off
    counts_per = counts.astype(np.int32)[page_idx]
    out_off = np.concatenate(
        ([0], np.cumsum(counts_per, dtype=np.int64)))
    total = int(out_off[-1])
    # One repeat: each event contributes a contiguous ramp starting at
    # its page's first block slot.
    shift = starts_per.astype(np.int64)
    shift -= out_off[:-1]
    gather = np.arange(total, dtype=np.int64)
    gather += np.repeat(shift, counts_per)
    stream = flat_ids[gather]
    return stream, out_off


# ---------------------------------------------------------------------------
# Engine entry
# ---------------------------------------------------------------------------

def run_batch(iommu, batch: PageRunBatch, stats) -> bool:
    """Run ``batch`` through ``iommu``'s configuration on the fast path.

    Fills ``stats`` (a :class:`~repro.hw.iommu.TimingStats` without energy,
    which the caller finalizes) and mutates the IOMMU's lookup structures
    to their exact end-of-trace state.  Returns ``False`` — with **no**
    state modified — when the trace needs the scalar loops: a possible
    fault, an unmapped page, pre-populated lookup structures, or an L2 TLB.
    """
    mech = iommu.config.mech
    if mech == "ideal":
        _run_ideal(iommu, batch, stats)
        return True
    if mech == "conventional":
        return _run_conventional(iommu, batch, stats)
    if mech == "dvm_bm":
        return _run_bitmap(iommu, batch, stats)
    return _run_dav(iommu, batch, stats, preload=(mech == "dvm_pe_plus"))


def _run_ideal(iommu, batch: PageRunBatch, stats) -> None:
    n = batch.num_accesses
    stats.accesses = n
    stats.writes = int(batch.writes.sum())
    stats.reads = n - stats.writes
    iommu.dram.stats.data_accesses += n


# ---------------------------------------------------------------------------
# Conventional: TLB + page-walk cache
# ---------------------------------------------------------------------------

def _tlb_walk_analysis(tlb, walker, upages: np.ndarray, uidx: np.ndarray,
                       table: _WalkTable, page_written: np.ndarray):
    """Analyse a TLB-fronted walk stream (the conventional hot path).

    ``uidx`` indexes each head's page into ``upages``/``table``;
    ``page_written`` flags unique pages with any written run.  Pure:
    returns ``None`` for scalar fallback (possible fault or budget), else
    ``(walks, walk_sram, walk_mem, fixed_total, tlb_lru, u_vpns,
    cache_lru, ublocks)`` with the rebuild inputs for the caller's commit.
    """
    tshift = tlb.page_shift
    # vpn = va >> tshift == page >> (tshift - 12), so the TLB alphabet is
    # derived from the (small) unique-page table, not the head stream.
    u_vpns, vid_of_upage = _compact(upages >> (tshift - PAGE_SHIFT))
    if not _region_fault_screen(vid_of_upage, u_vpns.shape[0],
                                table.perm, page_written):
        return None
    vids = vid_of_upage[uidx]
    sid_u = ((u_vpns % tlb.num_sets).astype(np.int16)
             if tlb.num_sets > 1 else None)
    tlb_lru = _simulate_lru(vids, u_vpns.shape[0], tlb.num_sets, tlb.ways,
                            sid_u)
    if tlb_lru is None:
        return None
    miss_heads = np.flatnonzero(tlb_lru.miss)
    walks = int(miss_heads.shape[0])
    walked_pidx = uidx[miss_heads]
    walk_sram = int(table.counts[walked_pidx].sum())
    fixed_total = int(table.fixed[walked_pidx].sum())
    res = _walk_lru(walker.cache, table, walked_pidx)
    if res is None:
        return None
    cache_lru, ublocks, event_miss = res
    walk_mem = fixed_total + int(event_miss.sum())
    return (walks, walk_sram, walk_mem, fixed_total, tlb_lru, u_vpns,
            cache_lru, ublocks)


def _run_conventional(iommu, batch: PageRunBatch, stats) -> bool:
    tlb = iommu.tlb
    walker = iommu.walker
    if iommu.tlb_l2 is not None:
        return False
    if tlb.occupancy() or walker.cache.occupancy():
        return False
    n = batch.num_accesses
    m = batch.num_runs
    dram = iommu.dram
    if m == 0:
        stats.accesses = 0
        dram.stats.data_accesses += 0
        return True
    upages, uidx = batch.unique_pages()
    table = _WalkTable(walker, upages)
    if not table.ok.all():
        return False
    _run_count, _access_count, write_count, written_pages = (
        batch.page_aggregates())
    analysis = _tlb_walk_analysis(tlb, walker, upages, uidx, table,
                                  page_written=written_pages)
    if analysis is None:
        return False
    (walks, walk_sram, walk_mem, fixed_total, tlb_lru, u_vpns,
     cache_lru, ublocks) = analysis
    # --- guards passed; state mutation may begin -------------------------
    head_vas = batch.head_vas()
    _rebuild_cache(walker.cache, cache_lru, ublocks)
    _rebuild_tlb(tlb, tlb_lru, u_vpns, head_vas, uidx, table)
    cache_misses = walk_mem - fixed_total
    dram.stats.data_accesses += n
    dram.stats.walk_accesses += walk_mem
    tlb.stats.hits += n - walks
    tlb.stats.misses += walks
    cache = walker.cache
    cache.stats.hits += walk_sram - cache_misses
    cache.stats.misses += cache_misses
    stats.accesses = n
    stats.writes = int(write_count.sum())
    stats.reads = n - stats.writes
    stats.sram_stall_cycles = walk_sram
    stats.mem_stall_cycles = walk_mem * dram.walk_latency
    stats.tlb_lookups = n
    stats.tlb_misses = walks
    stats.walks = walks
    stats.walk_sram_accesses = walk_sram
    stats.walk_mem_accesses = walk_mem
    return True


# ---------------------------------------------------------------------------
# DVM-BM: permission bitmap + bitmap cache, TLB fallback
# ---------------------------------------------------------------------------

def _run_bitmap(iommu, batch: PageRunBatch, stats) -> bool:
    bitmap = iommu.perm_bitmap
    tlb = iommu.tlb
    walker = iommu.walker
    bm_cache = bitmap.cache
    if (tlb.occupancy() or walker.cache.occupancy()
            or bm_cache.occupancy()):
        return False
    n = batch.num_accesses
    m = batch.num_runs
    dram = iommu.dram
    if m == 0:
        stats.accesses = 0
        dram.stats.data_accesses += 0
        stats.bitmap_lookups = 0
        return True
    perms = bitmap._perms
    upages, uidx = batch.unique_pages()
    bitmap_perm = np.array([int(perms.get(p, 0)) for p in upages.tolist()],
                           np.int64)
    run_count, access_count, write_count, written_u = batch.page_aggregates()
    identity_pages = bitmap_perm > 0
    # Identity pages fault only on stores without write permission.
    if np.any(written_u & identity_pages & (bitmap_perm != 2)):
        return False
    if identity_pages.all():
        fb_idx = np.empty(0, np.int64)
    else:
        fb_idx = np.flatnonzero(~identity_pages[uidx])
    fb_analysis = None
    if fb_idx.shape[0]:
        # Walk outcomes only for fallback pages — the scalar loop never
        # walks identity pages, so neither may the guard.
        fb_umask = np.zeros(upages.shape[0], bool)
        fb_umask[np.unique(uidx[fb_idx])] = True
        fb_upages = upages[fb_umask]
        remap = np.full(upages.shape[0], -1, np.int32)
        remap[fb_umask] = np.arange(fb_upages.shape[0], dtype=np.int32)
        table = _WalkTable(walker, fb_upages)
        if not table.ok.all():
            return False
        fb_pidx = remap[uidx[fb_idx]]
        fb_written = np.zeros(fb_upages.shape[0], bool)
        fb_written[fb_pidx[batch.run_writes[fb_idx] > 0]] = True
        fb_analysis = _tlb_walk_analysis(tlb, walker, fb_upages, fb_pidx,
                                         table, page_written=fb_written)
        if fb_analysis is None:
            return False
    # Bitmap-cache stream: one probe per head (interiors re-touch at MRU).
    bm_base_block = bitmap.base_pa >> 3
    u_words, wid_of_upage = _compact(bm_base_block + (upages >> 5))
    wids = wid_of_upage[uidx]
    bm_sid_u = ((u_words % bm_cache.num_sets).astype(np.int16)
                if bm_cache.num_sets > 1 else None)
    bm_lru = _simulate_lru(wids, u_words.shape[0], bm_cache.num_sets,
                           bm_cache.ways, bm_sid_u)
    if bm_lru is None:
        return False
    bm_mem = int(bm_lru.miss.sum())
    # --- guards passed; state mutation may begin -------------------------
    _rebuild_cache(bm_cache, bm_lru, u_words)
    walks = walk_sram = walk_mem = 0
    if fb_analysis is not None:
        (walks, walk_sram, walk_mem, _fixed, tlb_lru, u_vpns,
         cache_lru, ublocks) = fb_analysis
        fb_head_vas = batch.head_vas()[fb_idx]
        _rebuild_cache(walker.cache, cache_lru, ublocks)
        _rebuild_tlb(tlb, tlb_lru, u_vpns, fb_head_vas, fb_pidx, table)
    walk_latency = dram.walk_latency
    identity = int(access_count[identity_pages].sum())
    tlb_lookups = n - identity
    dram.stats.data_accesses += n
    dram.stats.walk_accesses += walk_mem + bm_mem
    bm_cache.stats.hits += n - bm_mem
    bm_cache.stats.misses += bm_mem
    tlb.stats.hits += tlb_lookups - walks
    tlb.stats.misses += walks
    stats.accesses = n
    stats.writes = int(batch.writes.sum())
    stats.reads = n - stats.writes
    stats.sram_stall_cycles = n + walk_sram
    stats.mem_stall_cycles = (bm_mem + walk_mem) * walk_latency
    stats.tlb_lookups = tlb_lookups
    stats.tlb_misses = walks
    stats.walks = walks
    stats.walk_sram_accesses = walk_sram
    stats.walk_mem_accesses = walk_mem
    stats.bitmap_lookups = n
    stats.bitmap_mem_accesses = bm_mem
    stats.identity_accesses = identity
    stats.fallback_accesses = n - identity
    return True


# ---------------------------------------------------------------------------
# DVM-PE / DVM-PE+: DAV through the AVC
# ---------------------------------------------------------------------------

def _run_dav(iommu, batch: PageRunBatch, stats, *, preload: bool) -> bool:
    walker = iommu.walker
    cache = walker.cache
    if cache.occupancy():
        return False
    n = batch.num_accesses
    m = batch.num_runs
    dram = iommu.dram
    if m == 0:
        stats.accesses = 0
        dram.stats.data_accesses += 0
        return True
    upages, uidx = batch.unique_pages()
    table = _WalkTable(walker, upages)
    if not table.ok.all():
        return False
    # Every unique page is touched by some run, so per-page predicates
    # answer the per-run guards at unique-page scale.
    run_count, access_count, write_count, written_u = batch.page_aggregates()
    if np.any(table.perm < 1):
        return False
    if np.any(written_u & (table.perm != 2)):
        return False
    # AVC block stream: the blocks each *head* touches, in walk order.
    # Interior accesses re-touch the same blocks back to the same dict
    # order, so the head stream alone determines the cache's evolution.
    res = _walk_lru(cache, table, uidx)
    if res is None:
        return False
    avc_lru, ublocks, event_miss = res
    # --- guards passed; state mutation may begin -------------------------
    _rebuild_cache(cache, avc_lru, ublocks)
    walk_latency = dram.walk_latency
    data_latency = dram.data_latency
    walk_sram = int((table.counts * access_count).sum())
    walk_mem = int((table.fixed * run_count).sum()) + int(event_miss.sum())
    identity = int(access_count[table.identity].sum())
    if not preload:
        sram_stall = walk_sram
        mem_stall = walk_mem * walk_latency
        squashes = 0
    else:
        # Head reads overlap DAV with the preload; only walk memory time
        # beyond the data fetch is exposed.  Interior accesses have zero
        # walk memory, so their reads expose nothing.  Writes (head or
        # interior) behave like dvm_pe; non-identity reads squash.  The
        # per-head AVC miss counts are the walk analysis's per-event
        # output, no segment sums needed.
        mem_per_head = table.fixed[uidx] + event_miss
        head_reads = 1 - batch.head_writes
        exposed = mem_per_head * walk_latency - data_latency
        np.maximum(exposed, 0, out=exposed)
        mem_stall = int((exposed * head_reads).sum())
        squashes = int(
            (access_count - write_count)[~table.identity].sum())
        mem_stall += squashes * data_latency
        sram_stall = int((table.counts * write_count).sum())
        mem_stall += int(
            (mem_per_head * batch.head_writes).sum()) * walk_latency
    dram.stats.data_accesses += n
    dram.stats.walk_accesses += walk_mem
    dram.stats.squashed_preloads += squashes
    walker.walks += n
    cache.stats.hits += walk_sram - walk_mem
    cache.stats.misses += walk_mem
    stats.accesses = n
    stats.writes = int(write_count.sum())
    stats.reads = n - stats.writes
    stats.sram_stall_cycles = sram_stall
    stats.mem_stall_cycles = mem_stall
    stats.walks = n
    stats.walk_sram_accesses = walk_sram
    stats.walk_mem_accesses = walk_mem
    stats.identity_accesses = identity
    stats.fallback_accesses = n - identity
    stats.squashed_preloads = squashes
    return True
