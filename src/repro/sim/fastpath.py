"""Batched page-run timing engine — the IOMMU's vectorized fast path.

The scalar loops in :mod:`repro.hw.iommu` execute a few dict operations per
access, millions of times per experiment.  This module reproduces their
results *bit-identically* from a numpy pre-pass with no per-access Python
work at all; only final-state reconstruction touches the real dicts, once
per resident entry.

Three observations make that possible (the full argument is recorded in
DESIGN.md, "Key design decisions"):

1.  **Page runs.**  Accelerator reference streams are page-grained and
    run-structured: consecutive accesses to the same 4 KB page collapse
    into a run ``(page, length, writes)``.  Within a run, every lookup
    structure sees the same keys it saw at the run's head access, with the
    keys at the MRU end of their sets — so accesses 2..k of a run are
    *guaranteed* hits whose LRU re-touches leave every dict in exactly the
    state the head left it.  Only run heads can change state.

2.  **LRU is distance-determined.**  Each set of a set-associative LRU
    structure is an independent fully-associative LRU: an access hits iff
    the number of *distinct* keys that touched its set since the key's
    previous occurrence is at most ``ways - 1`` — a pure function of the
    key stream, independent of the victims chosen along the way.  Victims
    are therefore unobservable, and the exact per-access miss mask follows
    from exact stack distances.  Distances are resolved in three vector
    tiers: an in-set reuse gap of at most ``ways`` guarantees a hit;
    small per-set alphabets are counted exactly with per-key
    ``searchsorted`` scans; large alphabets get logarithmic lower/upper
    distance bounds from tiered reuse-gap prefix sums, and the residual
    ambiguous "band" (whose windows are short by construction) is counted
    exactly with one gather.

3.  **Final state from last touches.**  An LRU set's dict is ordered by
    last touch, and its residents are exactly the ``ways``
    most-recently-touched distinct keys; a TLB entry's value is the one
    computed by the key's last *fill* (miss).  Both are per-key grouped
    reductions, so the end-of-trace dicts are rebuilt bit-identically
    without replaying the stream.

Fault-bearing traces stay on the fast path.  A vectorized pre-screen
predicts every position where the scalar loop could take a fault (demand
page-in, swap-in, permission mosaics), then one of two strategies
replays the trace:

* **Pre-delivery** (the common case): when every predicted fault is
  *site-exact* — demand page-ins and swap-ins at a page's first
  TLB-miss walk or first DAV access, write-violations at a page's first
  store — the engine services them all up front, in trace order,
  through :class:`~repro.hw.fault_queue.FaultPath` and
  :mod:`repro.kernel.fault` exactly as the scalar loop would, then
  re-screens against the healed state and replays the whole trace as a
  single clean batch.  Sound because fault delivery touches no replayed
  LRU state, and the scalar loops charge a faulting access entirely
  from its post-service walk info (see :func:`_run_predelivered`).
* **Segment replay**: faults whose position depends on interleaving
  (e.g. a TLB region holding a permission mosaic) cut the stream at the
  candidate positions; each fault-free segment replays through the
  batched kernels above (warm lookup structures are *primed* into the
  LRU replay, so a mid-trace segment start is exact), and the candidate
  positions themselves are bridged through the real scalar loops.

Fault-stall cycles, major/swap fault counts and energy events are
bit-identical to the scalar loop by construction either way.

The engine refuses (an :class:`EngineOutcome` that is falsy) only when the
trace needs machinery it cannot replay: a potential fault with no fault
path attached (the legacy raise-on-fault contract), an L2 TLB, an
analysis exceeding its vector-work budget, or fault segmentation disabled
via ``REPRO_FASTPATH_FAULTS=0``.  The caller then falls back to the
scalar loops, which remain the ground truth.
"""

from __future__ import annotations

import functools
import time

import numpy as np

from repro.common import env, faults
from repro.common.consts import PAGE_SHIFT
from repro.sim import _native

#: Environment override for the engine selection ("fast" | "scalar").
ENGINE_ENV_VAR = "REPRO_TIMING_ENGINE"

_ENGINES = ("fast", "scalar")


def default_engine() -> str:
    """The engine :meth:`IOMMU.run_trace` uses when none is requested."""
    engine = env.raw(ENGINE_ENV_VAR, "fast")
    if engine not in _ENGINES:
        raise ValueError(
            f"{ENGINE_ENV_VAR} must be one of {_ENGINES}, got {engine!r}")
    return engine


#: Set to ``0`` to refuse fault-bearing traces instead of segmenting them
#: (the pre-PR behaviour: any predicted fault falls back to scalar).
FAULT_SEGMENTS_ENV_VAR = "REPRO_FASTPATH_FAULTS"


def fault_segments_enabled() -> bool:
    """Whether fault-bearing traces run segmented on the fast path."""
    return env.raw(FAULT_SEGMENTS_ENV_VAR, "1") != "0"


#: Minimum accesses for a fault-free stretch to be worth a batched
#: segment; shorter stretches are absorbed into the neighbouring scalar
#: bridge (per-segment analysis has fixed overhead).
_MIN_SEGMENT = 256

#: When a profiler (``benchmarks/perf_timing.py``) replaces this with a
#: dict, segment replay accumulates wall seconds per phase into it:
#: ``"replay"`` (batched fast-span kernels), ``"fault_service"`` (scalar
#: bridges through the real fault machinery) and ``"accounting"``
#: (screening, segment planning and state snapshots).  ``None`` — the
#: default — keeps the engine free of timer calls.
PHASE_PROFILE: dict | None = None


def _charge_phase(key: str, seconds: float) -> None:
    if PHASE_PROFILE is not None:
        PHASE_PROFILE[key] = PHASE_PROFILE.get(key, 0.0) + seconds


class EngineOutcome:
    """Result of one fast-engine attempt on a batch.

    Truthiness is acceptance.  ``reason`` names the refusal
    (``"tlb_l2"``, ``"legacy_fault_path"``, ``"budget"``,
    ``"fault_segments_disabled"``) and feeds the
    ``fastpath.refused.<reason>`` observability counters; ``segments``
    counts batched replay segments (1 for an unsegmented accept) and
    ``bridged_accesses`` the accesses replayed through the scalar
    bridges.
    """

    __slots__ = ("accepted", "reason", "segments", "bridged_accesses")

    def __init__(self, accepted: bool, reason: str | None = None,
                 segments: int = 0, bridged_accesses: int = 0):
        self.accepted = accepted
        self.reason = reason
        self.segments = segments
        self.bridged_accesses = bridged_accesses

    def __bool__(self) -> bool:
        return self.accepted


# ---------------------------------------------------------------------------
# Page-run pre-pass
# ---------------------------------------------------------------------------

class PageRunBatch:
    """A concretized VA trace compressed into page runs.

    A *run* is a maximal stretch of consecutive accesses to one 4 KB page.
    ``addrs``/``writes`` keep the raw per-access columns (the scalar
    fallback still needs them); the remaining arrays are one entry per run
    and are computed lazily on first use, so mechanisms that never look at
    runs (``ideal``) and batches restored from the artifact cache pay
    nothing.  Batches are immutable and safe to share across
    configurations simulating the same concretized trace.

    Batches come in two flavors: :meth:`from_trace` wraps an already
    concretized address column, while :meth:`from_skeleton` derives the
    per-layout columns from a layout-independent
    :class:`TraceRunSkeleton` with run-scale (not access-scale) work,
    deferring the full address column until something (the scalar
    fallback) actually needs it.
    """

    __slots__ = ("_addrs", "writes", "_runs", "_upages", "_lazy",
                 "_head_vas", "_paggs")

    def __init__(self, addrs: np.ndarray | None, writes: np.ndarray,
                 lazy=None):
        self._addrs = addrs      # int64[n] virtual address per access
        self.writes = writes     # int[n] 0/1 store flag per access
        self._runs = None
        self._upages = None
        self._lazy = lazy        # (skeleton, bases_arr) when deferred
        self._head_vas = None
        self._paggs = None

    @property
    def addrs(self) -> np.ndarray:
        """int64[n] VA column; concretized on demand for skeleton batches."""
        if self._addrs is None:
            skel, bases = self._lazy
            self._addrs = bases[skel.streams] + skel.offsets
        return self._addrs

    @property
    def num_accesses(self) -> int:
        """Accesses in the underlying trace."""
        return int(self.writes.shape[0])

    @property
    def num_runs(self) -> int:
        """Page runs after compression."""
        return int(self.starts.shape[0])

    @property
    def starts(self) -> np.ndarray:
        """int64[m] index of each run's head access."""
        return self._compress()[0]

    @property
    def lengths(self) -> np.ndarray:
        """int64[m] accesses in the run."""
        return self._compress()[1]

    @property
    def pages(self) -> np.ndarray:
        """int64[m] 4 KB page number of the run."""
        return self._compress()[2]

    @property
    def run_writes(self) -> np.ndarray:
        """int64[m] stores in the run."""
        return self._compress()[3]

    @property
    def head_writes(self) -> np.ndarray:
        """int64[m] store flag of the head access."""
        return self._compress()[4]

    @classmethod
    def from_trace(cls, addrs, writes) -> "PageRunBatch":
        """Wrap an (addrs, writes) trace for page-run simulation."""
        addrs = np.asarray(addrs, dtype=np.int64)
        writes = np.asarray(writes)
        if addrs.shape != writes.shape:
            raise ValueError("addrs and writes must have equal length")
        return cls(addrs, writes)

    @classmethod
    def from_skeleton(cls, skel: "TraceRunSkeleton",
                      bases_arr: np.ndarray) -> "PageRunBatch":
        """Bind a layout-independent skeleton to one layout's bases.

        Only run-scale gathers happen here; the caller has already
        verified (:func:`_skeleton_layout_ok`) that the layout keeps the
        skeleton's run decomposition exact.
        """
        batch = cls(None, skel.writes, lazy=(skel, bases_arr))
        pages = bases_arr[skel.head_streams] + skel.head_offsets
        pages >>= PAGE_SHIFT
        batch._runs = (skel.starts, skel.lengths, pages, skel.run_writes,
                       skel.head_writes)
        return batch

    def head_vas(self) -> np.ndarray:
        """int64[m] VA of each run's head access, memoized."""
        if self._head_vas is None:
            if self._addrs is None:
                skel, bases = self._lazy
                self._head_vas = bases[skel.head_streams] + skel.head_offsets
            else:
                self._head_vas = self._addrs[self.starts]
        return self._head_vas

    def unique_pages(self):
        """(unique pages, int32 run->unique index), memoized per batch."""
        if self._upages is None:
            self._upages = _compact(self.pages)
        return self._upages

    def page_aggregates(self):
        """Per-unique-page run aggregates, memoized per batch.

        Returns ``(run_count, access_count, write_count, written)`` —
        each indexed like :meth:`unique_pages`'s unique array.  These let
        the mechanism runners turn run-scale (m) reductions into
        unique-page-scale (u << m for degenerate traces) ones.
        """
        if self._paggs is None:
            upages, uidx = self.unique_pages()
            u = upages.shape[0]
            run_count = np.bincount(uidx, minlength=u)
            if self.num_runs == self.num_accesses:
                # Degenerate compression (every run one access): the
                # weighted reductions collapse to integer bincounts.
                access_count = run_count
                write_count = np.bincount(uidx[self.run_writes > 0],
                                          minlength=u)
            else:
                # float64 weights are exact for any count below 2**53.
                access_count = np.bincount(
                    uidx, weights=self.lengths, minlength=u).astype(np.int64)
                write_count = np.bincount(
                    uidx, weights=self.run_writes, minlength=u).astype(np.int64)
            self._paggs = (run_count, access_count, write_count,
                           write_count > 0)
        return self._paggs

    def _compress(self):
        if self._runs is not None:
            return self._runs
        addrs, writes = self.addrs, self.writes
        n = addrs.shape[0]
        if n == 0:
            empty = np.empty(0, np.int64)
            self._runs = (empty, empty, empty, empty, empty)
            return self._runs
        pages_all = addrs >> PAGE_SHIFT
        change = np.empty(n, bool)
        change[0] = True
        np.not_equal(pages_all[1:], pages_all[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        m = starts.shape[0]
        lengths = np.empty(m, np.int64)
        np.subtract(starts[1:], starts[:-1], out=lengths[:m - 1])
        lengths[m - 1] = n - starts[m - 1]
        wcum = np.empty(n + 1, np.int64)
        wcum[0] = 0
        np.cumsum(writes, dtype=np.int64, out=wcum[1:])
        run_writes = wcum[starts + lengths]
        run_writes -= wcum[starts]
        self._runs = (
            starts,
            lengths,
            pages_all[starts],
            run_writes,
            writes[starts].astype(np.int64),
        )
        return self._runs


class TraceRunSkeleton:
    """The layout-independent half of the page-run pre-pass.

    Stream allocations are page-disjoint in every eligible layout
    (:func:`_skeleton_layout_ok`), so two consecutive accesses share a
    4 KB page iff they are in the same stream *and* the same page of that
    stream — a property of the symbolic trace alone.  The skeleton
    therefore computes the run decomposition (and everything derived only
    from it) once per trace; binding to a concrete layout is a run-scale
    gather in :meth:`PageRunBatch.from_skeleton`.
    """

    __slots__ = ("streams", "offsets", "writes", "starts", "lengths",
                 "run_writes", "head_writes", "head_streams",
                 "head_offsets", "present", "max_opage")

    def __init__(self, trace):
        streams = np.asarray(trace.streams)
        offsets = np.asarray(trace.offsets, dtype=np.int64)
        writes = np.asarray(trace.writes)
        self.streams = streams
        self.offsets = offsets
        self.writes = writes
        n = streams.shape[0]
        if n == 0:
            empty = np.empty(0, np.int64)
            self.starts = self.lengths = self.run_writes = empty
            self.head_writes = self.head_offsets = empty
            self.head_streams = np.empty(0, np.intp)
            self.present = []
            self.max_opage = {}
            return
        opage = offsets >> PAGE_SHIFT
        change = np.empty(n, bool)
        change[0] = True
        np.not_equal(streams[1:], streams[:-1], out=change[1:])
        change[1:] |= opage[1:] != opage[:-1]
        starts = np.flatnonzero(change)
        m = starts.shape[0]
        lengths = np.empty(m, np.int64)
        np.subtract(starts[1:], starts[:-1], out=lengths[:m - 1])
        lengths[m - 1] = n - starts[m - 1]
        wcum = np.empty(n + 1, np.int64)
        wcum[0] = 0
        np.cumsum(writes, dtype=np.int64, out=wcum[1:])
        run_writes = wcum[starts + lengths]
        run_writes -= wcum[starts]
        self.starts = starts
        self.lengths = lengths
        self.run_writes = run_writes
        self.head_writes = writes[starts].astype(np.int64)
        # Runs never span streams, so every stream's accesses are covered
        # by heads of that stream; per-stream extrema come from heads.
        self.head_streams = streams[starts].astype(np.intp)
        self.head_offsets = offsets[starts]
        head_opage = self.head_offsets >> PAGE_SHIFT
        # Stream ids are small; a bincount presence test beats sorting
        # millions of heads.
        counts = np.bincount(self.head_streams)
        self.present = np.flatnonzero(counts).tolist()
        self.max_opage = {
            s: int(head_opage[self.head_streams == s].max())
            for s in self.present
        }


def _skeleton_layout_ok(skel: TraceRunSkeleton, layout) -> bool:
    """Whether ``layout`` preserves the skeleton's run decomposition.

    Requires every accessed stream to have a page-aligned base, accesses
    to stay inside their stream's allocation, and the allocations' page
    ranges to be pairwise disjoint — together these guarantee a page
    change exactly where the stream or the in-stream page changes.
    """
    page = 1 << PAGE_SHIFT
    bases = layout.stream_bases
    spans = []
    for stream in skel.present:
        base = bases.get(stream)
        size = layout.stream_sizes.get(stream, 0)
        if base is None or base % page or size <= 0:
            return False
        if skel.max_opage[stream] > (size - 1) >> PAGE_SHIFT:
            return False
        spans.append((base >> PAGE_SHIFT, (base + size - 1) >> PAGE_SHIFT))
    spans.sort()
    return all(prev_hi < lo for (_, prev_hi), (lo, _) in zip(spans, spans[1:]))


def batch_for(trace, layout, cache: dict | None = None) -> PageRunBatch:
    """The page-run batch of ``trace`` bound to ``layout``.

    Reuses two levels from ``cache`` when given: the finished per-layout
    batch (keyed by the concrete base addresses) and the per-trace
    :class:`TraceRunSkeleton` that makes a second layout's batch cost
    run-scale instead of access-scale.  Layouts the skeleton cannot serve
    exactly fall back to eager concretization.
    """
    bases = layout.stream_bases
    token = trace.content_token()
    key = (token, tuple(sorted(bases.items())))
    if cache is not None and key in cache:
        return cache[key]
    skel_key = ("skeleton", token)
    skel = cache.get(skel_key) if cache is not None else None
    if skel is None:
        skel = TraceRunSkeleton(trace)
        if cache is not None:
            cache[skel_key] = skel
    if _skeleton_layout_ok(skel, layout):
        max_stream = max(skel.present, default=-1)
        bases_arr = np.zeros(max_stream + 1, dtype=np.int64)
        for stream, base in bases.items():
            if stream <= max_stream:
                bases_arr[stream] = base
        batch = PageRunBatch.from_skeleton(skel, bases_arr)
    else:
        addrs, writes = trace.concretize(bases)
        batch = PageRunBatch.from_trace(addrs, writes)
    if cache is not None:
        cache[key] = batch
    return batch


class _WalkTable:
    """Functional walk outcomes for a batch's unique pages, as columns."""

    __slots__ = ("ok", "perm", "pa_base", "identity", "blocks", "fixed",
                 "counts")

    def __init__(self, walker, upages: np.ndarray):
        info_for = walker.info_for
        ok, perm, pa_base, identity, blocks, fixed = [], [], [], [], [], []
        for page in upages.tolist():
            info = info_for(page)
            ok.append(info[0])
            perm.append(info[1])
            pa_base.append(info[2])
            identity.append(info[3])
            blocks.append(info[4])
            fixed.append(info[5])
        self.ok = np.array(ok, dtype=bool)
        self.perm = np.array(perm, dtype=np.int64)
        self.pa_base = pa_base          # python ints, used scalar-only
        self.identity = np.array(identity, dtype=bool)
        self.blocks = blocks            # list of block-id tuples
        self.fixed = np.array(fixed, dtype=np.int64)
        self.counts = np.array([len(b) for b in blocks], dtype=np.int64)
        if not self.ok.all():
            # A chunk-granular fault service (demand page-in, swap-in)
            # can heal a page after this eager memoization; drop not-ok
            # outcomes so post-service accesses — and the walk tables of
            # later replay segments — re-walk authoritatively instead of
            # faulting on a stale memo entry the pure scalar engine
            # would never have held.
            memo = walker._memo
            for page, page_ok in zip(upages.tolist(), self.ok.tolist()):
                if not page_ok:
                    memo.pop(page, None)

    @classmethod
    def narrowed(cls, base: "_WalkTable", base_upages: np.ndarray,
                 walker, upages: np.ndarray) -> "_WalkTable":
        """Rows of ``base`` gathered for a sub-batch's pages.

        Segment re-screens narrow the trace-wide table instead of
        re-walking every page: a page whose walk was ``ok`` at base-build
        time keeps an immutable walk outcome for the rest of the trace
        (fault services only *create* mappings — existing entries never
        move), so only the not-ok rows — pages an intervening bridge may
        have healed — are re-queried through the walker.  ``upages`` must
        be a subset of ``base_upages`` (any slice of the base trace is).
        """
        self = object.__new__(cls)
        pos = np.searchsorted(base_upages, upages)
        self.ok = base.ok[pos]
        self.perm = base.perm[pos]
        self.identity = base.identity[pos]
        self.fixed = base.fixed[pos]
        self.counts = base.counts[pos]
        idx = pos.tolist()
        self.pa_base = [base.pa_base[i] for i in idx]
        self.blocks = [base.blocks[i] for i in idx]
        stale = np.flatnonzero(~self.ok)
        if stale.size:
            info_for = walker.info_for
            memo = walker._memo
            for j in stale.tolist():
                page = int(upages[j])
                info = info_for(page)
                self.ok[j] = info[0]
                self.perm[j] = info[1]
                self.pa_base[j] = info[2]
                self.identity[j] = info[3]
                self.blocks[j] = info[4]
                self.fixed[j] = info[5]
                self.counts[j] = len(info[4])
                if not info[0]:
                    memo.pop(page, None)
        return self


# ---------------------------------------------------------------------------
# Exact LRU stream analysis
# ---------------------------------------------------------------------------

#: Max Σ_set (candidates × alphabet) for the per-key searchsorted scan.
_SCAN_OPS_BUDGET = 60_000_000
#: Max total gathered window elements for the ambiguous-band resolution.
_BAND_GATHER_BUDGET = 400_000_000


#: Max direct-table span for the linear-time factorization below.
_COMPACT_SPAN_BUDGET = 1 << 26


def _compact(values: np.ndarray):
    """(unique values, int32 inverse) — identical to sorted ``np.unique``.

    Page/VPN/walk-block alphabets span narrow ranges (the heap's), so a
    direct presence table factorizes the stream in linear time instead of
    ``np.unique``'s sort; the sort stays as the fallback for wide spans.
    """
    if not values.size:
        return values.astype(np.int64), np.empty(0, np.int32)
    lo = int(values.min())
    span = int(values.max()) - lo + 1
    # The presence table costs O(span) regardless of input size, which
    # loses badly for short streams over a wide heap (segment replay
    # factorizes thousands of trace slices): keep it for streams dense
    # in their span, sort the sparse ones.
    if span <= _COMPACT_SPAN_BUDGET and span <= 64 * values.size:
        shifted = values - lo          # only ever used as an index column
        present = np.zeros(span, bool)
        present[shifted] = True
        # Rank of each span slot among the present ones == sorted-unique id.
        rank = np.cumsum(present, dtype=np.int32)
        rank -= 1
        uniq = np.flatnonzero(present).astype(np.int64)
        uniq += lo
        return uniq, rank[shifted]
    uniq, inverse = np.unique(values, return_inverse=True)
    return uniq, inverse.astype(np.int32)


class _StreamLRU:
    """Exact LRU outcome of one compact-id key stream over nsets × ways.

    All positional attributes are in global (chronological) stream
    coordinates: ``miss`` is the exact per-access miss mask; ``last_occ``
    / ``last_fill`` hold each id's final touch and final fill position
    (-1 when absent / never filled).
    """

    __slots__ = ("miss", "k", "counts", "last_occ", "last_fill", "sid_u",
                 "nsets", "ways")


def _pcum(flags: np.ndarray) -> np.ndarray:
    """Zero-prefixed int32 prefix sum of a boolean array."""
    out = np.empty(flags.size + 1, np.int32)
    out[0] = 0
    np.cumsum(flags, dtype=np.int32, out=out[1:])
    return out


def _scan_distances(cand, prev, order, starts, k):
    """Exact stack distances for ``cand`` via per-key occurrence scans.

    For each candidate window ``(prev, cand)`` and each key of the
    alphabet, one binary search decides whether the key occurs in the
    window; summing the indicators is the distinct count.  Exact, and
    cheap whenever the alphabet is small (AVC blocks, bitmap words,
    walk-cache blocks).
    """
    p = prev[cand]
    t = cand
    d = np.zeros(cand.size, np.int64)
    for u in range(k):
        occ = order[starts[u]:starts[u + 1]]
        if occ.size == 0:
            continue
        j = np.searchsorted(occ, p, side="right")
        d += (j < occ.size) & (occ[np.minimum(j, occ.size - 1)] < t)
    return d


def _tier_decide(cand, prev, gap, ways):
    """Exact miss decisions for ``cand`` via tiered distance bounds.

    The distinct count of window ``(p, t)`` equals the number of
    ``j in (p, t)`` whose previous occurrence is at or before ``p`` —
    i.e. whose reuse gap satisfies ``gap_j >= j - p``.  Bucketing offsets
    ``o = j - p`` into power-of-two tiers gives, from one family of
    reuse-gap prefix sums, a lower bound (``gap_j`` exceeds the tier's
    upper edge) and an upper bound (``gap_j`` exceeds its lower edge).
    A candidate is decided as soon as the lower bound reaches ``ways``
    (miss) or its window is exhausted with the upper bound below
    (hit).  Undecided candidates form a *band* whose gaps hug the
    ``gap ≈ o`` diagonal — short windows by construction — and are
    counted exactly with one gather.  Returns a per-candidate miss mask,
    or ``None`` when the band exceeds the vector-work budget.
    """
    nc = cand.size
    mc = gap.shape[0]
    pa = prev[cand].astype(np.int64)
    ta = cand.astype(np.int64)
    decided_miss = np.zeros(nc, bool)
    # Exact diagonal stage: element j at offset o = j - p satisfies
    # prev_j <= p iff gap_j >= o, so the first ways+1 offsets are counted
    # exactly with one gather per offset.  The o = 1 element always lies
    # in the window (candidates have gap > ways >= 1) and always counts.
    # A prefix count reaching `ways` is already a decided miss, and a
    # window no longer than ways+1 is fully counted — for typical
    # streams this decides almost every candidate before any tier work.
    if ways <= 64:
        d = np.ones(nc, np.int32)
        for o in range(2, ways + 2):
            j = pa + o
            d += (j < ta) & (gap[np.minimum(j, mc - 1)] >= o)
        decided_miss = d >= ways
        live = ~decided_miss & (ta - pa - 1 > ways + 1)
        rem = np.flatnonzero(live)
        pa = pa[rem]
        ta = ta[rem]
        upper = d[rem].copy()
        lower = d[rem].copy()
        e_lo = ways + 1
    else:
        rem = np.arange(nc)
        upper = np.ones(nc, np.int32)
        lower = np.ones(nc, np.int32)
        e_lo = 1
    band_p, band_t, band_r = [], [], []
    cum_next = _pcum(gap > e_lo) if rem.size else None
    while rem.size:
        cum_lo = cum_next          # prefix counts of gap > e_lo
        e_hi = e_lo << 1
        cum_next = _pcum(gap > e_hi)
        lo = np.minimum(pa + (e_lo + 1), ta)
        hi = np.minimum(pa + (e_hi + 1), ta)
        upper += cum_lo[hi] - cum_lo[lo]
        lower += cum_next[hi] - cum_next[lo]
        covered = hi == ta
        is_miss = lower >= ways
        is_hit = covered & ~is_miss & (upper < ways)
        in_band = covered & ~is_miss & ~is_hit
        if is_miss.any():
            decided_miss[rem[is_miss]] = True
        if in_band.any():
            band_p.append(pa[in_band])
            band_t.append(ta[in_band])
            band_r.append(rem[in_band])
        live = ~(is_miss | is_hit | in_band)
        rem = rem[live]
        pa = pa[live]
        ta = ta[live]
        upper = upper[live]
        lower = lower[live]
        e_lo = e_hi
    if band_r:
        pb = np.concatenate(band_p)
        tb = np.concatenate(band_t)
        br = np.concatenate(band_r)
        lens = tb - pb - 1
        total = int(lens.sum())
        if total > _BAND_GATHER_BUDGET:
            return None
        off = np.concatenate(([0], np.cumsum(lens))).astype(np.int32)
        pb32 = pb.astype(np.int32)
        window = (np.arange(total, dtype=np.int32)
                  - np.repeat(off[:-1], lens)
                  + np.repeat(pb32 + 1, lens))
        in_count = prev[window] <= np.repeat(pb32, lens)
        csum = _pcum(in_count)
        d_band = csum[off[1:]] - csum[off[:-1]]
        decided_miss[br[d_band >= ways]] = True
    return decided_miss


def _simulate_lru(ids: np.ndarray, k: int, nsets: int, ways: int,
                  sid_u) -> _StreamLRU | None:
    """Exact per-access LRU hit/miss for a compact-id key stream.

    ``ids`` holds key ids in ``0..k-1``; ``sid_u`` maps each id to its set
    (``None`` when ``nsets == 1``).  Pure — touches no simulator state.
    Returns ``None`` when an exact classification would exceed the vector
    budgets (the caller then falls back to the scalar engine).
    """
    m = ids.shape[0]
    out = _StreamLRU()
    out.k = k
    out.sid_u = sid_u
    out.nsets = nsets
    out.ways = ways
    if m == 0:
        out.miss = np.zeros(0, bool)
        out.counts = np.zeros(k, np.int64)
        out.last_occ = np.full(k, -1, np.int64)
        out.last_fill = np.full(k, -1, np.int64)
        return out
    # The compiled replay kernel is the literal scalar algorithm (O(1)
    # recency lists instead of insertion-ordered dicts) and needs no
    # distance analysis at all; use it whenever the host can build it.
    native = _native.lru_sim(ids, k, nsets, ways, sid_u)
    if native is not None:
        out.miss, out.counts, out.last_occ, out.last_fill = native
        return out
    if nsets == 1:
        fa = _fa_lru(ids, k, ways)
        if fa is None:
            return None
        out.miss, out.counts, out.last_occ, out.last_fill = fa
        return out
    # Each set is an independent fully-associative LRU over its own
    # subsequence, so process sets one at a time: peak memory is one
    # set's arrays, and each set picks its own distance method.  The
    # subsequence positions (gpos) are monotone, so mapping the per-set
    # results back to global coordinates preserves occurrence order.
    sid = sid_u[ids]
    miss = np.zeros(m, bool)
    counts = np.zeros(k, np.int64)
    last_occ = np.full(k, -1, np.int64)
    last_fill = np.full(k, -1, np.int64)
    lid = np.empty(k, np.int32)
    for s in range(nsets):
        uk = np.flatnonzero(sid_u == s)
        if uk.size == 0:
            continue
        gpos = np.flatnonzero(sid == s)
        if gpos.size == 0:
            continue
        lid[uk] = np.arange(uk.size, dtype=np.int32)
        fa = _fa_lru(lid[ids[gpos]], uk.size, ways)
        if fa is None:
            return None
        miss_s, counts_s, lo_s, lf_s = fa
        miss[gpos] = miss_s
        counts[uk] = counts_s
        present = counts_s > 0
        ukp = uk[present]
        last_occ[ukp] = gpos[lo_s[present]]
        lfp = lf_s[present]
        last_fill[ukp] = np.where(
            lfp >= 0, gpos[np.maximum(lfp, 0)], -1)
    out.miss = miss
    out.counts = counts
    out.last_occ = last_occ
    out.last_fill = last_fill
    return out


def _fa_lru(ids: np.ndarray, k: int, ways: int):
    """Exact fully-associative LRU outcome for one key stream.

    Returns ``(miss, counts, last_occ, last_fill)`` in the stream's own
    coordinates, or ``None`` when exact classification would exceed the
    vector budgets.
    """
    m = ids.shape[0]
    # Consecutive-duplicate compression: a repeat of the MRU key is a
    # guaranteed hit that restores the dict to the same order, and a
    # duplicate never adds a distinct key to anyone's reuse window — so
    # distances over the deduplicated stream are unchanged, removed
    # positions are hits, and retained positions keep the ids' relative
    # last-touch order (a duplicate block is contiguous, so no other
    # id's touch can land inside it).
    keep = np.empty(m, bool)
    keep[0] = True
    np.not_equal(ids[1:], ids[:-1], out=keep[1:])
    kept = np.flatnonzero(keep)
    mc = kept.shape[0]
    dedup = mc < m
    core = ids[kept] if dedup else ids
    counts = np.bincount(core, minlength=k).astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)))
    order = np.argsort(core, kind="stable")
    prev = np.full(mc, -1, np.int32)
    follower = np.ones(mc, bool)
    follower[starts[:-1]] = False
    idx = np.flatnonzero(follower)
    oi = order[idx]
    prev[oi] = order[idx - 1]
    del oi, idx, follower
    first = prev < 0
    gap = np.arange(mc, dtype=np.int32) - prev
    gap[first] = np.iinfo(np.int32).max  # sentinel: exceeds every tier edge
    miss_core = first.copy()
    if k > ways:
        cand = np.flatnonzero(~first & (gap > ways))
        if cand.size:
            if cand.size * k <= _SCAN_OPS_BUDGET:
                d = _scan_distances(cand, prev, order, starts, k)
                miss_core[cand[d >= ways]] = True
            else:
                decided = _tier_decide(cand, prev, gap, ways)
                if decided is None:
                    return None
                miss_core[cand[decided]] = True
    nonempty = counts > 0
    last_w = order[starts[1:] - 1]
    last_occ = np.full(k, -1, np.int64)
    last_occ[nonempty] = (kept[last_w[nonempty]] if dedup
                          else last_w[nonempty])
    last_fill = np.full(k, -1, np.int64)
    if nonempty.any():
        fillpos = np.where(miss_core[order], order, -1)
        lf = np.maximum.reduceat(fillpos, starts[:-1][nonempty])
        if dedup:
            lf = np.where(lf >= 0, kept[np.maximum(lf, 0)], -1)
        last_fill[nonempty] = lf
    if dedup:
        miss = np.zeros(m, bool)
        miss[kept] = miss_core
    else:
        miss = miss_core
    return miss, counts, last_occ, last_fill


def _residents(lru: _StreamLRU) -> np.ndarray:
    """Ids resident at end of stream, ascending by last touch.

    An LRU set holds exactly its ``ways`` most-recently-touched distinct
    keys (every access promotes to MRU), and its dict iterates in
    ascending last-touch order — so the final state is a per-set top-k
    selection over last occurrences.
    """
    present = np.flatnonzero(lru.counts > 0)
    by_touch = present[np.argsort(lru.last_occ[present], kind="stable")]
    if lru.nsets == 1:
        return by_touch[-lru.ways:]
    # Per-set top-`ways` by recency, vectorized: stable-sort the reversed
    # (most-recent-first) sequence by set id, rank each element within
    # its set group, and keep ranks below the associativity.
    sids = lru.sid_u[by_touch].astype(np.int64)
    rev = sids[::-1]
    order = np.argsort(rev, kind="stable")
    group_starts = np.concatenate(
        ([0], np.cumsum(np.bincount(rev, minlength=lru.nsets))))[:-1]
    rank = np.empty(rev.size, np.int64)
    rank[order] = np.arange(rev.size) - group_starts[rev[order]]
    keep = (rank < lru.ways)[::-1]
    return by_touch[keep]


def _rebuild_cache(cache, lru: _StreamLRU, ukeys: np.ndarray) -> None:
    """Recreate a block cache's end-of-segment contents (last-touch order).

    Pre-existing (warm) blocks were primed into the replay, so they are
    part of ``lru``'s recency order: flush and reinstall everything.
    """
    cache.invalidate_all()
    blocks = ukeys[_residents(lru)].tolist()
    fill = getattr(cache, "fill_blocks", None)
    (fill if fill is not None else cache.install_blocks)(blocks)


def _rebuild_tlb(tlb, lru: _StreamLRU, u_vpns: np.ndarray,
                 head_vas: np.ndarray, page_idx: np.ndarray,
                 table: _WalkTable, prime_count: int = 0,
                 warm_entries=None) -> None:
    """Recreate the TLB's contents, entries recomputed at each last fill.

    Stream positions below ``prime_count`` are the warm-resident priming
    prefix: a resident whose last fill is a prime touch was never
    re-walked, so it keeps its pre-trace entry value from
    ``warm_entries``.
    """
    tshift = tlb.page_shift
    install = tlb.install
    bases = table.pa_base
    warm_value = dict(warm_entries) if warm_entries else None
    tlb.invalidate_all()
    for u in _residents(lru).tolist():
        vpn = int(u_vpns[u])
        h = int(lru.last_fill[u])
        if h < prime_count:
            install(vpn, warm_value[vpn])
            continue
        h -= prime_count
        pidx = int(page_idx[h])
        va = int(head_vas[h])
        install(vpn, (bases[pidx] - ((va & ~0xFFF) - (vpn << tshift)),
                      int(table.perm[pidx])))


def _walk_lru(cache, table: _WalkTable, page_idx: np.ndarray,
              prime_blocks=None):
    """Exact LRU analysis of the walk-block stream selected by ``page_idx``.

    Event ``e`` walks page ``page_idx[e]``, touching its blocks in walk
    order.  ``prime_blocks`` (resident block ids, LRU-to-MRU within each
    set) prepends one pseudo single-block event per warm block, so a warm
    cache — a mid-trace replay segment's starting state — replays exactly
    as if those blocks had just been touched.  Returns ``(lru, ublocks,
    event_miss)`` — the stream's :class:`_StreamLRU` (totals come from
    ``event_miss``; its ``miss`` mask may be ``None``) plus per-real-event
    miss counts — or ``None`` when exact classification would exceed the
    vector budgets.  The compiled indirect kernel is preferred: it replays
    straight from the per-page block table and never materializes the
    expanded stream.
    """
    flat_blocks = np.array(
        [b for blocks in table.blocks for b in blocks], np.int64)
    counts = table.counts
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int32)
    nf = int(flat_blocks.shape[0])
    npages = int(counts.shape[0])
    prime = len(prime_blocks) if prime_blocks else 0
    if prime:
        # Warm blocks become pseudo pages npages..npages+prime-1, one flat
        # slot each; the priming events touch them first, in residency
        # order, so the replay starts from the cache's true warm state.
        all_blocks = np.concatenate(
            (flat_blocks, np.asarray(prime_blocks, np.int64)))
        ublocks, flat_ids = _compact(all_blocks)
        offsets = np.concatenate(
            (offsets, (nf + np.arange(1, prime + 1)).astype(np.int32)))
        counts = np.concatenate((counts, np.ones(prime, np.int64)))
        page_idx = np.concatenate(
            (npages + np.arange(prime, dtype=np.int64),
             np.asarray(page_idx, np.int64)))
    else:
        ublocks, flat_ids = _compact(flat_blocks)
    k = ublocks.shape[0]
    sid_u = ((ublocks % cache.num_sets).astype(np.int16)
             if cache.num_sets > 1 else None)
    native = _native.lru_walk(page_idx, offsets, flat_ids, k,
                              cache.num_sets, cache.ways, sid_u)
    if native is not None:
        event_miss, counts_k, last_occ, last_fill = native
        lru = _StreamLRU()
        lru.miss = None
        lru.k = k
        lru.counts = counts_k
        lru.last_occ = last_occ
        lru.last_fill = last_fill
        lru.sid_u = sid_u
        lru.nsets = cache.num_sets
        lru.ways = cache.ways
        return lru, ublocks, event_miss[prime:]
    stream, out_off = _walk_block_stream(counts, page_idx, flat_ids, offsets)
    lru = _simulate_lru(stream, k, cache.num_sets, cache.ways, sid_u)
    if lru is None:
        return None
    cs = np.empty(lru.miss.shape[0] + 1, np.int64)
    cs[0] = 0
    np.cumsum(lru.miss, dtype=np.int64, out=cs[1:])
    event_miss = cs[out_off[1:]]
    event_miss -= cs[out_off[:-1]]
    return lru, ublocks, event_miss[prime:]


def _walk_block_stream(counts: np.ndarray, page_idx: np.ndarray,
                       flat_ids: np.ndarray, block_offsets: np.ndarray):
    """(compact ids, per-event offsets) of a materialized walk stream.

    The numpy fallback behind :func:`_walk_lru`: ``page_idx`` selects the
    walked page per event, in order; the stream concatenates each page's
    walk blocks.
    """
    starts_per = block_offsets[page_idx]
    if counts.size and counts.min() == counts.max():
        # Uniform walk depth: the stream is a dense (events x depth)
        # matrix; build it with one broadcast add, no repeats.
        depth = int(counts[0])
        out_off = np.arange(page_idx.shape[0] + 1, dtype=np.int64)
        out_off *= depth
        gather = starts_per[:, None] + np.arange(depth, dtype=np.int32)
        stream = flat_ids[gather.ravel()]
        return stream, out_off
    counts_per = counts.astype(np.int32)[page_idx]
    out_off = np.concatenate(
        ([0], np.cumsum(counts_per, dtype=np.int64)))
    total = int(out_off[-1])
    # One repeat: each event contributes a contiguous ramp starting at
    # its page's first block slot.
    shift = starts_per.astype(np.int64)
    shift -= out_off[:-1]
    gather = np.arange(total, dtype=np.int64)
    gather += np.repeat(shift, counts_per)
    stream = flat_ids[gather]
    return stream, out_off


# ---------------------------------------------------------------------------
# Fault screens: predicting where the scalar loops could fault
# ---------------------------------------------------------------------------

def _warm_tlb_entries(tlb):
    """Resident ``(vpn, entry)`` pairs, LRU-to-MRU within each set."""
    return [(vpn, entry) for tlb_set in tlb._sets
            for vpn, entry in tlb_set.items()]


def _vpn_alphabet(tlb, upages: np.ndarray, warm):
    """TLB-region alphabet of a page table plus warm residents.

    Returns ``(u_vpns, vid_of_upage, prime_vids)``: the compact region
    ids of each unique page and of each warm entry (in ``warm``'s
    order), over one shared alphabet so warm residents can be primed
    into the same LRU replay.
    """
    tshift = tlb.page_shift
    page_vpns = upages >> (tshift - PAGE_SHIFT)
    warm_vpns = np.array([vpn for vpn, _ in warm], np.int64)
    u_vpns, ids = _compact(np.concatenate((page_vpns, warm_vpns)))
    return u_vpns, ids[:upages.shape[0]], ids[upages.shape[0]:]


def _post_perms(iommu, upages: np.ndarray, table: _WalkTable) -> np.ndarray:
    """Predicted per-page permission after any successful fault service.

    Mirrors :meth:`repro.kernel.fault.FaultHandler._classify_and_service`
    without mutating anything: a mapped page keeps its walked permission;
    a swapped page returns at its pre-swap permission when a reclaimer
    exists; an unmapped page inside a non-identity allocation comes in at
    its VMA's protection.  Everything else services to 0 — meaning the
    first delivered fault escalates, which the segment plan handles by
    bridging the fault site (the scalar bridge aborts exactly as the
    scalar engine would).
    """
    post = np.where(table.ok, table.perm, 0)
    bad = np.flatnonzero(~table.ok)
    if not bad.size:
        return post
    handler = iommu.fault_path.handler
    page_table = handler.process.page_table
    vmm = handler.process.vmm
    has_reclaimer = getattr(handler.kernel, "reclaimer", None) is not None
    for i in bad.tolist():
        va = int(upages[i]) << PAGE_SHIFT
        result = page_table.walk(va)
        if result.ok:
            post[i] = result.perm
        elif result.swapped:
            post[i] = result.perm if has_reclaimer else 0
        else:
            alloc = vmm.allocation_at(va)
            if alloc is not None and not alloc.identity:
                post[i] = alloc.vma.perm
            else:
                post[i] = 0
    return post


def _first_fault_heads(iommu, upages: np.ndarray, table: _WalkTable,
                       first_pos: np.ndarray) -> np.ndarray:
    """Reduce per-page first-fault positions to distinct fault sites.

    ``first_pos`` holds the global access position of each unique page's
    first possible fault (-1 when it cannot fault).  Servicing an
    unmapped page inside a demand allocation populates its whole
    policy-size chunk (:meth:`~repro.kernel.vm_syscalls.VMM.
    populate_for_fault`), so later first accesses to sibling pages of
    the same aligned chunk never fault — only the earliest position per
    heal window is a real fault site.  Swapped pages, misaligned or
    short windows, and mapped-but-denied pages heal (or abort) one page
    at a time and keep their own positions.  Returns the sorted
    candidate positions.
    """
    handler = iommu.fault_path.handler
    page_table = handler.process.page_table
    vmm = handler.process.vmm
    chunk_size = vmm.policy.page_size
    singles: list[int] = []
    chunks: dict[int, int] = {}
    for i in np.flatnonzero(first_pos >= 0).tolist():
        pos = int(first_pos[i])
        if table.ok[i]:
            singles.append(pos)
            continue
        va = int(upages[i]) << PAGE_SHIFT
        result = page_table.walk(va)
        if result.ok or result.swapped:
            singles.append(pos)
            continue
        alloc = vmm.allocation_at(va)
        if alloc is None or alloc.identity:
            singles.append(pos)
            continue
        cs = max(va & ~(chunk_size - 1), alloc.va)
        chunk = min(chunk_size, alloc.va + alloc.size - cs)
        if cs % chunk_size or chunk < chunk_size:
            # populate_for_fault falls back to a single 4 KB page here:
            # no sibling healing, every such page faults on its own.
            singles.append(pos)
            continue
        prev = chunks.get(cs)
        if prev is None or pos < prev:
            chunks[cs] = pos
    return np.array(sorted(singles + list(chunks.values())), np.int64)


def _page_positions_mask(batch: PageRunBatch,
                         flag_u: np.ndarray) -> np.ndarray:
    """Boolean per-access mask covering every access to flagged pages.

    ``flag_u`` is indexed like the batch's unique pages.  Built from run
    boundary deltas (one bincount pair), never a per-access scatter.
    """
    n = batch.num_accesses
    _upages, uidx = batch.unique_pages()
    sel = np.flatnonzero(flag_u[uidx])
    starts = batch.starts[sel]
    ends = starts + batch.lengths[sel]
    delta = np.bincount(starts, minlength=n + 1)
    delta -= np.bincount(ends, minlength=n + 1)
    return np.cumsum(delta)[:n] > 0


def _conv_fault_candidates(iommu, tlb, upages: np.ndarray,
                           uidx: np.ndarray, written_u: np.ndarray,
                           head_positions: np.ndarray, table: _WalkTable):
    """Fault-candidate analysis of one TLB-fronted (sub)stream.

    ``upages``/``uidx``/``table`` describe the substream's unique pages
    and each run's page; ``written_u`` flags pages with any written run;
    ``head_positions`` holds each run head's global access position.
    Returns ``(status, cand_positions, flag_pages)``:

    * ``"clean"`` — no access of the substream can fault;
    * ``"legacy"`` — faults are possible but no fault path is attached
      (the raise-on-fault contract needs the scalar loops end to end);
    * ``"budget"`` — the TLB replay exceeded the vector budgets;
    * ``"faulty"`` — ``cand_positions`` are the sorted global positions
      of predicted fault sites (first TLB-miss walk of each faultable
      page, reduced by heal window) and ``flag_pages`` marks unique
      pages whose *every* access must run on the scalar bridge (their
      TLB region can hold an entry that write-faults on a hit — a
      mosaic the region-granular TLB makes order-dependent).
    """
    eff0 = np.where(table.ok, table.perm, 0)
    bad = eff0 < 1
    u = upages.shape[0]
    warm = _warm_tlb_entries(tlb)
    u_vpns, vid_of_upage, prime_vids = _vpn_alphabet(tlb, upages, warm)
    nvr = u_vpns.shape[0]
    fault_path = iommu.fault_path
    post = eff0 if fault_path is None else _post_perms(iommu, upages, table)
    # Region write-unsafety: a store in region R hits whatever entry R
    # holds — filled at some member page's post-service permission, or
    # pre-trace (warm).  If any such entry can carry perm != 2, a store
    # can hit-fault, and the service/refill order is only defined by the
    # scalar loop: bridge every access of R's member pages.
    counts_r = np.bincount(vid_of_upage, minlength=nvr)
    nonempty = counts_r > 0
    order = np.argsort(vid_of_upage, kind="stable")
    rs = np.concatenate(([0], np.cumsum(counts_r)))[:-1][nonempty]
    min_post = np.minimum.reduceat(post[order], rs)
    any_written = np.maximum.reduceat(
        written_u[order].astype(np.int8), rs) > 0
    warm_unsafe = np.zeros(nvr, bool)
    for j, (_vpn, entry) in enumerate(warm):
        if entry[1] != 2:
            warm_unsafe[prime_vids[j]] = True
    unsafe_r = np.zeros(nvr, bool)
    vids_ne = np.flatnonzero(nonempty)
    unsafe_r[vids_ne] = any_written & ((min_post != 2)
                                       | warm_unsafe[vids_ne])
    if not bad.any() and not unsafe_r.any():
        return "clean", None, None
    if fault_path is None:
        return "legacy", None, None
    flag_pages = unsafe_r[vid_of_upage]
    # Remaining faultable pages can only fault at their first TLB-miss
    # walk (a region hit serves them at the entry's permission, and
    # entry permissions are always >= 1): find each page's first miss
    # with a warm-primed exact replay, then merge heal windows.
    need = bad & ~flag_pages
    cand = np.empty(0, np.int64)
    if need.any():
        vids = vid_of_upage[uidx]
        if prime_vids.size:
            vids = np.concatenate((prime_vids, vids))
        sid_u = ((u_vpns % tlb.num_sets).astype(np.int16)
                 if tlb.num_sets > 1 else None)
        tlb_lru = _simulate_lru(vids, nvr, tlb.num_sets, tlb.ways, sid_u)
        if tlb_lru is None:
            return "budget", None, None
        miss_heads = np.flatnonzero(tlb_lru.miss[prime_vids.shape[0]:])
        # Each page's first miss, via reverse fancy assignment (last
        # write wins) — O(#misses) instead of a sort.
        first_pos = np.full(u, -1, np.int64)
        rev = miss_heads[::-1]
        first_pos[uidx[rev]] = head_positions[rev]
        first_pos[~need] = -1
        cand = _first_fault_heads(iommu, upages, table, first_pos)
    return "faulty", cand, flag_pages


# ---------------------------------------------------------------------------
# Engine entry
# ---------------------------------------------------------------------------

def _walk_table(walker, upages: np.ndarray, parent) -> _WalkTable:
    """A batch's walk table — narrowed from the trace-wide parent screen's
    when segment replay provides one, built from the walker otherwise."""
    if parent is not None and "table" in parent:
        return _WalkTable.narrowed(parent["table"], parent["upages"],
                                   walker, upages)
    return _WalkTable(walker, upages)


def _screen_conventional(iommu, batch: PageRunBatch, parent=None):
    """Fault screen for the conventional TLB + PWC configuration."""
    upages, uidx = batch.unique_pages()
    table = _walk_table(iommu.walker, upages, parent)
    _rc, _ac, _wc, written_u = batch.page_aggregates()
    status, cand, flag_pages = _conv_fault_candidates(
        iommu, iommu.tlb, upages, uidx, written_u, batch.starts, table)
    if status == "clean":
        return "clean", None, {"table": table}
    if status != "faulty":
        return status, None, None
    mask = np.zeros(batch.num_accesses, bool)
    if cand.size:
        mask[cand] = True
    # Site-exact faults (first TLB-miss walk of each faultable page) are
    # eligible for pre-delivery; a flagged region's hit-faults are order-
    # dependent and need the scalar bridge.
    sites = cand if not flag_pages.any() else None
    if flag_pages.any():
        mask |= _page_positions_mask(batch, flag_pages)
    return "faulty", mask, {"upages": upages, "table": table,
                            "sites": sites}


def _screen_bitmap(iommu, batch: PageRunBatch, parent=None):
    """Fault screen for DVM-BM (bitmap identity + conventional fallback)."""
    bitmap = iommu.perm_bitmap
    walker = iommu.walker
    upages, uidx = batch.unique_pages()
    u = upages.shape[0]
    perms = bitmap._perms
    bitmap_perm = np.array([int(perms.get(p, 0)) for p in upages.tolist()],
                           np.int64)
    _rc, _ac, _wc, written_u = batch.page_aggregates()
    identity_u = bitmap_perm > 0
    bad_ident = identity_u & written_u & (bitmap_perm != 2)
    # Fallback (non-identity) substream: the conventional machinery,
    # over only the fallback runs — the scalar loop never walks or TLB-
    # probes identity pages, so neither may the screen.
    if identity_u.all():
        fb_runs = np.empty(0, np.int64)
    else:
        fb_runs = np.flatnonzero(~identity_u[uidx])
    fb_status, fb_cand, fb_flag = "clean", None, None
    fb_umask = fb_upages = remap = table = None
    if fb_runs.size:
        fb_umask = np.zeros(u, bool)
        fb_umask[uidx[fb_runs]] = True
        fb_upages = upages[fb_umask]
        remap = np.full(u, -1, np.int32)
        remap[fb_umask] = np.arange(fb_upages.shape[0], dtype=np.int32)
        table = _walk_table(walker, fb_upages, parent)
        fb_pidx = remap[uidx[fb_runs]]
        fb_written = np.zeros(fb_upages.shape[0], bool)
        fb_written[fb_pidx[batch.run_writes[fb_runs] > 0]] = True
        fb_status, fb_cand, fb_flag = _conv_fault_candidates(
            iommu, iommu.tlb, fb_upages, fb_pidx, fb_written,
            batch.starts[fb_runs], table)
    if fb_status == "budget":
        return "budget", None, None
    if not bad_ident.any() and fb_status == "clean":
        carry = {"bitmap_perm": bitmap_perm,
                 "fb": (fb_runs, fb_umask, fb_upages, remap, table)}
        return "clean", None, carry
    if iommu.fault_path is None or fb_status == "legacy":
        return "legacy", None, None
    flag_u = np.zeros(u, bool)
    if bad_ident.any():
        # A violating identity store's fault delivery pops its vpn's TLB
        # entry, which can evict a resident *fallback* translation —
        # bridge every access sharing a TLB region with a bad identity
        # page so the replay never has to model that pop.
        tshift = iommu.tlb.page_shift
        u_vpns, vid_of_upage = _compact(upages >> (tshift - PAGE_SHIFT))
        bad_vids = np.zeros(u_vpns.shape[0], bool)
        bad_vids[vid_of_upage[bad_ident]] = True
        flag_u |= bad_vids[vid_of_upage]
    if fb_flag is not None and fb_flag.any():
        flag_u[np.flatnonzero(fb_umask)[fb_flag]] = True
    mask = np.zeros(batch.num_accesses, bool)
    if flag_u.any():
        mask |= _page_positions_mask(batch, flag_u)
    if fb_cand is not None and fb_cand.size:
        mask[fb_cand] = True
    # Pre-delivery needs every fault site-exact: fallback-page first-miss
    # walks qualify; bad identity stores and flagged regions are order-
    # dependent (hit faults) and need the scalar bridge.
    sites = (fb_cand if not bad_ident.any() and not flag_u.any()
             else None)
    if fb_upages is None:
        return "faulty", mask, {"sites": sites}
    return "faulty", mask, {"upages": fb_upages, "table": table,
                            "sites": sites}


def _walks_fit_sets(cache, table: "_WalkTable") -> bool:
    """Whether every walk's blocks co-reside in the AVC after its head.

    The DAV fast path replays the AVC once per page-run *head*, relying
    on interior accesses re-touching the same resident blocks.  That
    holds only if no single walk puts more distinct blocks into one
    cache set than the set has ways — otherwise the walk self-evicts
    and the scalar loop re-misses on every interior access.  The common
    geometries pass the cheap depth bound; the exact per-set count only
    runs for shallow-associativity configurations.
    """
    counts = table.counts
    if counts.size == 0 or int(counts.max()) <= cache.ways:
        return True
    nsets, ways = cache.num_sets, cache.ways
    for blocks in table.blocks:
        if len(blocks) <= ways:
            continue
        per_set: dict[int, int] = {}
        for blk in set(blocks):
            sid = blk % nsets
            load = per_set.get(sid, 0) + 1
            if load > ways:
                return False
            per_set[sid] = load
    return True


def _screen_dav(iommu, batch: PageRunBatch, parent=None):
    """Fault screen for DVM-PE / DVM-PE+ (DAV walks every access)."""
    upages, uidx = batch.unique_pages()
    u = upages.shape[0]
    table = _walk_table(iommu.walker, upages, parent)
    if not _walks_fit_sets(iommu.walker.cache, table):
        return "walk_set_pressure", None, None
    _rc, _ac, _wc, written_u = batch.page_aggregates()
    eff0 = np.where(table.ok, table.perm, 0)
    bad = eff0 < 1
    fault_path = iommu.fault_path
    post = eff0 if fault_path is None else _post_perms(iommu, upages, table)
    wbad = written_u & (post != 2)
    if not bad.any() and not wbad.any():
        return "clean", None, {"table": table}
    if fault_path is None:
        return "legacy", None, None
    mask = np.zeros(batch.num_accesses, bool)
    # Every access walks, so a faultable page faults at its very first
    # access; merge heal windows as usual.  Reverse fancy assignment
    # (last write wins) finds each page's first run in O(m) — the runs
    # cover every unique page, so no sort and no presence check needed.
    first_of = np.empty(u, np.int64)
    first_of[uidx[::-1]] = np.arange(uidx.shape[0] - 1, -1, -1)
    first_pos = np.where(bad, batch.starts[first_of], -1)
    cand = _first_fault_heads(iommu, upages, table, first_pos)
    if cand.size:
        mask[cand] = True
    # A store without write permission always escalates (a spurious
    # service would need perm == 2, contradicting wbad), so the scalar
    # run never gets past a page's first written run: bridging that run
    # covers the abort site.
    sites = cand
    if wbad.any():
        wr = np.flatnonzero(batch.run_writes > 0)
        first_w = np.full(u, -1, np.int64)
        first_w[uidx[wr[::-1]]] = wr[::-1]
        # wbad pages are written by definition, so first_w is valid here.
        wruns = first_w[wbad]
        writes_arr = np.asarray(batch.writes)
        wsites = []
        for r in wruns.tolist():
            s = int(batch.starts[r])
            end = s + int(batch.lengths[r])
            mask[s:end] = True
            # DAV checks permissions on every access, so the page's
            # first written access — first store of its first written
            # run — is exactly where the scalar loop faults.
            wsites.append(s + int(np.argmax(writes_arr[s:end] > 0)))
        sites = np.sort(np.concatenate((cand, np.array(wsites, np.int64))))
    return "faulty", mask, {"upages": upages, "table": table,
                            "sites": sites}


def run_batch(iommu, batch: PageRunBatch, stats) -> "EngineOutcome":
    """Run ``batch`` through ``iommu``'s configuration on the fast path.

    Fills ``stats`` (a :class:`~repro.hw.iommu.TimingStats` without
    energy, which the caller finalizes once) and mutates the IOMMU's
    lookup structures to their exact end-of-trace state.  Fault-bearing
    traces replay by pre-delivering site-exact faults, or as fault-free
    segments stitched by scalar bridges (see the module docstring).
    Returns an :class:`EngineOutcome`; a falsy
    outcome means **no** state was modified and the caller must run the
    scalar loops.
    """
    if faults.active():
        # A chaos injector is configured: perturbing injections
        # (alloc_oom relayouts, mid-trace guest faults) void the batch
        # replay's fault-free-prefix reasoning, so chaos-seeded sweeps
        # intentionally stay on the scalar loops (docs/configuration.md).
        return EngineOutcome(False, reason="chaos")
    mech = iommu.config.mech
    if mech == "ideal":
        _fast_ideal(iommu, batch, stats)
        return EngineOutcome(True, segments=1)
    if mech == "conventional":
        if iommu.tlb_l2 is not None:
            return EngineOutcome(False, reason="tlb_l2")
        screen, fast = _screen_conventional, _fast_conventional
    elif mech == "dvm_bm":
        screen, fast = _screen_bitmap, _fast_bitmap
    else:
        screen, fast = _screen_dav, functools.partial(
            _fast_dav, preload=(mech == "dvm_pe_plus"))
    status, mask, carry = screen(iommu, batch)
    if status == "clean":
        if not fast(iommu, batch, stats, carry):
            return EngineOutcome(False, reason="budget")
        return EngineOutcome(True, segments=1)
    if status == "legacy":
        return EngineOutcome(False, reason="legacy_fault_path")
    if status == "budget":
        return EngineOutcome(False, reason="budget")
    if status == "walk_set_pressure":
        # A single walk overflows an AVC set (see _walks_fit_sets): the
        # per-head replay's residency assumption is unsound, so the
        # scalar loop is the only exact model of the thrashing cache.
        return EngineOutcome(False, reason="walk_set_pressure")
    if not fault_segments_enabled():
        return EngineOutcome(False, reason="fault_segments_disabled")
    sites = carry.get("sites") if carry else None
    if sites is not None and sites.size:
        outcome = _run_predelivered(iommu, batch, stats, sites, screen,
                                    fast, carry)
        if outcome is not None:
            return outcome
    return _run_segmented(iommu, batch, stats, mask, screen, fast,
                          parent=carry)


def _fast_ideal(iommu, batch: PageRunBatch, stats) -> None:
    n = batch.num_accesses
    nwrites = int(np.asarray(batch.writes).sum())
    stats.accesses += n
    stats.writes += nwrites
    stats.reads += n - nwrites
    iommu.dram.stats.data_accesses += n
    if n:
        iommu.dram.account_rows_runs(batch.pages, batch.lengths)


# ---------------------------------------------------------------------------
# Conventional: TLB + page-walk cache
# ---------------------------------------------------------------------------

def _tlb_walk_analysis(tlb, walker, upages: np.ndarray, uidx: np.ndarray,
                       table: _WalkTable):
    """Analyse a TLB-fronted walk stream (the conventional hot path).

    ``uidx`` indexes each head's page into ``upages``/``table``.  Warm
    TLB entries and resident walk-cache blocks are primed into the LRU
    replays, so the analysis is exact from any mid-trace state — a
    segment start, or a rerun over warm structures.  Pure: returns
    ``None`` for scalar fallback (vector budgets), else ``(walks,
    walk_sram, walk_mem, fixed_total, tlb_lru, u_vpns, prime, warm,
    cache_lru, ublocks)`` with the rebuild inputs for the caller's
    commit.
    """
    # vpn = va >> tshift == page >> (tshift - 12), so the TLB alphabet is
    # derived from the (small) unique-page table, not the head stream.
    warm = _warm_tlb_entries(tlb)
    u_vpns, vid_of_upage, prime_vids = _vpn_alphabet(tlb, upages, warm)
    prime = int(prime_vids.shape[0])
    vids = vid_of_upage[uidx]
    if prime:
        vids = np.concatenate((prime_vids, vids))
    sid_u = ((u_vpns % tlb.num_sets).astype(np.int16)
             if tlb.num_sets > 1 else None)
    tlb_lru = _simulate_lru(vids, u_vpns.shape[0], tlb.num_sets, tlb.ways,
                            sid_u)
    if tlb_lru is None:
        return None
    miss_heads = np.flatnonzero(tlb_lru.miss[prime:])
    walks = int(miss_heads.shape[0])
    walked_pidx = uidx[miss_heads]
    walk_sram = int(table.counts[walked_pidx].sum())
    fixed_total = int(table.fixed[walked_pidx].sum())
    res = _walk_lru(walker.cache, table, walked_pidx,
                    prime_blocks=walker.cache.resident_blocks())
    if res is None:
        return None
    cache_lru, ublocks, event_miss = res
    walk_mem = fixed_total + int(event_miss.sum())
    return (walks, walk_sram, walk_mem, fixed_total, tlb_lru, u_vpns,
            prime, warm, cache_lru, ublocks)


def _fast_conventional(iommu, batch: PageRunBatch, stats, carry) -> bool:
    tlb = iommu.tlb
    walker = iommu.walker
    n = batch.num_accesses
    m = batch.num_runs
    dram = iommu.dram
    if m == 0:
        return True
    upages, uidx = batch.unique_pages()
    table = carry["table"]
    _run_count, _access_count, write_count, _written = (
        batch.page_aggregates())
    analysis = _tlb_walk_analysis(tlb, walker, upages, uidx, table)
    if analysis is None:
        return False
    (walks, walk_sram, walk_mem, fixed_total, tlb_lru, u_vpns,
     prime, warm, cache_lru, ublocks) = analysis
    # --- analyses done (pure); state mutation may begin ------------------
    head_vas = batch.head_vas()
    _rebuild_cache(walker.cache, cache_lru, ublocks)
    _rebuild_tlb(tlb, tlb_lru, u_vpns, head_vas, uidx, table,
                 prime_count=prime, warm_entries=warm)
    cache_misses = walk_mem - fixed_total
    dram.stats.data_accesses += n
    dram.stats.walk_accesses += walk_mem
    dram.account_rows_runs(batch.pages, batch.lengths)
    tlb.stats.hits += n - walks
    tlb.stats.misses += walks
    cache = walker.cache
    cache.stats.hits += walk_sram - cache_misses
    cache.stats.misses += cache_misses
    nwrites = int(write_count.sum())
    stats.accesses += n
    stats.writes += nwrites
    stats.reads += n - nwrites
    stats.sram_stall_cycles += walk_sram
    stats.mem_stall_cycles += walk_mem * dram.walk_latency
    stats.tlb_lookups += n
    stats.tlb_misses += walks
    stats.walks += walks
    stats.walk_sram_accesses += walk_sram
    stats.walk_mem_accesses += walk_mem
    return True


# ---------------------------------------------------------------------------
# DVM-BM: permission bitmap + bitmap cache, TLB fallback
# ---------------------------------------------------------------------------

def _fast_bitmap(iommu, batch: PageRunBatch, stats, carry) -> bool:
    bitmap = iommu.perm_bitmap
    tlb = iommu.tlb
    walker = iommu.walker
    bm_cache = bitmap.cache
    n = batch.num_accesses
    m = batch.num_runs
    dram = iommu.dram
    if m == 0:
        return True
    upages, uidx = batch.unique_pages()
    bitmap_perm = carry["bitmap_perm"]
    fb_runs, fb_umask, fb_upages, remap, table = carry["fb"]
    run_count, access_count, write_count, _written = batch.page_aggregates()
    identity_pages = bitmap_perm > 0
    fb_analysis = None
    fb_pidx = None
    if fb_runs.shape[0]:
        # Walk state evolves only for fallback pages — the scalar loop
        # never walks identity pages, so neither may the replay.
        fb_pidx = remap[uidx[fb_runs]]
        fb_analysis = _tlb_walk_analysis(tlb, walker, fb_upages, fb_pidx,
                                         table)
        if fb_analysis is None:
            return False
    # Bitmap-cache stream: one probe per head (interiors re-touch at
    # MRU).  Resident bitmap words prime the replay so warm segments
    # evolve exactly like the scalar probe sequence.
    bm_base_block = bitmap.base_pa >> 3
    warm_words = np.asarray(bm_cache.resident_blocks(), np.int64)
    u_words, wid_ids = _compact(
        np.concatenate((bm_base_block + (upages >> 5), warm_words)))
    wid_of_upage = wid_ids[:upages.shape[0]]
    prime_wids = wid_ids[upages.shape[0]:]
    wids = wid_of_upage[uidx]
    if prime_wids.shape[0]:
        wids = np.concatenate((prime_wids, wids))
    bm_sid_u = ((u_words % bm_cache.num_sets).astype(np.int16)
                if bm_cache.num_sets > 1 else None)
    bm_lru = _simulate_lru(wids, u_words.shape[0], bm_cache.num_sets,
                           bm_cache.ways, bm_sid_u)
    if bm_lru is None:
        return False
    bm_mem = int(bm_lru.miss[prime_wids.shape[0]:].sum())
    # --- analyses done (pure); state mutation may begin ------------------
    _rebuild_cache(bm_cache, bm_lru, u_words)
    walks = walk_sram = walk_mem = 0
    if fb_analysis is not None:
        (walks, walk_sram, walk_mem, _fixed, tlb_lru, u_vpns,
         prime, warm, cache_lru, ublocks) = fb_analysis
        fb_head_vas = batch.head_vas()[fb_runs]
        _rebuild_cache(walker.cache, cache_lru, ublocks)
        _rebuild_tlb(tlb, tlb_lru, u_vpns, fb_head_vas, fb_pidx, table,
                     prime_count=prime, warm_entries=warm)
    walk_latency = dram.walk_latency
    identity = int(access_count[identity_pages].sum())
    tlb_lookups = n - identity
    dram.stats.data_accesses += n
    dram.stats.walk_accesses += walk_mem + bm_mem
    dram.account_rows_runs(batch.pages, batch.lengths)
    bm_cache.stats.hits += n - bm_mem
    bm_cache.stats.misses += bm_mem
    tlb.stats.hits += tlb_lookups - walks
    tlb.stats.misses += walks
    nwrites = int(batch.writes.sum())
    stats.accesses += n
    stats.writes += nwrites
    stats.reads += n - nwrites
    stats.sram_stall_cycles += n + walk_sram
    stats.mem_stall_cycles += (bm_mem + walk_mem) * walk_latency
    stats.tlb_lookups += tlb_lookups
    stats.tlb_misses += walks
    stats.walks += walks
    stats.walk_sram_accesses += walk_sram
    stats.walk_mem_accesses += walk_mem
    stats.bitmap_lookups += n
    stats.bitmap_mem_accesses += bm_mem
    stats.identity_accesses += identity
    stats.fallback_accesses += n - identity
    return True


# ---------------------------------------------------------------------------
# DVM-PE / DVM-PE+: DAV through the AVC
# ---------------------------------------------------------------------------

def _fast_dav(iommu, batch: PageRunBatch, stats, carry, *,
              preload: bool) -> bool:
    walker = iommu.walker
    cache = walker.cache
    n = batch.num_accesses
    m = batch.num_runs
    dram = iommu.dram
    if m == 0:
        return True
    upages, uidx = batch.unique_pages()
    table = carry["table"]
    run_count, access_count, write_count, _written = batch.page_aggregates()
    # AVC block stream: the blocks each *head* touches, in walk order.
    # Interior accesses re-touch the same blocks back to the same dict
    # order, so the head stream alone determines the cache's evolution.
    # Resident blocks prime the replay for warm segments.
    res = _walk_lru(cache, table, uidx,
                    prime_blocks=cache.resident_blocks())
    if res is None:
        return False
    avc_lru, ublocks, event_miss = res
    # --- analyses done (pure); state mutation may begin ------------------
    _rebuild_cache(cache, avc_lru, ublocks)
    walk_latency = dram.walk_latency
    data_latency = dram.data_latency
    walk_sram = int((table.counts * access_count).sum())
    walk_mem = int((table.fixed * run_count).sum()) + int(event_miss.sum())
    identity = int(access_count[table.identity].sum())
    if not preload:
        sram_stall = walk_sram
        mem_stall = walk_mem * walk_latency
        squashes = 0
    else:
        # Head reads overlap DAV with the preload; only walk memory time
        # beyond the data fetch is exposed.  Interior accesses have zero
        # walk memory, so their reads expose nothing.  Writes (head or
        # interior) behave like dvm_pe; non-identity reads squash.  The
        # per-head AVC miss counts are the walk analysis's per-event
        # output, no segment sums needed.
        mem_per_head = table.fixed[uidx] + event_miss
        head_reads = 1 - batch.head_writes
        exposed = mem_per_head * walk_latency - data_latency
        np.maximum(exposed, 0, out=exposed)
        mem_stall = int((exposed * head_reads).sum())
        squashes = int(
            (access_count - write_count)[~table.identity].sum())
        mem_stall += squashes * data_latency
        sram_stall = int((table.counts * write_count).sum())
        mem_stall += int(
            (mem_per_head * batch.head_writes).sum()) * walk_latency
    dram.stats.data_accesses += n
    dram.stats.walk_accesses += walk_mem
    dram.stats.squashed_preloads += squashes
    dram.account_rows_runs(batch.pages, batch.lengths)
    walker.walks += n
    cache.stats.hits += walk_sram - walk_mem
    cache.stats.misses += walk_mem
    nwrites = int(write_count.sum())
    stats.accesses += n
    stats.writes += nwrites
    stats.reads += n - nwrites
    stats.sram_stall_cycles += sram_stall
    stats.mem_stall_cycles += mem_stall
    stats.walks += n
    stats.walk_sram_accesses += walk_sram
    stats.walk_mem_accesses += walk_mem
    stats.identity_accesses += identity
    stats.fallback_accesses += n - identity
    stats.squashed_preloads += squashes
    return True


# ---------------------------------------------------------------------------
# Fault-bounded segment replay
# ---------------------------------------------------------------------------

def _plan_segments(mask: np.ndarray):
    """Cut the access stream at fault-candidate positions.

    ``mask`` flags accesses that must run through the scalar engine
    (predicted faults and their heal windows, bridged mosaics).  Returns
    ``[(start, end, is_bridge), ...]`` covering ``[0, n)`` in order:
    bridge spans absorb nearby candidates (gaps below ``_MIN_SEGMENT``
    are not worth a batched replay) and fast spans fill the rest.  The
    mask is a *heuristic* — every fast span is re-screened against live
    state before replay, so a stale or wrong mask costs speed, never
    correctness.
    """
    n = int(mask.shape[0])
    cand = np.flatnonzero(mask)
    if not cand.size:
        return [(0, n, False)]
    gaps = np.flatnonzero(np.diff(cand) > _MIN_SEGMENT)
    starts = np.concatenate(([0], gaps + 1))
    ends = np.concatenate((gaps, [cand.size - 1]))
    bridges = [(int(cand[s]), int(cand[e]) + 1)
               for s, e in zip(starts, ends)]
    if bridges[0][0] < _MIN_SEGMENT:
        bridges[0] = (0, bridges[0][1])
    if n - bridges[-1][1] < _MIN_SEGMENT:
        bridges[-1] = (bridges[-1][0], n)
    plan = []
    pos = 0
    for bs, be in bridges:
        if bs > pos:
            plan.append((pos, bs, False))
        plan.append((bs, be, True))
        pos = be
    if pos < n:
        plan.append((pos, n, False))
    return plan


def _fold_stats(stats, sub) -> None:
    """Fold a bridge segment's TimingStats into the master accumulator.

    Additive over every counter except ``energy``: the scalar bridges
    run with energy finalization deferred, so the caller finalizes once
    from the summed totals and the ``if count:`` guards in
    ``_finalize_energy`` see exactly what an unsegmented scalar run
    would have seen.
    """
    for name, value in vars(sub).items():
        if name != "energy":
            setattr(stats, name, getattr(stats, name) + value)


def _snapshot_state(iommu):
    """Snapshot every bulk-committed hardware counter before segmenting.

    The scalar loops accumulate structure counters in locals and commit
    them *after* the loop, so a scalar abort (fault escalation,
    ``OutOfMemoryError``) never commits partial counts.  Segment replay
    commits per segment; restoring this snapshot on abort gives the
    segmented engine the same abort semantics.  LRU dicts, fault-queue
    and fault-handler stats are deliberately *not* snapshotted — the
    scalar engine mutates those live in-loop, so leaving them is exactly
    scalar behaviour.
    """
    snap = {"rows": list(iommu.dram._last_rows),
            "walks": iommu.walker.walks, "stats": []}
    structs = [iommu.dram, getattr(iommu, "tlb", None),
               getattr(iommu, "tlb_l2", None), iommu.walker.cache]
    bitmap = getattr(iommu, "perm_bitmap", None)
    if bitmap is not None:
        structs.append(bitmap.cache)
    for struct in structs:
        if struct is not None:
            snap["stats"].append((struct.stats, vars(struct.stats).copy()))
    return snap


def _restore_state(iommu, snap) -> None:
    iommu.dram._last_rows[:] = snap["rows"]
    iommu.walker.walks = snap["walks"]
    for stats_obj, saved in snap["stats"]:
        for name, value in saved.items():
            setattr(stats_obj, name, value)


def _scalar_bridge(iommu):
    """The scalar per-access loop for the IOMMU's mechanism.

    Bridges call the raw loop — not ``_run_scalar`` — so energy
    finalization and observability recording stay with the batch-level
    caller and happen exactly once.
    """
    mech = iommu.config.mech
    if mech == "conventional":
        return iommu._run_conventional
    if mech == "dvm_bm":
        return iommu._run_bitmap
    return functools.partial(iommu._run_dav,
                             preload=(mech == "dvm_pe_plus"))


def _run_predelivered(iommu, batch: PageRunBatch, stats, sites, screen,
                      fast, parent):
    """Deliver site-exact faults up front, then replay the trace whole.

    Fault delivery mutates no LRU state the replay models: it pops TLB
    entries of vpns that are absent anyway (the site is the page's first
    TLB-miss walk) plus the page's walker memo, and the scalar loops
    charge a faulting access entirely from its *post-service* walk info.
    So servicing every predicted fault first — in trace order, through
    the real fault machinery, exactly as the scalar loop would — leaves
    a trace the batched kernels replay in one clean pass.  An
    escalation aborts with the scalar loop's abort semantics (committed
    counters restored, live kernel state kept).  Returns ``None`` when
    the post-delivery screen still is not clean — the prediction missed
    (it never should; the screens refuse with "budget" rather than
    guess) — and the caller falls back to segment stitching against the
    now-partially-healed state.
    """
    addrs = batch.addrs
    writes = np.asarray(batch.writes)
    walker = iommu.walker
    snap = _snapshot_state(iommu)
    tick = time.perf_counter
    mark = tick()
    try:
        for pos in sites.tolist():
            va = int(addrs[pos])
            w = int(writes[pos])
            info = walker.info_for(va >> PAGE_SHIFT)
            if not info[0]:
                info = iommu._page_fault(va, w, stats)
            if (info[1] != 2) if w else (not info[1]):
                iommu._perm_fault(va, w, stats)
        _charge_phase("fault_service", tick() - mark)
        mark = tick()
        status, _mask, carry = screen(iommu, batch, parent)
        _charge_phase("accounting", tick() - mark)
        if status == "clean":
            mark = tick()
            replayed = fast(iommu, batch, stats, carry)
            _charge_phase("replay", tick() - mark)
            if replayed:
                return EngineOutcome(True, segments=1)
    except BaseException:
        _restore_state(iommu, snap)
        raise
    return None


def _run_segmented(iommu, batch: PageRunBatch, stats, mask, screen,
                   fast, parent=None) -> EngineOutcome:
    """Replay fault-free segments batched, bridge the faulty spans scalar.

    Each fast span is re-screened against *live* warm state before its
    batched replay — the planning mask only places the cuts.  A span
    whose fresh screen is not clean (a fault the global screen could not
    see, e.g. TLB-set contamination from an earlier segment's fault
    delivery) degrades to a scalar bridge, preserving bit-identical
    results.  Bridge segments raise through the real fault machinery;
    on any abort the pre-batch counter snapshot is restored so the
    outcome matches a scalar abort exactly.
    """
    from repro.hw.iommu import TimingStats
    tick = time.perf_counter
    mark = tick()
    plan = _plan_segments(mask)
    addrs = batch.addrs
    writes = np.asarray(batch.writes)
    snap = _snapshot_state(iommu)
    bridge = _scalar_bridge(iommu)
    segments = 0
    bridged = 0
    _charge_phase("accounting", tick() - mark)
    try:
        for start, end, is_bridge in plan:
            if not is_bridge:
                mark = tick()
                sub = PageRunBatch.from_trace(addrs[start:end],
                                              writes[start:end])
                status, _mask, carry = screen(iommu, sub, parent)
                _charge_phase("accounting", tick() - mark)
                if status == "clean":
                    mark = tick()
                    replayed = fast(iommu, sub, stats, carry)
                    _charge_phase("replay", tick() - mark)
                    if replayed:
                        segments += 1
                        continue
            bridged += end - start
            mark = tick()
            sub_stats = TimingStats()
            bridge(addrs[start:end].tolist(),
                   writes[start:end].tolist(), sub_stats)
            _fold_stats(stats, sub_stats)
            _charge_phase("fault_service", tick() - mark)
    except BaseException:
        _restore_state(iommu, snap)
        raise
    return EngineOutcome(True, segments=segments,
                         bridged_accesses=bridged)
