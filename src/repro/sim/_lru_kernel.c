/* Exact set-associative LRU replay over a compact-id key stream.
 *
 * This is the same algorithm the simulator's Python structures implement
 * with insertion-ordered dicts (hit = move to MRU, miss = evict the LRU
 * entry when the set is full), restated with O(1) doubly-linked recency
 * lists so a multi-million access stream replays in milliseconds.  The
 * output contract matches repro.sim.fastpath._simulate_lru: a per-access
 * miss mask plus each key's occurrence count, last-touch position and
 * last-fill position (-1 when absent / never filled).
 *
 * Compiled on demand by repro.sim._native (gcc -O3 -shared -fPIC); the
 * engine runs pure-numpy when no compiler is available.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ids:      m key ids in 0..k-1, chronological order
 * set_of:   per-key set id in 0..nsets-1, or NULL when nsets == 1
 * miss:     out, m bytes, 1 where the access missed
 * counts:   out, k occurrence counts
 * last_occ: out, k last-touch stream positions, -1 when never seen
 * last_fill:out, k last-miss stream positions, -1 when never filled
 * returns 0 on success, 1 on allocation failure
 */
int repro_lru_sim(const int32_t *ids, int64_t m, int32_t k,
                  int32_t nsets, int32_t ways, const int32_t *set_of,
                  uint8_t *miss, int64_t *counts,
                  int64_t *last_occ, int64_t *last_fill)
{
    int32_t *nxt = malloc(sizeof(int32_t) * (size_t)k);
    int32_t *prv = malloc(sizeof(int32_t) * (size_t)k);
    uint8_t *present = calloc((size_t)k, 1);
    int32_t *head = malloc(sizeof(int32_t) * (size_t)nsets);
    int32_t *tail = malloc(sizeof(int32_t) * (size_t)nsets);
    int32_t *size = calloc((size_t)nsets, sizeof(int32_t));
    if (!nxt || !prv || !present || !head || !tail || !size) {
        free(nxt); free(prv); free(present);
        free(head); free(tail); free(size);
        return 1;
    }
    for (int32_t s = 0; s < nsets; s++) {
        head[s] = -1;
        tail[s] = -1;
    }
    for (int64_t i = 0; i < m; i++) {
        int32_t id = ids[i];
        counts[id]++;
        last_occ[id] = i;
        if (present[id]) {
            miss[i] = 0;
            int32_t s = set_of ? set_of[id] : 0;
            if (head[s] != id) {                /* unlink, push to MRU */
                int32_t p = prv[id], n = nxt[id];
                nxt[p] = n;
                if (n >= 0) prv[n] = p; else tail[s] = p;
                prv[id] = -1;
                nxt[id] = head[s];
                prv[head[s]] = id;
                head[s] = id;
            }
        } else {
            miss[i] = 1;
            last_fill[id] = i;
            int32_t s = set_of ? set_of[id] : 0;
            if (size[s] == ways) {              /* evict the LRU entry */
                int32_t v = tail[s];
                int32_t p = prv[v];
                present[v] = 0;
                tail[s] = p;
                if (p >= 0) nxt[p] = -1; else head[s] = -1;
                size[s]--;
            }
            present[id] = 1;                    /* insert at MRU */
            prv[id] = -1;
            nxt[id] = head[s];
            if (head[s] >= 0) prv[head[s]] = id; else tail[s] = id;
            head[s] = id;
            size[s]++;
        }
    }
    free(nxt); free(prv); free(present);
    free(head); free(tail); free(size);
    return 0;
}

/* Same replay over an *indirect* walk-block stream: event e touches the
 * contiguous id slice flat_ids[block_off[page_idx[e]] ..
 * block_off[page_idx[e] + 1]), in order.  The expanded stream (nevents x
 * per-page depth elements) is never materialized; the per-access miss
 * mask is folded into a per-event miss count as it is produced.
 * last_occ / last_fill positions are in expanded-stream coordinates,
 * exactly as if the caller had flattened the stream first.
 *
 * page_idx:   nevents page-table indices, chronological order
 * block_off:  npages+1 offsets of each page's id slice in flat_ids
 * event_miss: out, nevents misses among the event's blocks
 * returns 0 on success, 1 on allocation failure
 */
int repro_lru_sim_walk(const int32_t *page_idx, int64_t nevents,
                       const int32_t *block_off, const int32_t *flat_ids,
                       int32_t k, int32_t nsets, int32_t ways,
                       const int32_t *set_of, int32_t *event_miss,
                       int64_t *counts, int64_t *last_occ,
                       int64_t *last_fill)
{
    int32_t *nxt = malloc(sizeof(int32_t) * (size_t)k);
    int32_t *prv = malloc(sizeof(int32_t) * (size_t)k);
    uint8_t *present = calloc((size_t)k, 1);
    int32_t *head = malloc(sizeof(int32_t) * (size_t)nsets);
    int32_t *tail = malloc(sizeof(int32_t) * (size_t)nsets);
    int32_t *size = calloc((size_t)nsets, sizeof(int32_t));
    if (!nxt || !prv || !present || !head || !tail || !size) {
        free(nxt); free(prv); free(present);
        free(head); free(tail); free(size);
        return 1;
    }
    for (int32_t s = 0; s < nsets; s++) {
        head[s] = -1;
        tail[s] = -1;
    }
    int64_t pos = 0;
    for (int64_t e = 0; e < nevents; e++) {
        int32_t page = page_idx[e];
        int32_t misses = 0;
        for (int32_t j = block_off[page]; j < block_off[page + 1]; j++) {
            int32_t id = flat_ids[j];
            counts[id]++;
            last_occ[id] = pos;
            if (present[id]) {
                int32_t s = set_of ? set_of[id] : 0;
                if (head[s] != id) {            /* unlink, push to MRU */
                    int32_t p = prv[id], n = nxt[id];
                    nxt[p] = n;
                    if (n >= 0) prv[n] = p; else tail[s] = p;
                    prv[id] = -1;
                    nxt[id] = head[s];
                    prv[head[s]] = id;
                    head[s] = id;
                }
            } else {
                misses++;
                last_fill[id] = pos;
                int32_t s = set_of ? set_of[id] : 0;
                if (size[s] == ways) {          /* evict the LRU entry */
                    int32_t v = tail[s];
                    int32_t p = prv[v];
                    present[v] = 0;
                    tail[s] = p;
                    if (p >= 0) nxt[p] = -1; else head[s] = -1;
                    size[s]--;
                }
                present[id] = 1;                /* insert at MRU */
                prv[id] = -1;
                nxt[id] = head[s];
                if (head[s] >= 0) prv[head[s]] = id; else tail[s] = id;
                head[s] = id;
                size[s]++;
            }
            pos++;
        }
        event_miss[e] = misses;
    }
    free(nxt); free(prv); free(present);
    free(head); free(tail); free(size);
    return 0;
}

/* DRAM open-row accounting over a 4 KB page stream: bank = low 4 page
 * bits, row = remaining high bits, one open row per bank.  An access
 * hits iff its row equals the bank's open row; a miss opens its row.
 * last_rows carries the 16-bank open-row state in and out so callers can
 * split a stream into fault-bounded segments and account identically to
 * one unsegmented pass.  Returns the number of row hits.
 */
int64_t repro_row_hits(const int64_t *pages, int64_t n, int64_t *last_rows)
{
    int64_t hits = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t page = pages[i];
        int bank = (int)(page & 15);
        int64_t row = page >> 4;
        if (last_rows[bank] == row)
            hits++;
        else
            last_rows[bank] = row;
    }
    return hits;
}
