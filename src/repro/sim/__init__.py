"""Simulation driver: systems, metrics, experiment runner."""

from repro.sim.metrics import (
    DEFAULT_MLP,
    ISSUE_CYCLES,
    Metrics,
    execution_cycles,
    metrics_from,
)
from repro.sim.runner import ExperimentRunner, PreparedWorkload
from repro.sim.system import (
    DEFAULT_PHYS_BYTES,
    HeterogeneousSystem,
    SystemParams,
)

__all__ = [
    "DEFAULT_MLP",
    "ISSUE_CYCLES",
    "Metrics",
    "execution_cycles",
    "metrics_from",
    "ExperimentRunner",
    "PreparedWorkload",
    "DEFAULT_PHYS_BYTES",
    "HeterogeneousSystem",
    "SystemParams",
]
