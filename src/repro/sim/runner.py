"""Experiment runner: (workload, graph, configuration) -> metrics.

Caches the expensive artifacts so the figures share work exactly the way
the paper's evaluation does:

* one functional accelerator execution per (workload, dataset, profile) —
  every MMU configuration consumes the identical symbolic trace;
* one timing simulation per (workload, dataset, configuration) — Figures 2,
  8 and 9 all read from the same runs (Figure 2's miss rates come from the
  conventional configurations' TLBs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.algorithms import prop_bytes_for, run_workload
from repro.accel.graphicionado import ExecutionResult
from repro.core.config import HardwareScale, MMUConfig, standard_configs
from repro.graphs import datasets
from repro.sim.metrics import Metrics
from repro.sim.system import HeterogeneousSystem, SystemParams


@dataclass
class PreparedWorkload:
    """A built graph plus its accelerator execution (trace + results)."""

    workload: str
    dataset: str
    graph: object
    shape: object
    result: ExecutionResult

    @property
    def trace_length(self) -> int:
        """Accesses in the symbolic trace."""
        return len(self.result.trace)


@dataclass
class ExperimentRunner:
    """Shared driver for all accelerator experiments."""

    profile: str = "full"
    scale: HardwareScale = field(default_factory=HardwareScale)
    params: SystemParams = field(default_factory=SystemParams)
    pagerank_iters: int = 1
    sssp_max_iters: int = 5
    cf_passes: int = 1
    _prepared: dict = field(default_factory=dict, init=False)
    _metrics: dict = field(default_factory=dict, init=False)

    def configs(self) -> dict[str, MMUConfig]:
        """The seven standard configurations under this runner's scale."""
        return standard_configs(self.scale)

    # -- functional phase -----------------------------------------------------

    def prepare(self, workload: str, dataset: str) -> PreparedWorkload:
        """Build the dataset surrogate and run the accelerator functionally."""
        key = (workload, dataset)
        prepared = self._prepared.get(key)
        if prepared is not None:
            return prepared
        graph, shape = datasets.load(dataset, self.profile)
        result = run_workload(
            workload, graph, shape=shape,
            pagerank_iters=self.pagerank_iters,
            sssp_max_iters=self.sssp_max_iters,
            cf_passes=self.cf_passes,
        )
        prepared = PreparedWorkload(workload=workload, dataset=dataset,
                                    graph=graph, shape=shape, result=result)
        self._prepared[key] = prepared
        return prepared

    # -- timing phase -------------------------------------------------------------

    def run(self, workload: str, dataset: str, config: MMUConfig) -> Metrics:
        """Timing-simulate one (workload, dataset) pair under one config."""
        key = (workload, dataset, config.name)
        metrics = self._metrics.get(key)
        if metrics is not None:
            return metrics
        prepared = self.prepare(workload, dataset)
        system = HeterogeneousSystem(config, self.params)
        system.load_graph(prepared.graph,
                          prop_bytes=prop_bytes_for(workload))
        metrics = system.run(prepared.result.trace, workload=workload,
                             graph=dataset)
        self._metrics[key] = metrics
        return metrics

    def run_pairs(self, pairs=None, config_names=None
                  ) -> dict[tuple[str, str, str], Metrics]:
        """Run a set of (workload, dataset) pairs across configurations.

        Defaults to the paper's 15 pairs and all 7 configurations.
        """
        pairs = pairs if pairs is not None else datasets.WORKLOAD_PAIRS
        configs = self.configs()
        if config_names is not None:
            configs = {k: configs[k] for k in config_names}
        out: dict[tuple[str, str, str], Metrics] = {}
        for workload, dataset in pairs:
            for name, config in configs.items():
                out[(workload, dataset, name)] = self.run(workload, dataset,
                                                          config)
        return out
